"""Checksummed record framing shared by the WAL, segments and manifest.

Every record the store writes is wrapped in a frame::

    <4s magic "RFRM"> <u32 payload length> <u32 CRC-32 of payload> <payload>

The magic makes frames *resyncable*: when a frame is corrupted (its CRC
fails, or its length field was damaged so the claimed extent is
implausible), the scanner records a corrupt-frame finding and searches
forward for the next magic instead of abandoning the rest of the file.
A frame that simply runs past end-of-file with no later magic is a
*torn tail* — the expected signature of a crash mid-append — and is
reported as such, distinct from corruption.

Scanning never raises: like the binary verifiers it produces
:class:`~repro.analysis.diagnostics.Diagnostic` records and lets the
caller decide severity policy (recovery quarantines, ``fsck`` reports).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.errors import StorageError

FRAME_MAGIC = b"RFRM"
_HEADER = struct.Struct("<4sII")
HEADER_SIZE = _HEADER.size  # 12

#: sanity cap on a single frame payload (a damaged length field almost
#: always lands above this and triggers resync instead of a huge slice)
MAX_PAYLOAD = 1 << 28


def frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a checksummed frame."""
    if len(payload) > MAX_PAYLOAD:
        raise StorageError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte cap")
    return _HEADER.pack(FRAME_MAGIC, len(payload),
                        zlib.crc32(payload)) + payload


@dataclass
class ScannedFrame:
    """One frame found by :func:`scan_frames`.

    ``valid`` is False for a frame whose CRC failed; its ``payload`` is
    the (untrustworthy) claimed extent so recovery can still attempt to
    attribute the damage to a document id.
    """

    offset: int
    payload: bytes
    valid: bool = True


@dataclass
class FrameScan:
    """Result of scanning a byte run for frames."""

    frames: List[ScannedFrame] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: end offset of the unbroken valid prefix
    consumed: int = 0
    #: seal length: the whole run except a trailing *torn tail*, which
    #: is unacknowledged by construction and safe to truncate.  Corrupt
    #: frames (damaged durable bytes) stay inside this boundary so a
    #: seal never silently discards them — every later scan of the
    #: sealed run re-reports them.
    sealable: int = 0
    #: True when the run ends in an incomplete frame (crash signature)
    torn: bool = False

    @property
    def valid_frames(self) -> List[ScannedFrame]:
        return [f for f in self.frames if f.valid]

    @property
    def corrupt_frames(self) -> List[ScannedFrame]:
        return [f for f in self.frames if not f.valid]


def scan_frames(data: bytes, base_offset: int = 0) -> FrameScan:
    """Scan ``data`` for frames, tolerating corruption and torn tails.

    ``base_offset`` shifts reported offsets (used when scanning a slice
    of a larger file).
    """
    scan = FrameScan()
    offset = 0
    n = len(data)
    scan.sealable = n
    clean_prefix = True

    def report(rule: str, message: str, at: int,
               severity: Severity = Severity.ERROR) -> None:
        scan.diagnostics.append(Diagnostic(
            rule, message, severity, offset=base_offset + at))

    while offset < n:
        if offset + HEADER_SIZE > n:
            scan.torn = True
            scan.sealable = offset
            report("storage.frame.torn-header",
                   f"{n - offset} trailing bytes are shorter than a "
                   f"frame header (torn tail)", offset,
                   Severity.WARNING)
            break
        magic, length, crc = _HEADER.unpack_from(data, offset)
        if magic != FRAME_MAGIC:
            clean_prefix = False
            resync = data.find(FRAME_MAGIC, offset + 1)
            if resync < 0:
                report("storage.frame.garbage-tail",
                       f"{n - offset} bytes with no frame magic", offset)
                break
            report("storage.frame.resync",
                   f"skipped {resync - offset} bytes of garbage to the "
                   f"next frame magic", offset)
            offset = resync
            continue
        end = offset + HEADER_SIZE + length
        if length > MAX_PAYLOAD or end > n:
            # either a torn tail (last frame of a crashed append) or a
            # damaged length field; a later magic disambiguates
            resync = data.find(FRAME_MAGIC, offset + 1)
            if resync < 0:
                if end > n and length <= MAX_PAYLOAD:
                    scan.torn = True
                    scan.sealable = offset
                    report("storage.frame.torn-payload",
                           f"frame claims {length} payload bytes but "
                           f"only {n - offset - HEADER_SIZE} remain "
                           f"(torn tail)", offset, Severity.WARNING)
                else:
                    clean_prefix = False
                    report("storage.frame.bad-length",
                           f"implausible frame length {length}", offset)
                break
            clean_prefix = False
            report("storage.frame.bad-length",
                   f"frame length {length} overruns the next frame; "
                   f"resynchronizing", offset)
            offset = resync
            continue
        payload = data[offset + HEADER_SIZE:end]
        if zlib.crc32(payload) != crc:
            clean_prefix = False
            report("storage.frame.crc",
                   f"payload checksum mismatch over {length} bytes",
                   offset)
            scan.frames.append(ScannedFrame(base_offset + offset,
                                            payload, valid=False))
            # the length field may itself be damaged: only trust it if
            # a frame magic (or end of data) follows
            if end == n or data[end:end + 4] == FRAME_MAGIC:
                offset = end
            else:
                resync = data.find(FRAME_MAGIC, offset + 1)
                if resync < 0:
                    report("storage.frame.garbage-tail",
                           f"{n - end} undecodable bytes after corrupt "
                           f"frame", end)
                    break
                offset = resync
            continue
        scan.frames.append(ScannedFrame(base_offset + offset, payload))
        offset = end
        if clean_prefix:
            scan.consumed = offset
    return scan


def first_frame(data: bytes) -> Optional[bytes]:
    """The payload of the first valid frame, or None."""
    scan = scan_frames(data)
    for found in scan.frames:
        if found.valid:
            return found.payload
    return None
