"""The crash-safe durable collection store.

A :class:`CollectionStore` keeps a collection of JSON documents as OSON
images with full durability:

* every ``insert``/``update``/``delete`` appends one checksummed record
  to the write-ahead log and is **acknowledged only after fsync** — an
  acknowledged operation survives any crash;
* ``checkpoint`` seals the WAL into a segment (metadata-only: the
  manifest records the file and its valid length; no bytes move) and
  atomically swaps a new manifest pinning the segment list, the fresh
  WAL and the serialized DataGuide;
* ``compact`` rewrites only the live documents into one fresh segment
  and drops superseded log files;
* opening runs verified recovery (:mod:`repro.storage.recovery`):
  corrupt records are quarantined with diagnostics, never fatal, and
  the DataGuide is rebuilt or revalidated.

All I/O flows through the injectable :class:`~repro.storage.files
.FileSystem`, which is what lets the fault harness
(:mod:`repro.storage.faults`) prove the crash-consistency claim at
every write/flush/sync boundary.
"""

from __future__ import annotations

import posixpath
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.dataguide.builder import DataGuideBuilder
from repro.core.dataguide.guide import DataGuide
from repro.core.oson import decode as oson_decode
from repro.core.oson import encode as oson_encode
from repro.errors import StorageError
from repro.obs import locks as _locks
from repro.storage import log as logfmt
from repro.storage import manifest as manifestfmt
from repro.storage.files import FileSystem, OsFileSystem
from repro.storage.log import LogWriter
from repro.storage.recovery import (QuarantinedRecord, RecoveredState,
                                    RecoveryReport, recover)


class CollectionStore:
    """A durable, crash-recoverable JSON document collection."""

    def __init__(self, directory: str, fs: FileSystem,
                 docs: Dict[int, bytes], builder: DataGuideBuilder,
                 next_doc_id: int, wal: LogWriter,
                 sealed: List[Tuple[str, int]],
                 recovery: Optional[RecoveryReport]) -> None:
        self._directory = directory
        self._fs = fs
        self._docs = docs                  # guarded-by: _lock
        self._builder = builder            # guarded-by: _lock
        self._next_doc_id = next_doc_id    # guarded-by: _lock
        self._wal = wal                    # guarded-by: _lock
        # (name, valid length) in apply order  # guarded-by: _lock
        self._sealed = sealed
        self.recovery = recovery
        self._closed = False               # guarded-by: _lock
        # serializes all mutation (DML, checkpoint, compact, close);
        # reads stay lock-free for the single-session engine of today.
        # allow_io: covering our own WAL fsync is the documented design
        # until group commit (ROADMAP item 1) — the sanitizer tracks
        # this lock's ordering but exempts it from io-under-lock.
        self._lock = _locks.make_lock("storage.store", allow_io=True)

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, directory: str,
               fs: Optional[FileSystem] = None) -> "CollectionStore":
        """Initialize an empty store in ``directory``."""
        fs = fs or OsFileSystem()
        fs.ensure_dir(directory)
        # log files without a manifest are a crash-degraded store (crash
        # during initial create, or manifest corruption) that recovery
        # can still read — creating over them would truncate that data
        has_logs = any(logfmt.parse_log_name(name) is not None
                       for name in fs.listdir(directory))
        if fs.exists(manifestfmt.manifest_path(directory)) or has_logs:
            raise StorageError(
                f"{directory} already contains a collection store")
        wal = LogWriter.create(
            fs, posixpath.join(directory, logfmt.log_name(1)), 1)
        store = cls(directory, fs, {}, DataGuideBuilder(), 0, wal, [],
                    recovery=None)
        store._write_manifest()
        return store

    @classmethod
    def open(cls, directory: str, fs: Optional[FileSystem] = None,
             verify_documents: bool = True) -> "CollectionStore":
        """Open with verified recovery; corruption quarantines, never
        raises.  The recovery report is available as ``store.recovery``."""
        fs = fs or OsFileSystem()
        state = recover(fs, directory, verify_documents=verify_documents)
        store = cls._resume(directory, fs, state)
        return store

    @classmethod
    def open_or_create(cls, directory: str,
                       fs: Optional[FileSystem] = None) -> "CollectionStore":
        fs = fs or OsFileSystem()
        fs.ensure_dir(directory)
        has_logs = any(logfmt.parse_log_name(name) is not None
                       for name in fs.listdir(directory))
        if fs.exists(manifestfmt.manifest_path(directory)) or has_logs:
            return cls.open(directory, fs=fs)
        return cls.create(directory, fs=fs)

    @classmethod
    def _resume(cls, directory: str, fs: FileSystem,
                state: RecoveredState) -> "CollectionStore":
        if state.wal_reusable and state.wal_name is not None:
            # clean shutdown fast path: keep appending to the same WAL,
            # manifest already points at it
            wal = LogWriter.reopen(
                fs, posixpath.join(directory, state.wal_name),
                logfmt.parse_log_name(state.wal_name) or 0,
                state.wal_valid_length)
            sealed = state.sources[:-1]
            return cls(directory, fs, state.docs, state.builder,
                       state.next_doc_id, wal, sealed, state.report)
        # otherwise: seal everything recovered (each at its valid
        # length), start a fresh WAL, publish a new manifest
        sequence = state.max_sequence + 1
        wal = LogWriter.create(
            fs, posixpath.join(directory, logfmt.log_name(sequence)),
            sequence)
        store = cls(directory, fs, state.docs, state.builder,
                    state.next_doc_id, wal, list(state.sources),
                    state.report)
        store._write_manifest()
        return store

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._wal.commit()
                self._wal.close()
                self._closed = True

    def __enter__(self) -> "CollectionStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def quarantine(self) -> List[QuarantinedRecord]:
        return list(self.recovery.quarantined) if self.recovery else []

    def _live(self) -> None:
        if self._closed:
            raise StorageError("store is closed")

    # -- DML (ack = WAL record fsynced) ------------------------------------

    def insert(self, document: Any) -> int:
        """Durably insert; returns the new document id once the WAL
        record is fsynced (the acknowledgement point)."""
        with self._lock:
            self._live()
            image = oson_encode(document)
            doc_id = self._next_doc_id
            self._wal.append(logfmt.encode_record(logfmt.OP_INSERT, doc_id,
                                                  image))
            self._wal.commit()
            self._next_doc_id = doc_id + 1
            self._docs[doc_id] = image
            self._builder.add(document)
            return doc_id

    def insert_many(self, documents: Any) -> List[int]:
        return [self.insert(document) for document in documents]

    def update(self, doc_id: int, document: Any) -> None:
        with self._lock:
            self._live()
            if doc_id not in self._docs:
                raise StorageError(f"no document {doc_id} to update")
            image = oson_encode(document)
            self._wal.append(logfmt.encode_record(logfmt.OP_UPDATE, doc_id,
                                                  image))
            self._wal.commit()
            self._docs[doc_id] = image
            self._builder.add(document)

    def delete(self, doc_id: int) -> None:
        with self._lock:
            self._live()
            if doc_id not in self._docs:
                raise StorageError(f"no document {doc_id} to delete")
            self._wal.append(logfmt.encode_record(logfmt.OP_DELETE, doc_id))
            self._wal.commit()
            del self._docs[doc_id]
            # the DataGuide stays additive on delete (paper section
            # 3.4); recovery and compaction shrink it by rebuilding

    # -- reads -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._docs

    def doc_ids(self) -> List[int]:
        return sorted(self._docs)

    def get(self, doc_id: int) -> Any:
        try:
            image = self._docs[doc_id]
        except KeyError:
            raise StorageError(f"no document {doc_id}") from None
        return oson_decode(image)

    def image(self, doc_id: int) -> bytes:
        try:
            return self._docs[doc_id]
        except KeyError:
            raise StorageError(f"no document {doc_id}") from None

    def documents(self) -> Iterator[Tuple[int, Any]]:
        for doc_id in sorted(self._docs):
            yield doc_id, oson_decode(self._docs[doc_id])

    def dataguide(self) -> DataGuide:
        return self._builder.guide()

    # -- checkpoint / compaction -------------------------------------------

    def checkpoint(self) -> None:
        """Seal the WAL into a segment and publish a new manifest."""
        with self._lock:
            self._live()
            self._wal.commit()
            sealed_name = posixpath.basename(self._wal.path)
            sealed_length = self._wal.offset
            self._wal.close()
            self._sealed.append((sealed_name, sealed_length))
            sequence = self._wal.sequence + 1
            self._wal = LogWriter.create(
                self._fs, posixpath.join(self._directory,
                                         logfmt.log_name(sequence)),
                sequence)
            self._write_manifest()

    def compact(self) -> int:
        """Rewrite only the live documents into one fresh segment, then
        drop every superseded log file.  Returns bytes reclaimed."""
        with self._lock:
            self._live()
            self._wal.commit()
            self._wal.close()

            sequence = self._wal.sequence + 1
            segment = LogWriter.create(
                self._fs, posixpath.join(self._directory,
                                         logfmt.log_name(sequence)), sequence)
            for doc_id in sorted(self._docs):
                segment.append(logfmt.encode_record(
                    logfmt.OP_INSERT, doc_id, self._docs[doc_id]))
            segment.commit()
            segment.close()

            self._wal = LogWriter.create(
                self._fs, posixpath.join(self._directory,
                                         logfmt.log_name(sequence + 1)),
                sequence + 1)
            # compaction rebuilds the DataGuide over live documents only —
            # the one sanctioned shrink point
            builder = DataGuideBuilder()
            for doc_id in sorted(self._docs):
                builder.add(oson_decode(self._docs[doc_id]))
            self._builder = builder
            self._sealed = [(posixpath.basename(segment.path),
                             segment.offset)]
            self._write_manifest()
            # GC every unreferenced log at or below the new horizon: the
            # files this compaction superseded, plus orphans left by an
            # earlier compaction that crashed after publishing its manifest
            # but before its own remove sweep
            referenced = {name for name, _ in self._sealed}
            referenced.add(posixpath.basename(self._wal.path))
            horizon = self._wal.sequence
            reclaimed = 0
            for name in self._fs.listdir(self._directory):
                log_sequence = logfmt.parse_log_name(name)
                if (log_sequence is None or name in referenced
                        or log_sequence > horizon):
                    continue
                path = posixpath.join(self._directory, name)
                reclaimed += self._fs.file_size(path)
                self._fs.remove(path)
            return max(0, reclaimed - segment.offset)

    def _write_manifest(self) -> None:
        document = manifestfmt.build_manifest(
            self._sealed, posixpath.basename(self._wal.path),
            self._next_doc_id, len(self._docs), self._builder)
        manifestfmt.write_manifest(self._fs, self._directory, document)

    # -- introspection -----------------------------------------------------

    def storage_files(self) -> List[str]:
        """Log files in apply order (sealed segments then active WAL)."""
        names = [name for name, _ in self._sealed]
        names.append(posixpath.basename(self._wal.path))
        return names
