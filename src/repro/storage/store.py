"""The crash-safe durable collection store.

A :class:`CollectionStore` keeps a collection of JSON documents as OSON
images with full durability and (since the serving layer) multi-version
concurrency:

* every ``insert``/``update``/``delete`` stages a logical commit with
  the group-commit pipeline (:mod:`repro.storage.commit`) and is
  **acknowledged only after its batch fsync returns** — an acknowledged
  operation survives any crash, and many concurrent commits share one
  fsync;
* reads are served from an immutable, atomically-published
  :class:`StoreSnapshot` that only ever advances whole durable batches
  — a reader holding a snapshot (``store.snapshot()``) sees a frozen,
  consistent state no matter what writers do, and never observes a
  partially-acknowledged batch;
* ``checkpoint`` seals the WAL into a segment (metadata-only: the
  manifest records the file and its valid length; no bytes move) and
  atomically swaps a new manifest pinning the segment list, the fresh
  WAL and the serialized DataGuide;
* ``compact`` rewrites only the live documents into one fresh segment
  and drops superseded log files;
* opening runs verified recovery (:mod:`repro.storage.recovery`):
  corrupt records are quarantined with diagnostics, never fatal, and
  the DataGuide is rebuilt or revalidated.

Locking: the store lock covers only in-memory writer state (the
document map used for id allocation and existence checks, the DataGuide
builder, the sealed-segment list, the published snapshot reference).
**No I/O ever runs under it** — WAL writes and fsyncs happen on the
commit pipeline's leader with no lock held, and checkpoint/compact take
the pipeline's *pause* (drain + block new batches) before touching
files.  That is what let the historical ``allow_io=True`` sanitizer
exemption be deleted.

All I/O flows through the injectable :class:`~repro.storage.files
.FileSystem`, which is what lets the fault harness
(:mod:`repro.storage.faults`) prove the crash-consistency claim at
every write/flush/sync boundary.
"""

from __future__ import annotations

import posixpath
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.dataguide.builder import DataGuideBuilder
from repro.core.dataguide.guide import DataGuide
from repro.core.oson import decode as oson_decode
from repro.core.oson import encode as oson_encode
from repro.errors import StorageError
from repro.obs import locks as _locks
from repro.storage import commit as commitmod
from repro.storage import log as logfmt
from repro.storage import manifest as manifestfmt
from repro.storage.commit import CommitPipeline, LogicalCommit
from repro.storage.files import FileSystem, OsFileSystem
from repro.storage.log import LogWriter
from repro.storage.recovery import (QuarantinedRecord, RecoveredState,
                                    RecoveryReport, recover)


class StoreSnapshot:
    """An immutable view of the store at one durable point.

    Snapshots are the unit of isolation: the store publishes a new one
    atomically after each group commit's fsync, and never mutates a
    published one.  Holding a snapshot therefore pins a consistent
    state — long scans never observe partial batches, and two reads
    from the same snapshot always agree.
    """

    __slots__ = ("docs", "next_doc_id", "version")

    def __init__(self, docs: Dict[int, bytes], next_doc_id: int,
                 version: int) -> None:
        self.docs = docs              # treated as frozen once published
        self.next_doc_id = next_doc_id
        self.version = version        # monotonic per published batch

    def __len__(self) -> int:
        return len(self.docs)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self.docs

    def doc_ids(self) -> List[int]:
        return sorted(self.docs)

    def get(self, doc_id: int) -> Any:
        return oson_decode(self.image(doc_id))

    def image(self, doc_id: int) -> bytes:
        try:
            return self.docs[doc_id]
        except KeyError:
            raise StorageError(f"no document {doc_id}") from None

    def documents(self) -> Iterator[Tuple[int, Any]]:
        for doc_id in sorted(self.docs):
            yield doc_id, oson_decode(self.docs[doc_id])


class CollectionStore:
    """A durable, crash-recoverable JSON document collection."""

    def __init__(self, directory: str, fs: FileSystem,
                 docs: Dict[int, bytes], builder: DataGuideBuilder,
                 next_doc_id: int, wal: LogWriter,
                 sealed: List[Tuple[str, int]],
                 recovery: Optional[RecoveryReport],
                 imc_segments: Optional[List[Dict[str, Any]]] = None,
                 imc_dirty: Optional[set] = None) -> None:
        self._directory = directory
        self._fs = fs
        # writer state: what the store will contain once everything
        # staged commits — the namespace for id allocation and
        # update/delete existence checks
        self._docs = docs                  # guarded-by: _lock
        self._builder = builder            # guarded-by: _lock
        self._next_doc_id = next_doc_id    # guarded-by: _lock
        # (name, valid length) in apply order  # guarded-by: _lock
        self._sealed = sealed
        # pinned durable IMC column segments (manifest rows) and the
        # document ids whose row-wise form post-dates them — a columnar
        # reader must serve dirty ids from the rows.  Inserts allocate
        # fresh ids (never in a segment), so only update/delete dirty.
        self._imc_segments = list(imc_segments or [])  # guarded-by: _lock
        self._imc_dirty = set(imc_dirty or ())         # guarded-by: _lock
        # checkpoint/compact call this (with no lock held) to lift the
        # in-memory columnar form into durable segments
        self._imc_provider = None          # guarded-by: _lock
        self.recovery = recovery
        self._closed = False               # guarded-by: _lock
        # serializes writer-state mutation (DML staging, publication,
        # checkpoint/compact metadata swaps).  Covers **no I/O**: the
        # WAL lives with the commit pipeline, whose leader writes and
        # fsyncs with no lock held.
        self._lock = _locks.make_lock("storage.store")
        # durable state: reads are served from the published snapshot,
        # which only advances whole fsynced batches
        self._snapshot = StoreSnapshot(dict(docs), next_doc_id,
                                       version=0)  # guarded-by: _lock
        self._pipeline = CommitPipeline(wal, self._publish_batch)

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, directory: str,
               fs: Optional[FileSystem] = None) -> "CollectionStore":
        """Initialize an empty store in ``directory``."""
        fs = fs or OsFileSystem()
        fs.ensure_dir(directory)
        # log files without a manifest are a crash-degraded store (crash
        # during initial create, or manifest corruption) that recovery
        # can still read — creating over them would truncate that data
        has_logs = any(logfmt.parse_log_name(name) is not None
                       for name in fs.listdir(directory))
        if fs.exists(manifestfmt.manifest_path(directory)) or has_logs:
            raise StorageError(
                f"{directory} already contains a collection store")
        wal = LogWriter.create(
            fs, posixpath.join(directory, logfmt.log_name(1)), 1)
        store = cls(directory, fs, {}, DataGuideBuilder(), 0, wal, [],
                    recovery=None)
        manifestfmt.write_manifest(fs, directory,
                                   store._manifest_document())
        return store

    @classmethod
    def open(cls, directory: str, fs: Optional[FileSystem] = None,
             verify_documents: bool = True) -> "CollectionStore":
        """Open with verified recovery; corruption quarantines, never
        raises.  The recovery report is available as ``store.recovery``."""
        fs = fs or OsFileSystem()
        state = recover(fs, directory, verify_documents=verify_documents)
        store = cls._resume(directory, fs, state)
        return store

    @classmethod
    def open_or_create(cls, directory: str,
                       fs: Optional[FileSystem] = None) -> "CollectionStore":
        fs = fs or OsFileSystem()
        fs.ensure_dir(directory)
        has_logs = any(logfmt.parse_log_name(name) is not None
                       for name in fs.listdir(directory))
        if fs.exists(manifestfmt.manifest_path(directory)) or has_logs:
            return cls.open(directory, fs=fs)
        return cls.create(directory, fs=fs)

    @classmethod
    def _resume(cls, directory: str, fs: FileSystem,
                state: RecoveredState) -> "CollectionStore":
        if state.wal_reusable and state.wal_name is not None:
            # clean shutdown fast path: keep appending to the same WAL,
            # manifest already points at it
            wal = LogWriter.reopen(
                fs, posixpath.join(directory, state.wal_name),
                logfmt.parse_log_name(state.wal_name) or 0,
                state.wal_valid_length)
            sealed = state.sources[:-1]
            return cls(directory, fs, state.docs, state.builder,
                       state.next_doc_id, wal, sealed, state.report,
                       imc_segments=state.imc_segments,
                       imc_dirty=state.imc_dirty_ids)
        # otherwise: seal everything recovered (each at its valid
        # length), start a fresh WAL, publish a new manifest
        sequence = state.max_sequence + 1
        wal = LogWriter.create(
            fs, posixpath.join(directory, logfmt.log_name(sequence)),
            sequence)
        store = cls(directory, fs, state.docs, state.builder,
                    state.next_doc_id, wal, list(state.sources),
                    state.report,
                    imc_segments=state.imc_segments,
                    imc_dirty=state.imc_dirty_ids)
        manifestfmt.write_manifest(fs, directory,
                                   store._manifest_document())
        return store

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # drain staged commits (so every acknowledged operation is on
        # disk), stop the pipeline, then release the WAL handle — all
        # without the store lock
        self._pipeline.shutdown()
        if self._pipeline.failed is None:
            wal = self._pipeline.wal
            wal.commit()
            wal.close()

    def __enter__(self) -> "CollectionStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def pipeline(self) -> CommitPipeline:
        """The group-commit pipeline (serving layer wires its committer
        thread and batch limits through this)."""
        return self._pipeline

    @property
    def quarantine(self) -> List[QuarantinedRecord]:
        return list(self.recovery.quarantined) if self.recovery else []

    def _live(self) -> None:
        if self._closed:
            raise StorageError("store is closed")

    # -- DML (ack = the commit's batch fsynced) ----------------------------

    def insert_async(self, document: Any) -> Tuple[int, LogicalCommit]:
        """Stage a durable insert and return ``(doc_id, handle)`` without
        waiting for the fsync.  The write is acknowledged — durable, and
        visible to new snapshots — only once ``pipeline.wait(handle)``
        returns.  The serving layer's write lane uses this split to
        overlap many sessions' durability waits so the group-commit
        leader can batch their fsyncs."""
        image = oson_encode(document)
        with self._lock:
            self._live()
            doc_id = self._next_doc_id
            self._next_doc_id = doc_id + 1
            self._docs[doc_id] = image
            entry = LogicalCommit(
                [logfmt.encode_record(logfmt.OP_INSERT, doc_id, image)],
                [(logfmt.OP_INSERT, doc_id, image)],
                self._next_doc_id, documents=(document,))
            self._pipeline.submit(entry)
        return doc_id, entry

    def insert(self, document: Any) -> int:
        """Durably insert; returns the new document id once the commit's
        group-commit batch is fsynced (the acknowledgement point)."""
        doc_id, entry = self.insert_async(document)
        self._pipeline.wait(entry)
        return doc_id

    def insert_many_async(
            self, documents: Any
    ) -> Tuple[List[int], Optional[LogicalCommit]]:
        """Stage a multi-document insert as one logical commit; the
        handle is ``None`` for an empty batch (nothing to wait for)."""
        documents = list(documents)
        if not documents:
            return [], None
        images = [oson_encode(document) for document in documents]
        with self._lock:
            self._live()
            doc_ids: List[int] = []
            records: List[bytes] = []
            ops: List[Tuple[int, int, bytes]] = []
            for document, image in zip(documents, images):
                doc_id = self._next_doc_id
                self._next_doc_id = doc_id + 1
                self._docs[doc_id] = image
                doc_ids.append(doc_id)
                records.append(logfmt.encode_record(
                    logfmt.OP_INSERT, doc_id, image))
                ops.append((logfmt.OP_INSERT, doc_id, image))
            entry = LogicalCommit(records, ops, self._next_doc_id,
                                  documents=tuple(documents))
            self._pipeline.submit(entry)
        return doc_ids, entry

    def insert_many(self, documents: Any) -> List[int]:
        """Durably insert several documents as **one** logical commit:
        a single WAL batch, one fsync, one acknowledgement — after a
        crash either a prefix of the batch's records survives and is
        reported as a cut batch, or all of them do."""
        doc_ids, entry = self.insert_many_async(documents)
        if entry is not None:
            self._pipeline.wait(entry)
        return doc_ids

    def update(self, doc_id: int, document: Any) -> None:
        image = oson_encode(document)
        with self._lock:
            self._live()
            if doc_id not in self._docs:
                raise StorageError(f"no document {doc_id} to update")
            self._docs[doc_id] = image
            self._imc_dirty.add(doc_id)
            entry = LogicalCommit(
                [logfmt.encode_record(logfmt.OP_UPDATE, doc_id, image)],
                [(logfmt.OP_UPDATE, doc_id, image)],
                self._next_doc_id, documents=(document,))
            self._pipeline.submit(entry)
        self._pipeline.wait(entry)

    def delete(self, doc_id: int) -> None:
        with self._lock:
            self._live()
            if doc_id not in self._docs:
                raise StorageError(f"no document {doc_id} to delete")
            del self._docs[doc_id]
            self._imc_dirty.add(doc_id)
            # the DataGuide stays additive on delete (paper section
            # 3.4); recovery and compaction shrink it by rebuilding
            entry = LogicalCommit(
                [logfmt.encode_record(logfmt.OP_DELETE, doc_id)],
                [(logfmt.OP_DELETE, doc_id, b"")],
                self._next_doc_id)
            self._pipeline.submit(entry)
        self._pipeline.wait(entry)

    def _publish_batch(self, batch: List[LogicalCommit]) -> None:
        """Pipeline callback, after the batch fsync and before the ack:
        swap in a snapshot covering the whole batch (readers move from
        one consistent state to the next, never through the middle) and
        teach the DataGuide the now-durable documents."""
        with self._lock:
            base = self._snapshot
            docs = commitmod.snapshot_docs(base.docs, batch)
            next_doc_id = base.next_doc_id
            for entry in batch:
                if entry.next_doc_id > next_doc_id:
                    next_doc_id = entry.next_doc_id
                for document in entry.documents:
                    self._builder.add(document)
            self._snapshot = StoreSnapshot(docs, next_doc_id,
                                           base.version + 1)

    # -- reads (always from the published snapshot) ------------------------

    def snapshot(self) -> StoreSnapshot:
        """Pin the current durable state.  The returned object is
        immutable and stays valid (and consistent) forever."""
        return self._snapshot

    def __len__(self) -> int:
        return len(self._snapshot.docs)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._snapshot.docs

    def doc_ids(self) -> List[int]:
        return self._snapshot.doc_ids()

    def get(self, doc_id: int) -> Any:
        return self._snapshot.get(doc_id)

    def image(self, doc_id: int) -> bytes:
        return self._snapshot.image(doc_id)

    def documents(self) -> Iterator[Tuple[int, Any]]:
        return self._snapshot.documents()

    def snapshot_with_guide(self) -> Tuple[StoreSnapshot, DataGuide]:
        """Pin the current durable state together with a DataGuide that
        covers it, atomically.

        The invariant (maintained by ``_publish_batch`` and ``compact``,
        both of which swap snapshot and builder under this lock) is that
        the builder always covers every document in the published
        snapshot.  Capturing the pair under one lock acquisition is what
        makes guide-based partition pruning sound against a *pinned*
        snapshot: the guide can run ahead of the snapshot (extra paths,
        wider ranges — pruning merely gets more conservative) but never
        behind it.
        """
        with self._lock:
            return self._snapshot, self._builder.guide()

    def dataguide(self) -> DataGuide:
        with self._lock:
            return self._builder.guide()

    def zone_stats(self) -> List[Dict[str, Any]]:
        """The live min/max zone stats (the same rows the next manifest
        will persist): per scalar path ``{"path", "scalar_type", "min",
        "max"}`` for homogeneous number/string paths."""
        with self._lock:
            return manifestfmt.zone_stats_from_builder(self._builder)

    # -- durable IMC column segments ---------------------------------------

    def set_imc_provider(self, provider: Any) -> None:
        """Register the columnar lift callback.  ``provider(snapshot)``
        returns ``[(table, column, doc_ids, values), ...]`` — the exact
        columnar form of the snapshot — or ``None`` to skip the lift.
        Called by checkpoint/compact with the pipeline paused and **no
        store lock held** (the provider may take the IMC store lock,
        which itself calls store accessors: imc→storage is the one
        sanctioned lock order, never the reverse)."""
        with self._lock:
            self._imc_provider = provider

    def imc_segments(self) -> List[Dict[str, Any]]:
        """The pinned IMC column-segment manifest rows."""
        with self._lock:
            return list(self._imc_segments)

    def imc_dirty_ids(self) -> set:
        """Document ids whose row-wise form post-dates the pinned
        segments — a columnar reader serves these from the rows."""
        with self._lock:
            return set(self._imc_dirty)

    def read_imc_segment(self, name: str) -> bytes:
        """Raw bytes of a pinned segment (raises on a missing file —
        callers quarantine and rebuild from OSON)."""
        return self._fs.read_bytes(posixpath.join(self._directory, name))

    def _write_imc_segments(self, snapshot: StoreSnapshot, horizon: int,
                            drop_stale: bool) -> None:
        """The LSM-style tuple-compaction lift: persist the provider's
        columnar form as checksummed column segments, to be pinned by
        the manifest the caller is about to write.

        With no provider (or a declined lift), a checkpoint *keeps* the
        old entries — their horizon still bounds them, so recovery's
        dirty-id tracking stays sound — while compaction drops them
        (``drop_stale``): it GCs the logs the old horizons point into.
        Runs with the pipeline paused and no store lock held during the
        provider call or the file writes."""
        with self._lock:
            provider = self._imc_provider
        columns = provider(snapshot) if provider is not None else None
        if columns is None:
            if drop_stale:
                with self._lock:
                    self._imc_segments = []
            return
        from repro.imc import segments as imcseg
        taken = (imcseg.parse_imc_segment_name(name)
                 for name in self._fs.listdir(self._directory))
        sequence = max((s for s in taken if s is not None), default=0) + 1
        entries: List[Dict[str, Any]] = []
        for table, column, doc_ids, values in columns:
            try:
                data = imcseg.encode_column_segment(table, column,
                                                    doc_ids, values)
            except StorageError:
                # non-round-trippable values: this column stays
                # rebuild-from-OSON rather than risk inexact answers
                continue
            name = imcseg.imc_segment_name(sequence)
            sequence += 1
            handle = self._fs.create(
                posixpath.join(self._directory, name))
            handle.write(data)
            handle.flush()
            handle.sync()
            handle.close()
            entries.append(imcseg.segment_entry(
                name, len(data), table, column, horizon))
        with self._lock:
            self._imc_segments = entries
            self._imc_dirty = set()

    def _gc_imc_files(self) -> None:
        """Remove IMC segment files the manifest no longer pins (the
        lift's predecessors, plus orphans from a crashed lift)."""
        with self._lock:
            referenced = {entry["name"] for entry in self._imc_segments}
        from repro.imc.segments import parse_imc_segment_name
        for name in self._fs.listdir(self._directory):
            if parse_imc_segment_name(name) is None or name in referenced:
                continue
            self._fs.remove(posixpath.join(self._directory, name))

    # -- checkpoint / compaction -------------------------------------------

    def checkpoint(self) -> None:
        """Seal the WAL into a segment and publish a new manifest.

        Runs under the pipeline's pause — staged-but-unacknowledged
        commits submitted during the pause simply land in the fresh WAL
        after resume — and the manifest is built from the published
        snapshot, so it describes exactly the durable state.
        """
        with self._lock:
            self._live()
        self._pipeline.pause()
        try:
            with self._lock:
                self._live()
                snapshot = self._snapshot
            old = self._pipeline.wal
            sealed_name = posixpath.basename(old.path)
            sealed_length = old.offset
            old.commit()
            sequence = old.sequence + 1
            new_wal = LogWriter.create(
                self._fs, posixpath.join(self._directory,
                                         logfmt.log_name(sequence)),
                sequence)
            self._pipeline.replace_wal(new_wal)
            old.close()
            # lift the columnar form before the manifest swap pins it;
            # commits staged during the pause land in the fresh WAL
            # (sequence == horizon) and are therefore dirty by horizon
            self._write_imc_segments(snapshot, new_wal.sequence,
                                     drop_stale=False)
            with self._lock:
                self._sealed.append((sealed_name, sealed_length))
                document = self._manifest_document(snapshot)
            manifestfmt.write_manifest(self._fs, self._directory, document)
            self._gc_imc_files()
        finally:
            self._pipeline.resume()

    def compact(self) -> int:
        """Rewrite only the live documents into one fresh segment, then
        drop every superseded log file.  Returns bytes reclaimed."""
        with self._lock:
            self._live()
        self._pipeline.pause()
        try:
            with self._lock:
                self._live()
                snapshot = self._snapshot
            old = self._pipeline.wal
            old.commit()

            sequence = old.sequence + 1
            segment = LogWriter.create(
                self._fs, posixpath.join(self._directory,
                                         logfmt.log_name(sequence)), sequence)
            for doc_id in sorted(snapshot.docs):
                segment.append(logfmt.encode_record(
                    logfmt.OP_INSERT, doc_id, snapshot.docs[doc_id]))
            segment.commit()
            segment.close()

            new_wal = LogWriter.create(
                self._fs, posixpath.join(self._directory,
                                         logfmt.log_name(sequence + 1)),
                sequence + 1)
            self._pipeline.replace_wal(new_wal)
            old.close()
            # compaction rebuilds the DataGuide over the live durable
            # documents only — the one sanctioned shrink point (commits
            # staged during the pause re-add their paths when published)
            builder = DataGuideBuilder()
            for doc_id in sorted(snapshot.docs):
                builder.add(oson_decode(snapshot.docs[doc_id]))
            # refresh the columnar segments against the exact snapshot
            # being rewritten; without a provider the stale entries are
            # dropped (their horizons point into the logs GC'd below)
            self._write_imc_segments(snapshot, new_wal.sequence,
                                     drop_stale=True)
            with self._lock:
                self._builder = builder
                self._sealed = [(posixpath.basename(segment.path),
                                 segment.offset)]
                document = self._manifest_document(snapshot)
            manifestfmt.write_manifest(self._fs, self._directory, document)
            # GC every unreferenced log at or below the new horizon: the
            # files this compaction superseded, plus orphans left by an
            # earlier compaction that crashed after publishing its manifest
            # but before its own remove sweep
            referenced = {posixpath.basename(segment.path),
                          posixpath.basename(new_wal.path)}
            horizon = new_wal.sequence
            reclaimed = 0
            for name in self._fs.listdir(self._directory):
                log_sequence = logfmt.parse_log_name(name)
                if (log_sequence is None or name in referenced
                        or log_sequence > horizon):
                    continue
                path = posixpath.join(self._directory, name)
                reclaimed += self._fs.file_size(path)
                self._fs.remove(path)
            self._gc_imc_files()
            return max(0, reclaimed - segment.offset)
        finally:
            self._pipeline.resume()

    def _manifest_document(self,
                           snapshot: Optional[StoreSnapshot] = None
                           ) -> Dict[str, Any]:
        """Build the manifest checkpoint document (pure; no I/O).  The
        durable counts come from the published snapshot so a manifest
        never claims operations whose batch has not fsynced."""
        if snapshot is None:
            snapshot = self._snapshot
        return manifestfmt.build_manifest(
            list(self._sealed),
            posixpath.basename(self._pipeline.wal.path),
            snapshot.next_doc_id, len(snapshot.docs), self._builder,
            imc_segments=list(self._imc_segments))

    # -- introspection -----------------------------------------------------

    def storage_files(self) -> List[str]:
        """Log files in apply order (sealed segments then active WAL)."""
        names = [name for name, _ in self._sealed]
        names.append(posixpath.basename(self._pipeline.wal.path))
        return names
