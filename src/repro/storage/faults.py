"""Deterministic fault injection for the durable collection store.

The harness wraps a :class:`~repro.storage.files.MemoryFileSystem` and
counts every mutating operation — each ``write``, ``flush``, ``sync``,
``create``, ``open_append``, ``replace`` and ``remove`` is a numbered
*fault point*.  A :class:`FaultPlan` nominates one point and a failure
mode; when execution reaches it the harness applies the mode and raises
:class:`SimulatedCrash`:

* ``crash``     — power loss *before* the operation: every un-fsynced
  byte in the system is discarded;
* ``torn``      — the operation's write reaches disk only partially (a
  prefix becomes durable), everything else volatile is lost;
* ``bitflip``   — the operation completes and syncs, then one bit of
  the touched file's durable image is flipped (media corruption);
* ``truncate``  — the operation completes and syncs, then the touched
  file's durable image loses its final bytes;
* ``writeback`` — power loss where the OS had already written back part
  of the touched file's dirty pages: a deterministic *prefix* of its
  pending (un-fsynced) bytes becomes durable, everything else volatile
  is lost.  Not part of the default ``MODES`` — it exists to cut
  group-commit batches between their frames (the harness's classic
  crash can only lose *all* pending bytes of a multi-frame batch at
  once), so the group-commit sweep opts in explicitly.

Mutation positions derive from CRC-32 of ``(seed, path, op index)``, so
a failing sweep case is reproducible from its printed coordinates
alone.  A recording pass (no plan) yields the op log the sweep
enumerates — fault points are discovered, not hard-coded, so new
write/flush boundaries in the protocol are swept automatically.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.storage.files import FileHandle, FileSystem, MemoryFileSystem

CRASH = "crash"
TORN = "torn"
BITFLIP = "bitflip"
TRUNCATE = "truncate"
WRITEBACK = "writeback"

MODES = (CRASH, TORN, BITFLIP, TRUNCATE)


class SimulatedCrash(BaseException):
    """Raised at the planned fault point.

    Derives from ``BaseException`` so no library ``except ReproError``
    (or other Exception handler) can accidentally swallow the simulated
    power loss mid-protocol.
    """

    def __init__(self, op_index: int, op: str, path: str, mode: str) -> None:
        super().__init__(f"simulated {mode} at op {op_index} "
                         f"({op} on {path})")
        self.op_index = op_index
        self.op = op
        self.path = path
        self.mode = mode


@dataclass(frozen=True)
class FaultPlan:
    """Crash at fault point ``crash_at`` with the given mode."""

    crash_at: int
    mode: str = CRASH
    seed: int = 0

    def position(self, path: str, extent: int) -> int:
        """Deterministic mutation position inside ``extent`` bytes."""
        if extent <= 0:
            return 0
        key = f"{self.seed}:{path}:{self.crash_at}".encode("utf-8")
        return zlib.crc32(key) % extent


@dataclass
class OpRecord:
    index: int
    op: str
    path: str


class FaultyFileSystem(FileSystem):
    """A file system that fails on schedule.

    With ``plan=None`` it records the op log (the enumeration pass);
    with a plan it raises :class:`SimulatedCrash` at the planned point
    after applying the planned damage.
    """

    def __init__(self, inner: Optional[MemoryFileSystem] = None,
                 plan: Optional[FaultPlan] = None) -> None:
        self.inner = inner if inner is not None else MemoryFileSystem()
        self.plan = plan
        self.op_log: List[OpRecord] = []
        self._counter = 0

    # -- fault-point bookkeeping -------------------------------------------

    def _boundary(self, op: str, path: str) -> Tuple[bool, str]:
        """Count one fault point; returns (fire_now, mode)."""
        index = self._counter
        self._counter += 1
        self.op_log.append(OpRecord(index, op, path))
        if self.plan is not None and index == self.plan.crash_at:
            return True, self.plan.mode
        return False, ""

    def _crash(self, op: str, path: str, mode: str) -> None:
        self.inner.crash()
        plan = self.plan
        raise SimulatedCrash(plan.crash_at if plan else -1, op, path, mode)

    def _post_op_damage(self, op: str, path: str, mode: str) -> None:
        """bitflip / truncate: op completed; damage the durable image."""
        plan = self.plan
        if plan is None:
            return
        self.inner.force_sync(path)
        data = self.inner.durable_bytes(path)
        if not data:
            self._crash(op, path, mode)
        if mode == BITFLIP:
            position = plan.position(path, len(data))
            bit = 1 << (plan.position(path + "#bit", 8))
            mutated = bytearray(data)
            mutated[position] ^= bit
            self.inner.mutate_durable(path, lambda _: bytes(mutated))
        elif mode == TRUNCATE:
            cut = 1 + plan.position(path, min(len(data), 24))
            self.inner.mutate_durable(path, lambda d: d[:-cut])
        self._crash(op, path, mode)

    def _fire(self, op: str, path: str, mode: str,
              perform, data: bytes = b"") -> None:
        """Apply the planned failure around ``perform()``; always raises
        :class:`SimulatedCrash`."""
        if mode == CRASH:
            self._crash(op, path, mode)
        if mode == WRITEBACK:
            # let this write's bytes join the pending run first, so the
            # deterministic cut can land inside them
            if op == "write":
                perform()
            plan = self.plan
            pending = self.inner.pending_bytes(path)
            keep = 0
            if plan is not None and pending:
                keep = plan.position(path, len(pending) + 1)
            self.inner.crash_with_writeback(path, keep)
            raise SimulatedCrash(
                plan.crash_at if plan else -1, op, path, WRITEBACK)
        if mode == TORN and op == "write":
            # a prefix of this write becomes durable, all other
            # volatile bytes are lost
            keep = len(data) // 2
            plan = self.plan
            if plan is not None and len(data) > 1:
                keep = plan.position(path, len(data))
            self.inner.crash()
            if keep:
                self.inner.mutate_durable(path, lambda d: d + data[:keep])
            raise SimulatedCrash(
                plan.crash_at if plan else -1, op, path, TORN)
        if mode == TORN:
            # torn only makes sense for writes; degrade to plain crash
            self._crash(op, path, mode)
        perform()
        self._post_op_damage(op, path, mode)

    # -- FileSystem surface ------------------------------------------------

    def create(self, path: str) -> FileHandle:
        fire, mode = self._boundary("create", path)
        if fire:
            self._fire("create", path, mode,
                       lambda: self.inner.create(path))
        handle = self.inner.create(path)
        return _FaultyHandle(self, path, handle)

    def open_append(self, path: str) -> FileHandle:
        fire, mode = self._boundary("open_append", path)
        if fire:
            self._fire("open_append", path, mode, lambda: None)
        handle = self.inner.open_append(path)
        return _FaultyHandle(self, path, handle)

    def read_bytes(self, path: str) -> bytes:
        return self.inner.read_bytes(path)

    def exists(self, path: str) -> bool:
        return self.inner.exists(path)

    def file_size(self, path: str) -> int:
        return self.inner.file_size(path)

    def listdir(self, path: str) -> List[str]:
        return self.inner.listdir(path)

    def replace(self, src: str, dst: str) -> None:
        fire, mode = self._boundary("replace", dst)
        if fire:
            self._fire("replace", dst, mode,
                       lambda: self.inner.replace(src, dst))
            return
        self.inner.replace(src, dst)

    def remove(self, path: str) -> None:
        fire, mode = self._boundary("remove", path)
        if fire:
            self._fire("remove", path, mode,
                       lambda: self.inner.remove(path))
            return
        self.inner.remove(path)

    def ensure_dir(self, path: str) -> None:
        self.inner.ensure_dir(path)


class _FaultyHandle(FileHandle):
    def __init__(self, fs: FaultyFileSystem, path: str,
                 inner: FileHandle) -> None:
        self._fs = fs
        self._path = path
        self._inner = inner

    def _guarded(self, op: str, perform, data: bytes = b"") -> None:
        fire, mode = self._fs._boundary(op, self._path)
        if fire:
            self._fs._fire(op, self._path, mode, perform, data)
            return
        perform()

    def write(self, data: bytes) -> None:
        self._guarded("write", lambda: self._inner.write(data), data)

    def flush(self) -> None:
        self._guarded("flush", self._inner.flush)

    def sync(self) -> None:
        self._guarded("sync", self._inner.sync)

    def close(self) -> None:
        self._inner.close()

    def tell(self) -> int:
        return self._inner.tell()


@dataclass
class SweepCase:
    """One point in the crash sweep: coordinates + classification."""

    plan: FaultPlan
    op: OpRecord

    def describe(self) -> str:
        return (f"fault point {self.op.index} ({self.op.op} on "
                f"{self.op.path}) mode={self.plan.mode} "
                f"seed={self.plan.seed}")


@dataclass
class SweepEnumeration:
    """The full crash matrix discovered by a recording pass."""

    ops: List[OpRecord]
    seed: int
    modes: Tuple[str, ...] = MODES

    @property
    def cases(self) -> List[SweepCase]:
        found = []
        for op in self.ops:
            for mode in self.modes:
                found.append(SweepCase(
                    FaultPlan(op.index, mode, self.seed), op))
        return found


def enumerate_fault_points(workload, seed: int = 0,
                           modes: Tuple[str, ...] = MODES
                           ) -> SweepEnumeration:
    """Run ``workload(fs, journal)`` once on a recording file system
    and return the discovered crash matrix."""
    recorder = FaultyFileSystem()
    workload(recorder, [])
    return SweepEnumeration(ops=list(recorder.op_log), seed=seed,
                            modes=modes)


@dataclass
class CrashOutcome:
    """What a single sweep run left on 'disk'."""

    case: SweepCase
    durable: MemoryFileSystem
    crashed: bool
    journal: list  # acknowledgements the workload recorded before the crash


def run_with_fault(workload, case: SweepCase) -> CrashOutcome:
    """Run ``workload(fs, journal)`` under the case's fault plan and
    capture the durable state at the crash.  The workload appends each
    *acknowledged* operation to ``journal`` (in place, so progress up to
    the crash survives it) — the sweep's zero-loss oracle replays it."""
    fs = FaultyFileSystem(plan=case.plan)
    journal: list = []
    crashed = False
    try:
        workload(fs, journal)
    except SimulatedCrash:
        crashed = True
    return CrashOutcome(case=case, durable=fs.inner.durable_state(),
                        crashed=crashed, journal=journal)
