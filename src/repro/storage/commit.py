"""The group-commit pipeline: many logical commits, one fsync.

Before this module, every ``CollectionStore`` mutation paid its own
``flush + fsync`` *while holding the store lock* — correct, but the
durability stall serialized every caller and the lock carried a
documented ``allow_io=True`` sanitizer exemption.  The pipeline moves
the WAL entirely out of the store lock:

* writers **stage** a :class:`LogicalCommit` (already applied to the
  store's in-memory writer state and encoded into log-record payloads)
  and then wait for it to become durable;
* one **leader** at a time drains everything staged, appends a batch
  marker (:data:`repro.storage.log.OP_BATCH`, only when the batch holds
  more than one operation) plus every record frame, and issues a single
  ``flush + fsync`` — with **no lock held across the I/O**;
* after the fsync returns the leader *publishes* (the store swaps in a
  new immutable snapshot covering the whole batch) and only then
  acknowledges the waiting writers — the classic group-commit ack
  point: an acknowledged commit is durable, an unacknowledged one may
  be lost, and a crash inside a batch durably keeps at most a prefix
  of it (all-or-prefix).

Two driving modes share the same batching logic:

* **inline** (the default): the first waiter to find the pipeline idle
  elects itself leader and commits on its own thread.  Single-threaded
  callers therefore behave exactly like the old per-commit-fsync store
  — same I/O boundaries in the same order, which is what keeps the
  deterministic fault sweep meaningful — while concurrent callers form
  batches naturally under load;
* **committer thread** (:meth:`CommitPipeline.start_thread`): a
  dedicated daemon thread is the permanent leader, which is what the
  serving layer uses so writer sessions never do I/O themselves.

Failure contract: any exception out of the batch I/O (a real
``OSError`` or the fault harness's ``SimulatedCrash``) *poisons* the
pipeline — the in-memory writer state can no longer be trusted to
match the log, so every staged and future commit fails with
:class:`~repro.errors.StorageError`, and the original exception is
re-raised on the leader's thread (preserving ``SimulatedCrash``
propagation for the fault harness).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import StorageError
from repro.obs import locks as _locks
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.storage import log as logfmt
from repro.storage.log import LogWriter

#: group-commit observability: how many logical commits and operation
#: records each fsync covered, plus the staged-to-acknowledged latency
_BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)
_GROUP_COMMITS = _metrics.counter("storage.commit.groups")
_BATCH_COMMITS = _metrics.histogram("storage.commit.batch_commits",
                                    boundaries=_BATCH_SIZE_BUCKETS)
_BATCH_OPS = _metrics.histogram("storage.commit.batch_ops",
                                boundaries=_BATCH_SIZE_BUCKETS)
_COMMIT_WAIT_MS = _metrics.histogram("storage.commit.wait_ms")


class LogicalCommit:
    """One writer's staged unit of durability.

    ``records`` are the encoded log-record payloads to frame into the
    WAL (in order); ``ops`` mirror them as ``(op, doc_id, image)``
    tuples for snapshot publication; ``documents`` are the decoded
    insert/update documents, carried so the store's DataGuide only
    learns paths once they are durable; ``next_doc_id`` is the id
    allocation floor after this commit, carried so the published
    snapshot can advance it atomically with the documents.
    """

    __slots__ = ("records", "ops", "documents", "next_doc_id",
                 "done", "error")

    def __init__(self, records: List[bytes],
                 ops: List[Tuple[int, int, bytes]],
                 next_doc_id: int,
                 documents: Tuple[Any, ...] = ()) -> None:
        self.records = records
        self.ops = ops
        self.documents = documents
        self.next_doc_id = next_doc_id
        self.done = False                       # guarded-by: _cond
        self.error: Optional[BaseException] = None  # guarded-by: _cond


class CommitPipeline:
    """Batches :class:`LogicalCommit` objects into single-fsync groups.

    The pipeline owns the WAL writer exclusively: between ``submit``
    and acknowledgement only the elected leader touches it, and admin
    operations (checkpoint/compact/close) take the pipeline's *pause*
    — drain staged commits, block new leaders — before rotating it.
    """

    def __init__(self, wal: LogWriter,
                 on_durable: Callable[[List[LogicalCommit]], None]) -> None:
        self._cond = threading.Condition(_locks.make_lock("storage.commit"))
        self._wal = wal                  # guarded-by: _cond (rebind only;
        # the elected leader reads it lock-free while committing)
        self._on_durable = on_durable
        self._pending: List[LogicalCommit] = []  # guarded-by: _cond
        self._committing = False         # guarded-by: _cond
        self._paused = False             # guarded-by: _cond
        self._stopped = False            # guarded-by: _cond
        self._failed: Optional[BaseException] = None  # guarded-by: _cond
        self._batch_limit: Optional[int] = None  # guarded-by: _cond
        self._thread: Optional[threading.Thread] = None  # guarded-by: _cond

    # -- configuration -----------------------------------------------------

    def start_thread(self) -> None:
        """Switch to dedicated-committer mode: a daemon thread becomes
        the permanent leader and callers only ever wait."""
        with self._cond:
            if self._thread is not None:
                return
            thread = threading.Thread(target=self._run,
                                      name="repro-committer", daemon=True)
            self._thread = thread
        thread.start()

    def set_batch_limit(self, limit: Optional[int]) -> Optional[int]:
        """Cap commits per fsync (``1`` reproduces the per-commit-fsync
        baseline for benchmarking); returns the previous cap."""
        if limit is not None and limit < 1:
            raise StorageError(f"batch limit must be positive, got {limit}")
        with self._cond:
            previous = self._batch_limit
            self._batch_limit = limit
        return previous

    @property
    def wal(self) -> LogWriter:
        return self._wal

    # -- the writer path ---------------------------------------------------

    def submit(self, commit: LogicalCommit) -> None:
        """Stage one logical commit (does not wait for durability).

        Callers stage under the store lock — staging is pure list work,
        so the nesting ``store lock -> pipeline lock`` never covers I/O.
        """
        with self._cond:
            self._refuse_if_unusable()
            self._pending.append(commit)
            self._cond.notify_all()

    def wait(self, commit: LogicalCommit) -> None:
        """Block until ``commit`` is durable (the acknowledgement).

        In inline mode the waiter elects itself leader whenever the
        pipeline is idle, so a single-threaded caller commits its own
        batch immediately and concurrent callers piggyback on whoever
        got there first.
        """
        started = _trace.monotonic()
        while True:
            lead_now = False
            with self._cond:
                if commit.done:
                    break
                if self._failed is not None or self._stopped:
                    self._raise_pipeline_down(commit)
                if (self._thread is None and not self._committing
                        and not self._paused and self._pending):
                    lead_now = True
                else:
                    self._cond.wait()
                    if commit.done:
                        break
                    continue
            if lead_now:
                self._lead()
        if commit.error is not None:
            raise StorageError(
                f"group commit failed: {commit.error}") from commit.error
        _COMMIT_WAIT_MS.observe((_trace.monotonic() - started) * 1000.0)

    def commit(self, commit: LogicalCommit) -> None:
        """``submit`` + ``wait`` in one call."""
        self.submit(commit)
        self.wait(commit)

    # -- leader election and batch I/O -------------------------------------

    def _lead(self, even_if_paused: bool = False) -> bool:
        """Try to become leader and commit one batch; returns whether a
        batch was committed.  Called with **no** locks held."""
        with self._cond:
            if (self._committing or not self._pending
                    or (self._paused and not even_if_paused)
                    or self._failed is not None):
                return False
            limit = self._batch_limit
            if limit is None or limit >= len(self._pending):
                batch = self._pending
                self._pending = []
            else:
                batch = self._pending[:limit]
                self._pending = self._pending[limit:]
            self._committing = True
        try:
            self._write_batch(batch)
        except BaseException as exc:  # lint: ignore[broad-except] poison-then-propagate: SimulatedCrash (BaseException) must reach the fault harness after waiters are failed
            with self._cond:
                self._failed = exc
                self._committing = False
                for entry in batch:
                    entry.error = exc
                    entry.done = True
                self._cond.notify_all()
            raise
        self._on_durable(batch)
        with self._cond:
            self._committing = False
            for entry in batch:
                entry.done = True
            self._cond.notify_all()
        return True

    def _write_batch(self, batch: List[LogicalCommit]) -> None:
        """Append the whole batch and fsync once — no locks held."""
        wal = self._wal
        total_ops = sum(len(entry.records) for entry in batch)
        with _trace.span("commit.group", log=wal.path,
                         commits=len(batch), ops=total_ops):
            if total_ops > 1:
                wal.append(logfmt.encode_batch_marker(total_ops))
            for entry in batch:
                for payload in entry.records:
                    wal.append(payload)
            wal.commit()
        _GROUP_COMMITS.inc()
        _BATCH_COMMITS.observe(len(batch))
        _BATCH_OPS.observe(total_ops)

    def _run(self) -> None:
        """Dedicated-committer loop (thread mode)."""
        while True:
            with self._cond:
                while (not self._pending or self._paused
                       or self._committing) and not self._stopped \
                        and self._failed is None:
                    self._cond.wait()
                if self._stopped or self._failed is not None:
                    return
            try:
                self._lead()
            except BaseException:  # lint: ignore[broad-except] the pipeline is already poisoned and every waiter failed; the committer thread just exits
                return

    # -- admin protocol (checkpoint / compact / close) ---------------------

    def pause(self) -> None:
        """Drain staged commits and block new leaders.

        Grants exclusive admin access to the WAL: after ``pause``
        returns, no commit I/O is in flight and none can start until
        :meth:`resume`.  One admin at a time; a second ``pause`` waits.
        """
        with self._cond:
            self._refuse_if_unusable()
            while self._paused:
                self._cond.wait()
                self._refuse_if_unusable()
            self._paused = True
            while self._committing:
                self._cond.wait()
        # no leader can start now; drain whatever was staged before the
        # pause won the flag (commits staged after it wait for resume)
        while self._lead(even_if_paused=True):
            pass

    def resume(self) -> None:
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    def replace_wal(self, wal: LogWriter) -> LogWriter:
        """Swap the WAL writer (checkpoint/compact rotation).  The
        caller must hold the pause."""
        with self._cond:
            if not self._paused:
                raise StorageError(
                    "replace_wal requires the pipeline to be paused")
            previous = self._wal
            self._wal = wal
            return previous

    def shutdown(self) -> None:
        """Drain, then permanently stop (store close)."""
        with self._cond:
            already_down = self._stopped or self._failed is not None
        if not already_down:
            self.pause()
        with self._cond:
            self._stopped = True
            thread = self._thread
            self._thread = None
            self._cond.notify_all()
        if thread is not None:
            thread.join()

    # -- state helpers -----------------------------------------------------

    @property
    def failed(self) -> Optional[BaseException]:
        return self._failed

    def _refuse_if_unusable(self) -> None:
        if self._failed is not None:
            raise StorageError(
                f"commit pipeline failed: {self._failed}") from self._failed
        if self._stopped:
            raise StorageError("commit pipeline is shut down")

    def _raise_pipeline_down(self, commit: LogicalCommit) -> None:
        if commit.error is not None:
            raise StorageError(
                f"group commit failed: {commit.error}") from commit.error
        if self._failed is not None:
            raise StorageError(
                f"commit pipeline failed: {self._failed}") from self._failed
        raise StorageError("commit pipeline shut down while a commit "
                           "was staged (the operation was never "
                           "acknowledged)")


def snapshot_docs(base: dict, batch: List[LogicalCommit]) -> dict:
    """Apply a durable batch to a copy of ``base`` (doc id -> image).

    The helper the store uses to build the next published snapshot:
    the copy-then-apply keeps the previous snapshot immutable for any
    reader still pinning it.
    """
    docs = dict(base)
    for entry in batch:
        for op, doc_id, image in entry.ops:
            if op == logfmt.OP_DELETE:
                docs.pop(doc_id, None)
            else:
                docs[doc_id] = image
    return docs


__all__ = ["CommitPipeline", "LogicalCommit", "snapshot_docs"]
