"""Crash-safe durable collection storage (ISSUE 2 tentpole).

The paper's premise is that OSON documents *live in database storage*
with an automatically maintained DataGuide (section 3–4); this package
gives the reproduction that durable substrate:

* :mod:`~repro.storage.framing` — checksummed, resyncable record frames;
* :mod:`~repro.storage.log` — the WAL/segment record format (one file
  format; sealing is metadata-only);
* :mod:`~repro.storage.manifest` — the atomically-swapped checkpoint
  root, itself an OSON image carrying the serialized DataGuide;
* :mod:`~repro.storage.store` — :class:`CollectionStore`: fsync-acked
  DML over published :class:`StoreSnapshot` versions (snapshot-isolated
  reads), checkpointing and compaction;
* :mod:`~repro.storage.commit` — the group-commit pipeline batching
  many logical commits into one fsync, outside every lock;
* :mod:`~repro.storage.recovery` — verified recovery with quarantine;
* :mod:`~repro.storage.faults` — deterministic crash/torn-write/
  bit-flip/truncation injection over the file abstraction;
* :mod:`~repro.storage.chaos` — seeded *runtime* fault injection
  (transient IO errors, latency spikes, shard-unavailability windows)
  fired at named fault points under live traffic, no restart;
* :mod:`~repro.storage.health` — the per-shard health state machine
  (healthy → suspect → failed → recovered) behind fail-fast writes and
  probe-based recovery;
* :mod:`~repro.storage.fsck` — offline integrity checking shared with
  ``python -m repro.analysis verify``;
* :mod:`~repro.storage.files` — the injectable file-system surface;
* :mod:`~repro.storage.shard` — :class:`ShardedStore`: N
  hash-partitioned ``CollectionStore`` shards (each with its own WAL,
  commit pipeline and DataGuide) behind one router, composing per-shard
  snapshots into cross-shard :class:`ShardedSnapshot` reads.
"""

from repro.storage.chaos import ChaosInjector, ChaosPlan, ChaosRule
from repro.storage.commit import CommitPipeline, LogicalCommit
from repro.storage.files import FileSystem, MemoryFileSystem, OsFileSystem
from repro.storage.health import ShardHealthBoard
from repro.storage.fsck import (fsck, imc_segment_status,
                                verify_imc_segments, verify_store_file)
from repro.storage.recovery import (QuarantinedRecord, RecoveryReport,
                                    recover)
from repro.storage.shard import (ShardedRecoveryReport, ShardedSnapshot,
                                 ShardedStore, fsck_sharded,
                                 is_sharded_store)
from repro.storage.store import CollectionStore, StoreSnapshot

__all__ = [
    "ChaosInjector",
    "ChaosPlan",
    "ChaosRule",
    "ShardHealthBoard",
    "CollectionStore",
    "CommitPipeline",
    "LogicalCommit",
    "StoreSnapshot",
    "ShardedRecoveryReport",
    "ShardedSnapshot",
    "ShardedStore",
    "fsck_sharded",
    "is_sharded_store",
    "FileSystem",
    "MemoryFileSystem",
    "OsFileSystem",
    "QuarantinedRecord",
    "RecoveryReport",
    "recover",
    "fsck",
    "imc_segment_status",
    "verify_imc_segments",
    "verify_store_file",
]
