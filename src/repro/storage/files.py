"""Injectable file abstraction for the durable collection store.

Every byte the store writes or reads goes through a :class:`FileSystem`,
so the fault-injection harness (:mod:`repro.storage.faults`) can wrap one
and simulate crashes at each write/flush/sync boundary.  Two concrete
implementations:

* :class:`OsFileSystem` — the real thing: buffered appends, ``flush``
  maps to file-object flush, ``sync`` to ``os.fsync``, ``replace`` to
  the atomic ``os.replace`` followed by an fsync of the parent
  directory (rename atomicity alone does not make the new name
  durable on POSIX);
* :class:`MemoryFileSystem` — an in-memory model with explicit
  durability semantics: bytes written but not yet synced live in a
  per-file ``pending`` buffer that a simulated crash discards (or
  tears), while ``sync`` promotes them to the durable image.

Known model divergence: the memory model treats *directory entries*
(create/replace/remove) as atomic **and immediately durable**, so the
fault harness cannot exercise a crash that loses a rename or a newly
created file the way real POSIX can before the parent directory is
fsynced.  :class:`OsFileSystem` closes that gap on real disks by
fsyncing the parent directory after every create/replace/remove.

The store only ever *appends* to log files and atomically replaces the
manifest, so the interface is deliberately tiny — there is no seek, no
overwrite, no partial read.
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.errors import StorageError
from repro.obs import locks as _locks


class FileHandle:
    """An append-only writable file."""

    def write(self, data: bytes) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def tell(self) -> int:
        raise NotImplementedError


class FileSystem:
    """Minimal file-system surface used by the store."""

    def create(self, path: str) -> FileHandle:
        """Create (or truncate) ``path`` and open it for appending."""
        raise NotImplementedError

    def open_append(self, path: str) -> FileHandle:
        raise NotImplementedError

    def read_bytes(self, path: str) -> bytes:
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def file_size(self, path: str) -> int:
        raise NotImplementedError

    def listdir(self, path: str) -> List[str]:
        raise NotImplementedError

    def replace(self, src: str, dst: str) -> None:
        """Atomically rename ``src`` over ``dst``."""
        raise NotImplementedError

    def remove(self, path: str) -> None:
        raise NotImplementedError

    def ensure_dir(self, path: str) -> None:
        raise NotImplementedError


# -- real files --------------------------------------------------------------


def _fsync_dir(path: str) -> None:
    """Make a directory-entry change (create/rename/unlink) durable.

    POSIX only guarantees a new name survives a crash once the *parent
    directory* is fsynced; ``os.replace`` alone is atomic but not
    durable.  Platforms that cannot open a directory for fsync (e.g.
    Windows) are skipped — there is no portable equivalent.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(path or ".", flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # lint: ignore[silent-except] fs without dir fsync (best-effort durability upgrade)
        pass
    finally:
        os.close(fd)


class _OsFileHandle(FileHandle):
    def __init__(self, handle) -> None:
        self._handle = handle

    def write(self, data: bytes) -> None:
        self._handle.write(data)

    def flush(self) -> None:
        self._handle.flush()

    def sync(self) -> None:
        _locks.note_blocking_io("fsync")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()

    def tell(self) -> int:
        return self._handle.tell()


class OsFileSystem(FileSystem):
    """The durable store's default backend: real OS files."""

    def create(self, path: str) -> FileHandle:
        handle = _OsFileHandle(open(path, "wb"))
        _fsync_dir(os.path.dirname(path))
        return handle

    def open_append(self, path: str) -> FileHandle:
        return _OsFileHandle(open(path, "ab"))

    def read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def file_size(self, path: str) -> int:
        return os.path.getsize(path)

    def listdir(self, path: str) -> List[str]:
        return sorted(os.listdir(path))

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)
        _fsync_dir(os.path.dirname(dst))

    def remove(self, path: str) -> None:
        os.remove(path)
        _fsync_dir(os.path.dirname(path))

    def ensure_dir(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)


# -- in-memory model ---------------------------------------------------------


class _MemFile:
    """A file as two byte runs: durable (``synced``) and volatile
    (``pending`` — written but not yet fsynced)."""

    __slots__ = ("synced", "pending")

    def __init__(self, synced: bytes = b"") -> None:
        self.synced = bytearray(synced)
        self.pending = bytearray()

    @property
    def content(self) -> bytes:
        return bytes(self.synced) + bytes(self.pending)


class _MemFileHandle(FileHandle):
    def __init__(self, fs: "MemoryFileSystem", path: str) -> None:
        self._fs = fs
        self._path = path
        self._closed = False

    def _file(self) -> _MemFile:
        if self._closed:
            raise StorageError(f"write to closed file {self._path}")
        entry = self._fs._files.get(self._path)
        if entry is None:
            raise StorageError(f"file disappeared under open handle: "
                               f"{self._path}")
        return entry

    def write(self, data: bytes) -> None:
        self._file().pending.extend(data)

    def flush(self) -> None:
        # application buffer and OS page cache are modeled as one
        # volatile tier; flush is a boundary but moves nothing
        self._file()

    def sync(self) -> None:
        # the memory model has no real fsync, but it keeps the
        # sanitizer's lock-held-across-IO check honest in tests
        _locks.note_blocking_io("fsync")
        entry = self._file()
        entry.synced.extend(entry.pending)
        entry.pending.clear()

    def close(self) -> None:
        self._closed = True

    def tell(self) -> int:
        entry = self._file()
        return len(entry.synced) + len(entry.pending)


class MemoryFileSystem(FileSystem):
    """In-memory files with explicit crash semantics.

    ``crash`` discards every un-synced byte, modelling the loss of the
    OS page cache; :meth:`durable_state` snapshots what a machine would
    find on disk after that crash.
    """

    def __init__(self) -> None:
        self._files: Dict[str, _MemFile] = {}
        self._dirs: set = set()

    # -- FileSystem surface ------------------------------------------------

    def create(self, path: str) -> FileHandle:
        self._files[path] = _MemFile()
        return _MemFileHandle(self, path)

    def open_append(self, path: str) -> FileHandle:
        if path not in self._files:
            raise StorageError(f"no such file: {path}")
        return _MemFileHandle(self, path)

    def read_bytes(self, path: str) -> bytes:
        entry = self._files.get(path)
        if entry is None:
            raise StorageError(f"no such file: {path}")
        return entry.content

    def exists(self, path: str) -> bool:
        return path in self._files or path in self._dirs

    def file_size(self, path: str) -> int:
        return len(self.read_bytes(path))

    def listdir(self, path: str) -> List[str]:
        prefix = path.rstrip("/") + "/"
        names = {name[len(prefix):].split("/", 1)[0]
                 for name in self._files if name.startswith(prefix)}
        return sorted(names)

    def replace(self, src: str, dst: str) -> None:
        entry = self._files.pop(src, None)
        if entry is None:
            raise StorageError(f"no such file: {src}")
        # modeled as atomic and immediately durable (the store writes
        # and syncs the source before every replace); real POSIX needs
        # a parent-directory fsync for the durability half — see the
        # module docstring on this divergence
        entry.synced.extend(entry.pending)
        entry.pending.clear()
        self._files[dst] = entry

    def remove(self, path: str) -> None:
        if self._files.pop(path, None) is None:
            raise StorageError(f"no such file: {path}")

    def ensure_dir(self, path: str) -> None:
        self._dirs.add(path.rstrip("/"))

    # -- crash modelling ---------------------------------------------------

    def crash(self) -> None:
        """Lose every byte that was never fsynced."""
        for entry in self._files.values():
            entry.pending.clear()

    def durable_state(self) -> "MemoryFileSystem":
        """A fresh file system holding only the durable bytes — what a
        recovery process would find after a crash."""
        snapshot = MemoryFileSystem()
        snapshot._dirs = set(self._dirs)
        for path, entry in self._files.items():
            snapshot._files[path] = _MemFile(bytes(entry.synced))
        return snapshot

    def force_sync(self, path: str) -> None:
        """Promote a file's pending bytes to durable (harness hook)."""
        entry = self._files.get(path)
        if entry is not None:
            entry.synced.extend(entry.pending)
            entry.pending.clear()

    def crash_with_writeback(self, path: str, keep: int) -> None:
        """Crash, but first let ``keep`` of ``path``'s pending bytes
        reach the durable image — the OS had written back part of its
        dirty pages before power was lost.  Models the mid-batch cut a
        group commit must survive: a *prefix* of un-fsynced bytes
        becomes durable without any acknowledgement having been sent."""
        entry = self._files.get(path)
        if entry is not None and keep > 0:
            entry.synced.extend(entry.pending[:keep])
        self.crash()

    # test/harness access, deliberately public
    def durable_bytes(self, path: str) -> bytes:
        entry = self._files.get(path)
        return b"" if entry is None else bytes(entry.synced)

    def pending_bytes(self, path: str) -> bytes:
        entry = self._files.get(path)
        return b"" if entry is None else bytes(entry.pending)

    def mutate_durable(self, path: str, transform) -> None:
        """Apply ``transform(bytes) -> bytes`` to a file's durable image
        (the fault harness's corruption hook)."""
        entry = self._files.get(path)
        if entry is None:
            raise StorageError(f"no such file: {path}")
        entry.synced = bytearray(transform(bytes(entry.synced)))
