"""Runtime fault injection: seeded transient faults under live traffic.

:mod:`repro.storage.faults` models *crash-and-restart*: one planned
:class:`~repro.storage.faults.SimulatedCrash` (a ``BaseException``)
ends the process-under-test and recovery is judged on what survived.
This module models the other half of operational adversity — faults the
system must absorb **without** restarting: intermittent IO errors,
latency spikes, shard-unavailability windows, poisoned commit
pipelines.  Product code marks *named fault points*
(``chaos.fault_point("shard.read", shard=2)``); an installed
:class:`ChaosPlan` decides deterministically which of those ops fault.

Determinism mirrors the crash harness: every decision is a pure
function of ``(seed, rule index, matched-op ordinal)`` through CRC-32
(:func:`repro.obs.clock.fraction`), so a chaos-sweep failure replays
from its printed seed alone.  Fault *effects* are typed and catchable:

* ``io_error`` / ``unavailable`` raise
  :class:`~repro.errors.TransientFault` (retryable — the scatter
  executor and the sharded commit path back off and retry);
* ``latency`` sleeps through the seeded backoff clock
  (:func:`repro.obs.clock.sleep`), so a `VirtualClock` test observes
  the spike without waiting it out.

``unavailable`` is ``io_error`` with a *window*: ``start`` matched ops
pass first, then every matched op faults until ``limit`` fires have
landed — long enough to drive a shard's health machine to ``failed``,
finite so probes find the shard alive again and recovery is exercised.

Enablement: programmatic ``install(ChaosPlan(...))`` (tests use the
``active(plan)`` context manager), or the ``REPRO_CHAOS`` environment
variable — ``REPRO_CHAOS=<seed>[:<rate>]`` installs a background
sprinkle of io_error + latency across every fault point at process
start.  Disabled (the default) a fault point is one global read and a
``None`` check.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import TransientFault
from repro.obs import clock as _clock
from repro.obs import locks as _locks
from repro.obs import metrics as _metrics

__all__ = [
    "CHAOS_ENV",
    "IO_ERROR",
    "LATENCY",
    "UNAVAILABLE",
    "ChaosInjector",
    "ChaosPlan",
    "ChaosRule",
    "active",
    "fault_point",
    "install",
    "installed",
    "plan_from_env",
    "uninstall",
]

CHAOS_ENV = "REPRO_CHAOS"

IO_ERROR = "io_error"
LATENCY = "latency"
UNAVAILABLE = "unavailable"

KINDS = (IO_ERROR, LATENCY, UNAVAILABLE)

#: the fault points product code currently fires (documentation and the
#: sweep enumerator's vocabulary; new points need no registration)
POINTS = ("shard.scan", "shard.read", "shard.commit", "shard.probe")


@dataclass(frozen=True)
class ChaosRule:
    """One transient-fault pattern.

    ``point`` matches a fault point exactly or as a dotted prefix
    (``"shard"`` matches ``shard.read`` and ``shard.commit``; ``""``
    matches everything).  ``shard`` restricts to one shard when set.
    ``rate`` is the deterministic pseudo-probability per matched op;
    ``start`` skips the first N matched ops (letting a workload warm up
    before the window opens); ``limit`` expires the rule after that
    many fires — ``start``/``limit`` together are what make an
    ``unavailable`` *window* rather than a permanent outage.
    """

    point: str = ""
    kind: str = IO_ERROR
    shard: Optional[int] = None
    rate: float = 1.0
    start: int = 0
    limit: Optional[int] = None
    latency_ms: float = 2.0

    def matches(self, point: str, shard: Optional[int]) -> bool:
        if self.shard is not None and shard != self.shard:
            return False
        if not self.point:
            return True
        return point == self.point or point.startswith(self.point + ".")


@dataclass(frozen=True)
class ChaosPlan:
    """A seed plus the rule set it drives."""

    seed: int = 0
    rules: Tuple[ChaosRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if rule.kind not in KINDS:
                raise ValueError(f"unknown chaos kind {rule.kind!r}")

    @classmethod
    def sprinkle(cls, seed: int, rate: float = 0.02) -> "ChaosPlan":
        """The background-noise plan ``REPRO_CHAOS`` installs: a light
        deterministic drizzle of IO errors and latency everywhere."""
        return cls(seed=seed, rules=(
            ChaosRule(point="", kind=IO_ERROR, rate=rate),
            ChaosRule(point="", kind=LATENCY, rate=rate, latency_ms=1.0),
        ))


@dataclass
class _RuleState:
    matched: int = 0  # guarded-by: ChaosInjector._lock
    fired: int = 0    # guarded-by: ChaosInjector._lock


_FAULTS = _metrics.counter("storage.chaos.faults_injected")
_ERRORS = _metrics.counter("storage.chaos.io_errors")
_SPIKES = _metrics.counter("storage.chaos.latency_spikes")


class ChaosInjector:
    """Evaluates a plan at every fault point.  Decisions happen under
    the injector lock (pure counter arithmetic); effects — the raise or
    the sleep — happen strictly outside it."""

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan
        self._lock = _locks.make_lock("storage.chaos")
        self._states = [_RuleState() for _ in plan.rules]  # guarded-by: _lock

    def fault_point(self, point: str, shard: Optional[int] = None) -> None:
        effects: List[Tuple[ChaosRule, int]] = []
        with self._lock:
            for index, rule in enumerate(self.plan.rules):
                if not rule.matches(point, shard):
                    continue
                state = self._states[index]
                ordinal = state.matched
                state.matched += 1
                if ordinal < rule.start:
                    continue
                if rule.limit is not None and state.fired >= rule.limit:
                    continue
                if rule.rate < 1.0 and _clock.fraction(
                        self.plan.seed, f"{index}:{point}",
                        ordinal) >= rule.rate:
                    continue
                state.fired += 1
                effects.append((rule, ordinal))
        for rule, ordinal in effects:
            _FAULTS.inc()
            if rule.kind == LATENCY:
                _SPIKES.inc()
                _clock.sleep(rule.latency_ms / 1000.0)
                continue
            _ERRORS.inc()
            raise TransientFault(
                f"injected {rule.kind} (seed {self.plan.seed}, op "
                f"{ordinal})", fault_point=point,
                shard_index=-1 if shard is None else shard)

    def stats(self) -> List[Dict[str, Any]]:
        """Per-rule matched/fired tallies (JSON-ready, for the chaos
        report artifact)."""
        with self._lock:
            return [{"point": rule.point or "*", "kind": rule.kind,
                     "shard": rule.shard, "matched": state.matched,
                     "fired": state.fired}
                    for rule, state in zip(self.plan.rules, self._states)]


#: the installed injector; a single attribute read on the disabled path
_ACTIVE: Optional[ChaosInjector] = None


def install(plan: ChaosPlan) -> ChaosInjector:
    global _ACTIVE
    injector = ChaosInjector(plan)
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def installed() -> Optional[ChaosInjector]:
    return _ACTIVE


@contextmanager
def active(plan: ChaosPlan) -> Iterator[ChaosInjector]:
    global _ACTIVE
    previous = _ACTIVE
    injector = install(plan)
    try:
        yield injector
    finally:
        _ACTIVE = previous


def fault_point(point: str, shard: Optional[int] = None) -> None:
    """Mark a named fault point.  Free when chaos is off."""
    injector = _ACTIVE
    if injector is not None:
        injector.fault_point(point, shard)


def plan_from_env(value: Optional[str]) -> Optional[ChaosPlan]:
    """Parse ``REPRO_CHAOS`` — ``<seed>`` or ``<seed>:<rate>`` — into
    the sprinkle plan; None for unset/disabled/unparseable values (a
    typo must not silently run the suite under chaos)."""
    if not value or value.strip().lower() in ("0", "false", "off"):
        return None
    seed_text, _, rate_text = value.partition(":")
    try:
        seed = int(seed_text)
        rate = float(rate_text) if rate_text else 0.02
    except ValueError:
        return None
    if not 0.0 < rate <= 1.0:
        return None
    return ChaosPlan.sprinkle(seed, rate)


def install_from_env() -> Optional[ChaosInjector]:
    plan = plan_from_env(os.environ.get(CHAOS_ENV))
    if plan is None:
        return None
    return install(plan)


install_from_env()
