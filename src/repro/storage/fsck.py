"""Offline integrity checking for store files — the ``fsck`` code path.

:func:`verify_store_file` statically verifies one on-disk store file
(a ``log-*.log`` segment/WAL or the ``MANIFEST``) the same way the
binary verifiers work: structured diagnostics, never raising.  It is
the single code path shared by

* ``python -m repro.tools.store fsck`` (whole-directory check with
  manifest cross-references),
* ``python -m repro.analysis verify`` (which sniffs the frame magic and
  routes store files here), and
* the CI fault-injection job.

Every embedded OSON image — documents in log records and the manifest's
checkpoint document alike — is run through
:func:`repro.analysis.oson_verifier.verify_oson` with its diagnostics
re-based to absolute file offsets.
"""

from __future__ import annotations

import posixpath
from typing import List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.oson_verifier import verify_oson
from repro.core.oson.constants import MAGIC as OSON_MAGIC
from repro.errors import StorageError
from repro.storage import log as logfmt
from repro.storage import manifest as manifestfmt
from repro.storage.files import FileSystem
from repro.storage.framing import FRAME_MAGIC, HEADER_SIZE, scan_frames

#: byte offset of a record's image within its frame payload
_IMAGE_START = 9  # u8 op + u64 doc id


def is_store_file(data: bytes) -> bool:
    """Sniff: store files (logs and MANIFEST) begin with a frame."""
    return data[:4] == FRAME_MAGIC


def verify_store_file(data: bytes, path: Optional[str] = None,
                      sealed_length: Optional[int] = None
                      ) -> List[Diagnostic]:
    """Verify one store file image; returns all findings."""
    window = data if sealed_length is None else data[:sealed_length]
    scan = scan_frames(window)
    diagnostics = list(scan.diagnostics)
    # open batch-marker expectation: [offset, expected, seen] — any
    # record frame (valid or not) fills one slot; a shortfall is a cut
    # group commit and is reported, never silently absorbed
    open_batch: Optional[List[int]] = None
    for found in scan.frames:
        if not found.valid:
            open_batch = _batch_slot(open_batch)
            continue
        record, payload_diags = _verify_payload(found.payload,
                                                found.offset)
        diagnostics.extend(payload_diags)
        if record is None or record.op == logfmt.OP_LOG_HEADER:
            if record is None and found.payload[:4] != OSON_MAGIC:
                open_batch = _batch_slot(open_batch)
            continue
        if record.op == logfmt.OP_BATCH:
            if open_batch is not None:
                diagnostics.append(_partial_batch(open_batch))
            open_batch = [found.offset, record.count, 0]
            continue
        open_batch = _batch_slot(open_batch)
    if open_batch is not None:
        diagnostics.append(_partial_batch(open_batch))
    if sealed_length is not None and len(data) > sealed_length:
        diagnostics.append(Diagnostic(
            "storage.fsck.sealed-slack",
            f"{len(data) - sealed_length} bytes past the sealed length",
            Severity.WARNING, offset=sealed_length))
    if path is not None:
        diagnostics = [Diagnostic(d.rule, d.message, d.severity,
                                  offset=d.offset, path=path)
                       for d in diagnostics]
    return diagnostics


def _verify_payload(payload: bytes, frame_offset: int
                    ) -> Tuple[Optional["logfmt.LogRecord"],
                               List[Diagnostic]]:
    base = frame_offset + HEADER_SIZE
    if payload[:4] == OSON_MAGIC:
        # a manifest frame: the payload is the checkpoint OSON image
        return None, _rebase(verify_oson(payload), base)
    try:
        record = logfmt.decode_record(payload)
    except StorageError as exc:
        return None, [Diagnostic("storage.fsck.record",
                                 f"unreadable log record: {exc}",
                                 offset=base)]
    if record.op in logfmt.IMAGE_OPS:
        return record, _rebase(verify_oson(record.image),
                               base + _IMAGE_START)
    return record, []


def _batch_slot(open_batch: Optional[List[int]]) -> Optional[List[int]]:
    """One record frame consumed one slot of the open batch marker."""
    if open_batch is None:
        return None
    open_batch[2] += 1
    return None if open_batch[2] >= open_batch[1] else open_batch


def _partial_batch(open_batch: List[int]) -> Diagnostic:
    offset, expected, seen = open_batch
    return Diagnostic(
        "storage.fsck.partial-batch",
        f"group-commit batch marker claims {expected} operations but "
        f"only {seen} follow (torn group commit; records past the cut "
        f"were never acknowledged)", Severity.WARNING, offset=offset)


def _rebase(diagnostics: List[Diagnostic], base: int) -> List[Diagnostic]:
    return [Diagnostic(d.rule, d.message, d.severity,
                       offset=None if d.offset is None else base + d.offset)
            for d in diagnostics]


def verify_zone_stats(manifest_doc: dict) -> List[Diagnostic]:
    """Cross-check the manifest's min/max zone stats against its own
    DataGuide entries.

    Zone stats exist to *prune* shards, so the only dangerous defect is
    a zone **narrower** than the guide's recorded extremes (or typed
    differently): a pruner trusting it could skip documents that exist.
    Every finding is a WARNING — the reader contract is that stale or
    missing stats degrade pruning to "scan everything", never to wrong
    answers — but fsck surfaces them so an operator knows the pruning
    metadata needs a checkpoint/compaction to heal.
    """
    diagnostics: List[Diagnostic] = []
    zones = manifest_doc.get("zones")
    if zones is None:
        diagnostics.append(Diagnostic(
            "storage.fsck.zone-missing",
            "manifest has no zone-stats section (pre-sharding manifest); "
            "pruning degrades to never-prune", Severity.WARNING))
        return diagnostics
    entries = {}
    for raw in manifest_doc.get("dataguide", {}).get("entries", ()):
        if raw.get("kind") == "scalar":
            entries[raw.get("path")] = raw
    for zone in zones:
        if (not isinstance(zone, dict) or not isinstance(
                zone.get("path"), str) or "min" not in zone
                or "max" not in zone):
            diagnostics.append(Diagnostic(
                "storage.fsck.zone-shape",
                f"malformed zone-stats row {zone!r}; pruning degrades to "
                f"never-prune", Severity.WARNING))
            continue
        entry = entries.get(zone["path"])
        if entry is None:
            diagnostics.append(Diagnostic(
                "storage.fsck.zone-orphan",
                "zone stats for a path absent from the DataGuide; "
                "pruning degrades to never-prune", Severity.WARNING,
                path=zone["path"]))
            continue
        if zone.get("scalar_type") != entry.get("scalar_type"):
            diagnostics.append(Diagnostic(
                "storage.fsck.zone-stale",
                f"zone scalar_type {zone.get('scalar_type')!r} disagrees "
                f"with DataGuide {entry.get('scalar_type')!r}; pruning "
                f"degrades to never-prune", Severity.WARNING,
                path=zone["path"]))
            continue
        low, high = entry.get("min_value"), entry.get("max_value")
        try:
            narrower = ((low is not None and low < zone["min"])
                        or (high is not None and high > zone["max"]))
        except TypeError:
            narrower = True  # incomparable bound types: treat as stale
        if narrower:
            diagnostics.append(Diagnostic(
                "storage.fsck.zone-stale",
                f"zone range [{zone['min']!r}, {zone['max']!r}] is "
                f"narrower than the DataGuide extremes "
                f"[{low!r}, {high!r}]; a pruner trusting it could skip "
                f"live documents — pruning degrades to never-prune",
                Severity.WARNING, path=zone["path"]))
    return diagnostics


def verify_imc_segments(fs: FileSystem, directory: str,
                        manifest_doc: Optional[dict]) -> List[Diagnostic]:
    """Verify the manifest's pinned IMC column segments.

    Segments are pure cache — every reader degrades to
    rebuild-from-OSON — so, like zone stats, every finding here is a
    WARNING: fsck surfaces the damage (and the wasted cold-start work)
    without ever failing the store over it.
    """
    from repro.imc import segments as imcseg
    diagnostics: List[Diagnostic] = []
    referenced = set()
    for entry in manifestfmt.imc_manifest_entries(manifest_doc):
        name = entry["name"]
        referenced.add(name)
        path = posixpath.join(directory, name)
        if not fs.exists(path):
            diagnostics.append(Diagnostic(
                "storage.fsck.imc-missing",
                f"manifest pins a missing IMC segment for "
                f"{entry['table']}.{entry['column']}; readers degrade "
                f"to rebuild-from-OSON", Severity.WARNING, path=name))
            continue
        data = fs.read_bytes(path)
        if len(data) != entry["length"]:
            diagnostics.append(Diagnostic(
                "storage.fsck.imc-length",
                f"segment file is {len(data)} bytes but the manifest "
                f"pins {entry['length']}", Severity.WARNING, path=name))
        window = data[:entry["length"]]
        found = imcseg.verify_column_segment(window, path=name)
        diagnostics.extend(found)
        if not found:
            decoded = imcseg.decode_column_segment(window)
            if (decoded.table != entry["table"]
                    or decoded.column != entry["column"]):
                diagnostics.append(Diagnostic(
                    "storage.fsck.imc-mismatch",
                    f"segment claims {decoded.table}.{decoded.column} "
                    f"but the manifest pins it for "
                    f"{entry['table']}.{entry['column']}",
                    Severity.WARNING, path=name))
    for name in fs.listdir(directory):
        if (imcseg.parse_imc_segment_name(name) is None
                or name in referenced):
            continue
        diagnostics.append(Diagnostic(
            "storage.fsck.imc-orphan",
            "IMC segment file not pinned by the manifest (interrupted "
            "lift?); the next checkpoint sweeps it", Severity.WARNING,
            path=name))
    return diagnostics


def imc_segment_status(fs: FileSystem, directory: str) -> List[dict]:
    """Per-pinned-segment checksum status rows (for the tools CLI):
    ``{"name", "table", "column", "length", "horizon", "status"}`` with
    status one of ``ok`` / ``missing`` / ``corrupt``."""
    from repro.imc import segments as imcseg
    manifest_doc, _ = manifestfmt.read_manifest(fs, directory)
    rows = []
    for entry in manifestfmt.imc_manifest_entries(manifest_doc):
        path = posixpath.join(directory, entry["name"])
        if not fs.exists(path):
            status = "missing"
        else:
            window = fs.read_bytes(path)[:entry["length"]]
            status = ("ok" if not imcseg.verify_column_segment(window)
                      else "corrupt")
        rows.append({"name": entry["name"], "table": entry["table"],
                     "column": entry["column"],
                     "length": entry["length"],
                     "horizon": entry["horizon"], "status": status})
    return rows


def fsck(fs: FileSystem, directory: str) -> List[Diagnostic]:
    """Check a whole store directory: the manifest, every log file it
    references (at its sealed length), zone stats, IMC column segments,
    and stray files."""
    diagnostics: List[Diagnostic] = []
    manifest_doc, manifest_diags = manifestfmt.read_manifest(fs, directory)
    diagnostics.extend(manifest_diags)
    if manifest_doc is not None:
        diagnostics.extend(verify_zone_stats(manifest_doc))
    diagnostics.extend(verify_imc_segments(fs, directory, manifest_doc))

    referenced = {}
    if manifest_doc is not None:
        for segment in manifest_doc["segments"]:
            referenced[segment["name"]] = segment["length"]
        referenced[manifest_doc["wal"]] = None

    for name, length in referenced.items():
        path = posixpath.join(directory, name)
        if not fs.exists(path):
            diagnostics.append(Diagnostic(
                "storage.fsck.missing",
                "manifest references a missing file", path=name))
            continue
        diagnostics.extend(verify_store_file(
            fs.read_bytes(path), path=name, sealed_length=length))

    horizon = (manifestfmt.manifest_horizon(manifest_doc)
               if manifest_doc is not None else None)
    for name in fs.listdir(directory):
        sequence = logfmt.parse_log_name(name)
        if sequence is None or name in referenced:
            continue
        if horizon is not None and sequence <= horizon:
            diagnostics.append(Diagnostic(
                "storage.fsck.stale-log",
                "log file below the manifest horizon is unreferenced "
                "(interrupted compaction?)", Severity.WARNING, path=name))
        else:
            diagnostics.append(Diagnostic(
                "storage.fsck.orphan-log",
                "log file above the manifest horizon (checkpoint was in "
                "flight); recovery will apply it", Severity.WARNING,
                path=name))
            path = posixpath.join(directory, name)
            diagnostics.extend(verify_store_file(fs.read_bytes(path),
                                                 path=name))
    return diagnostics
