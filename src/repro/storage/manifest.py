"""The manifest: the atomically-swapped checkpoint root of a store.

``MANIFEST`` is a single checksummed frame whose payload is an **OSON
image** of the checkpoint document — the store's own document format is
used for its metadata, so the same static verifier
(:func:`repro.analysis.oson_verifier.verify_oson`) that guards recovered
documents also guards the checkpoint itself.  The document pins:

* ``segments`` — the sealed log files, in apply order, each with the
  byte length of its valid prefix (bytes past it are ignored slack from
  a torn pre-seal tail);
* ``wal`` — the active log file receiving new commits;
* ``next_doc_id`` / ``doc_count`` — id allocation floor and live count;
* ``dataguide`` — the serialized DataGuide (documents seen + every
  path entry), so schema metadata survives restart without a rescan.

Protocol: write ``MANIFEST.tmp``, flush, fsync, then atomically
``replace`` onto ``MANIFEST``.  A crash anywhere leaves either the old
or the new manifest intact; recovery additionally applies any log files
with a sequence number above the manifest's horizon, which closes the
checkpoint window (new WAL created, manifest not yet swapped).
"""

from __future__ import annotations

import posixpath
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity, has_errors
from repro.analysis.oson_verifier import verify_oson
from repro.core.dataguide.builder import DataGuideBuilder
from repro.core.dataguide.model import PathEntry
from repro.core.oson import decode as oson_decode
from repro.core.oson import encode as oson_encode
from repro.errors import OsonError, StorageError
from repro.storage.files import FileSystem
from repro.storage.framing import first_frame, frame

MANIFEST_NAME = "MANIFEST"
MANIFEST_TMP = "MANIFEST.tmp"
FORMAT_NAME = "repro-collection-store"
FORMAT_VERSION = 1


def manifest_path(directory: str) -> str:
    return posixpath.join(directory, MANIFEST_NAME)


# -- DataGuide (de)serialization --------------------------------------------


def dataguide_to_document(builder: DataGuideBuilder) -> Dict[str, Any]:
    entries = []
    for entry in sorted(builder.entries(), key=lambda e: e.key):
        entries.append({
            "path": entry.path,
            "kind": entry.kind,
            "scalar_type": entry.scalar_type,
            "in_array": entry.in_array,
            "max_length": entry.max_length,
            "frequency": entry.frequency,
            "null_count": entry.null_count,
            "min_value": entry.min_value,
            "max_value": entry.max_value,
        })
    return {"documents": builder.documents_seen, "entries": entries}


def dataguide_from_document(doc: Dict[str, Any]) -> DataGuideBuilder:
    builder = DataGuideBuilder()
    builder.documents_seen = int(doc.get("documents", 0))
    for raw in doc.get("entries", ()):
        entry = PathEntry(
            path=raw["path"],
            kind=raw["kind"],
            scalar_type=raw.get("scalar_type"),
            in_array=bool(raw.get("in_array", False)),
            max_length=int(raw.get("max_length", 0)),
            frequency=int(raw.get("frequency", 0)),
            null_count=int(raw.get("null_count", 0)),
            min_value=raw.get("min_value"),
            max_value=raw.get("max_value"),
        )
        builder._entries[entry.key] = entry
    return builder


def zone_stats_from_builder(builder: DataGuideBuilder) -> List[Dict[str, Any]]:
    """Per-path min/max zone stats for the indexed scalar paths — the
    durable pruning metadata of a (shard) store.

    One row per scalar DataGuide entry whose extremes are *homogeneous*
    (plain ``number`` or ``string``): heterogeneous paths degrade their
    min/max through string comparison (:func:`repro.core.dataguide.model
    ._merge_extreme`) and are therefore excluded — a pruner must never
    compare a typed literal against a string-coerced bound.  Stats are
    additive under inserts/updates and never shrink on delete (only
    compaction rebuilds them), so a recorded range is always a superset
    of the live values: pruning against it is conservative by
    construction.
    """
    zones: List[Dict[str, Any]] = []
    for entry in sorted(builder.entries(), key=lambda e: e.key):
        if entry.kind != "scalar" or entry.scalar_type not in ("number",
                                                               "string"):
            continue
        if entry.min_value is None or entry.max_value is None:
            continue
        expected = str if entry.scalar_type == "string" else (int, float)
        if (not isinstance(entry.min_value, expected)
                or not isinstance(entry.max_value, expected)
                or isinstance(entry.min_value, bool)
                or isinstance(entry.max_value, bool)):
            continue
        zones.append({
            "path": entry.path,
            "scalar_type": entry.scalar_type,
            "min": entry.min_value,
            "max": entry.max_value,
        })
    return zones


def structural_signature(builder: DataGuideBuilder) -> set:
    """The structure-bearing projection of a DataGuide — what must match
    between a recovered guide and a from-scratch rebuild.  Statistics
    (frequency, extremes) are additive and legitimately differ once
    deletes or quarantines remove documents."""
    return {(e.path, e.kind, e.scalar_type, e.in_array, e.max_length)
            for e in builder.entries()}


# -- manifest document -------------------------------------------------------


def build_manifest(segments: List[Tuple[str, int]], wal_name: str,
                   next_doc_id: int, doc_count: int,
                   builder: DataGuideBuilder,
                   imc_segments: Optional[List[Dict[str, Any]]] = None
                   ) -> Dict[str, Any]:
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "segments": [{"name": name, "length": length}
                     for name, length in segments],
        "wal": wal_name,
        "next_doc_id": next_doc_id,
        "doc_count": doc_count,
        "dataguide": dataguide_to_document(builder),
        "zones": zone_stats_from_builder(builder),
    }
    if imc_segments:
        # pinned durable IMC column segments (``repro.imc.segments``);
        # omitted entirely when none exist, like pre-IMC manifests
        document["imc_segments"] = list(imc_segments)
    return document


def write_manifest(fs: FileSystem, directory: str,
                   document: Dict[str, Any]) -> None:
    """Durably publish a new manifest via write-sync-replace."""
    tmp = posixpath.join(directory, MANIFEST_TMP)
    handle = fs.create(tmp)
    handle.write(frame(oson_encode(document)))
    handle.flush()
    handle.sync()
    handle.close()
    fs.replace(tmp, manifest_path(directory))


def read_manifest(fs: FileSystem, directory: str
                  ) -> Tuple[Optional[Dict[str, Any]], List[Diagnostic]]:
    """Load and verify the manifest; (None, diagnostics) when absent or
    unusable — never raises on corruption."""
    path = manifest_path(directory)
    if not fs.exists(path):
        return None, [Diagnostic("storage.manifest.missing",
                                 "no MANIFEST file", Severity.WARNING,
                                 path=path)]
    data = fs.read_bytes(path)
    payload = first_frame(data)
    if payload is None:
        return None, [Diagnostic("storage.manifest.frame",
                                 "MANIFEST contains no valid frame",
                                 path=path)]
    diagnostics = verify_oson(payload)
    if has_errors(diagnostics):
        return None, [Diagnostic("storage.manifest.image",
                                 "MANIFEST checkpoint image fails OSON "
                                 "verification", path=path)] + diagnostics
    try:
        document = oson_decode(payload)
    except OsonError as exc:
        return None, [Diagnostic("storage.manifest.decode",
                                 f"MANIFEST image undecodable: {exc}",
                                 path=path)]
    problems = _validate_shape(document, path)
    if problems:
        return None, problems
    return document, []


def _validate_shape(document: Any, path: str) -> List[Diagnostic]:
    def bad(message: str) -> List[Diagnostic]:
        return [Diagnostic("storage.manifest.shape", message, path=path)]

    if not isinstance(document, dict):
        return bad("manifest root is not an object")
    if document.get("format") != FORMAT_NAME:
        return bad(f"unexpected format marker {document.get('format')!r}")
    if document.get("version") != FORMAT_VERSION:
        return bad(f"unsupported manifest version "
                   f"{document.get('version')!r}")
    segments = document.get("segments")
    if not isinstance(segments, list):
        return bad("manifest 'segments' is not a list")
    for entry in segments:
        if (not isinstance(entry, dict)
                or not isinstance(entry.get("name"), str)
                or not isinstance(entry.get("length"), int)):
            return bad("manifest segment entries need a name and length")
    if not isinstance(document.get("wal"), str):
        return bad("manifest 'wal' is not a file name")
    for key in ("next_doc_id", "doc_count"):
        if not isinstance(document.get(key), int):
            return bad(f"manifest {key!r} is not an integer")
    if not isinstance(document.get("dataguide"), dict):
        return bad("manifest 'dataguide' is not an object")
    # "zones" is optional (absent in pre-sharding manifests); when
    # present it must be a list — readers degrade to never-prune on a
    # missing or malformed section, they never fail the manifest for it
    zones = document.get("zones")
    if zones is not None and not isinstance(zones, list):
        return bad("manifest 'zones' is not a list")
    # "imc_segments" is likewise optional (absent before the persistent
    # IMC); readers take only the well-formed rows and degrade to
    # rebuild-from-OSON otherwise — IMC cache metadata never fails a
    # manifest
    imc_segments = document.get("imc_segments")
    if imc_segments is not None and not isinstance(imc_segments, list):
        return bad("manifest 'imc_segments' is not a list")
    return []


def imc_manifest_entries(document: Optional[Dict[str, Any]]
                         ) -> List[Dict[str, Any]]:
    """The well-formed pinned IMC segment rows of a manifest document
    ([] when absent or malformed — degrade, never fail)."""
    if document is None:
        return []
    from repro.imc.segments import valid_entries
    return valid_entries(document.get("imc_segments"))


def manifest_horizon(document: Dict[str, Any]) -> int:
    """The highest log sequence number the manifest references."""
    from repro.storage.log import parse_log_name
    names = [seg["name"] for seg in document["segments"]]
    names.append(document["wal"])
    sequences = [parse_log_name(name) for name in names]
    known = [s for s in sequences if s is not None]
    if not known:
        raise StorageError("manifest references no parseable log names")
    return max(known)
