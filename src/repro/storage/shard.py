"""Hash-partitioned sharded collections: the ``ShardedStore`` router.

A sharded collection is N independent :class:`~repro.storage.store
.CollectionStore` directories (``shard-00`` … ``shard-NN``), each with
its **own** WAL, segments, manifest, quarantine and per-shard DataGuide,
behind one router.  The shard layout is pinned by a durable ``SHARDS``
marker document (framed OSON, like the manifest) at the collection
root.

Design points:

* **Document placement.**  Inserts route by hash of the optional
  *routing field* (stable CRC32 over a canonical rendering, so the
  placement survives restarts and process boundaries) or round-robin
  when the field is absent.  The router enforces the placement
  invariant on ``update``: a document carrying the routing field may
  never move to a value that hashes elsewhere — that invariant is what
  makes routing-equality partition pruning sound.
* **Global ids.**  A document's public id encodes its placement:
  ``global = local * shard_count + shard_index``.  Routing a DML or
  point read is pure arithmetic — no directory, no lookup table to keep
  crash-consistent.
* **Parallel group commit.**  Each shard keeps its own
  :class:`~repro.storage.commit.CommitPipeline`; DML fans out through
  the existing ``insert_async``/group-commit protocol, so commits on
  different shards fsync **in parallel** (the serving layer's threaded
  committer mode runs one committer per shard).
* **MVCC composition.**  ``snapshot()`` composes per-shard
  ``StoreSnapshot``s — each captured *with* a DataGuide that covers it
  (:meth:`~repro.storage.store.CollectionStore.snapshot_with_guide`) —
  into an immutable :class:`ShardedSnapshot` whose version is the sum
  of shard versions (monotonic, since each shard's is).  Sessions pin
  these exactly like plain snapshots.
* **Recovery contract.**  Opening recovers every shard independently;
  the aggregate :class:`ShardedRecoveryReport` preserves the standalone
  report's contract (``cut_batches`` dicts, ``quarantined`` records,
  ``clean``) with each finding annotated by its shard.

Locking: the router lock (``storage.shard``) covers only the
round-robin cursor and the closed flag.  It is **never held across a
call into a shard store** — routing is computed under the lock, the
shard call happens outside it — so the lock-order graph gains no
``storage.shard -> storage.store`` edge and the serve.write -> store ->
commit chain simply replicates per shard.

Fault tolerance: every shard-scoped write funnels through
:meth:`ShardedStore._shard_write`, which consults the store's
:class:`~repro.storage.health.ShardHealthBoard` (fail-fast
:class:`~repro.errors.ShardUnavailable` against a failed shard),
fires the ``shard.commit`` chaos point, and retries transient faults
under the seeded :class:`~repro.obs.clock.BackoffPolicy`.  Reads taken
through :meth:`ShardedSnapshot.shard_documents` fire ``shard.scan`` /
``shard.read`` points so the chaos harness can fault live scans; the
scatter executor owns read-side retry.  Recovery is traffic-driven
(the board admits periodic probes) plus the explicit
:meth:`ShardedStore.probe_shard` / :meth:`ShardedStore.probe_failed`.
"""

from __future__ import annotations

import posixpath
import zlib
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity, has_errors
from repro.core.dataguide.guide import DataGuide
from repro.errors import RETRYABLE_FAULTS, ShardUnavailable, StorageError
from repro.obs import clock as _clock
from repro.obs import locks as _locks
from repro.obs import metrics as _metrics
from repro.storage import chaos as _chaos
from repro.storage import log as logfmt
from repro.storage.health import FAILED, ShardHealthBoard
from repro.storage import manifest as manifestfmt
from repro.storage.commit import LogicalCommit
from repro.storage.files import FileSystem, OsFileSystem
from repro.storage.framing import first_frame, frame
from repro.storage.fsck import fsck as fsck_store
from repro.storage.recovery import QuarantinedRecord
from repro.storage.store import CollectionStore, StoreSnapshot

from repro.core.oson import decode as oson_decode
from repro.core.oson import encode as oson_encode

_WRITE_RETRIES = _metrics.counter("storage.shard.write_retries")

SHARDS_NAME = "SHARDS"
SHARDS_TMP = "SHARDS.tmp"
SHARD_FORMAT = "repro-sharded-store"
SHARD_FORMAT_VERSION = 1


def shard_dir_name(index: int) -> str:
    return f"shard-{index:02d}"


def shards_path(directory: str) -> str:
    return posixpath.join(directory, SHARDS_NAME)


def routing_hash(value: Any) -> Optional[int]:
    """Stable placement hash for a routing-field value, or None when the
    value is not routable (containers, bools, NULL).

    Uses CRC32 over a canonical rendering rather than Python ``hash``:
    string hashing is salted per process, and placement must agree
    between the process that inserted and every process that routes or
    prunes later.  Numeric values canonicalize integral floats to ints
    so ``5`` and ``5.0`` (equal under SQL comparison) land on the same
    shard.
    """
    if value is None or isinstance(value, bool):
        return None
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    if isinstance(value, str):
        data = b"s:" + value.encode("utf-8")
    elif isinstance(value, (int, float)):
        data = b"n:" + repr(value).encode("ascii")
    else:
        return None
    return zlib.crc32(data)


class ShardHandle:
    """A commit handle that remembers which shard's pipeline owns it, so
    the router's pipeline facade can route the durability wait."""

    __slots__ = ("entry", "pipeline")

    def __init__(self, entry: LogicalCommit, pipeline: Any) -> None:
        self.entry = entry
        self.pipeline = pipeline


class MultiShardHandle:
    """A batch insert's handles, one per shard touched."""

    __slots__ = ("handles",)

    def __init__(self, handles: Sequence[ShardHandle]) -> None:
        self.handles = list(handles)


class ShardPipelines:
    """The router's commit-pipeline facade: the serving layer drives it
    exactly like a single store's pipeline (``start_thread`` /
    ``wait(handle)`` / ``set_batch_limit``), and the facade fans out to
    the per-shard pipelines — one committer thread, one group-commit
    batch stream, one WAL fsync lane *per shard*."""

    def __init__(self, shards: Sequence[CollectionStore]) -> None:
        self._pipelines = [shard.pipeline for shard in shards]

    def start_thread(self) -> None:
        for pipeline in self._pipelines:
            pipeline.start_thread()

    def wait(self, handle: Any) -> None:
        if isinstance(handle, MultiShardHandle):
            for part in handle.handles:
                part.pipeline.wait(part.entry)
            return
        if isinstance(handle, ShardHandle):
            handle.pipeline.wait(handle.entry)
            return
        raise StorageError(
            f"cannot wait on {type(handle).__name__}: sharded-store "
            f"handles carry their shard pipeline")

    def set_batch_limit(self, limit: Optional[int]) -> Optional[int]:
        previous = [pipeline.set_batch_limit(limit)
                    for pipeline in self._pipelines]
        return previous[0] if previous else None

    def shutdown(self) -> None:
        for pipeline in self._pipelines:
            pipeline.shutdown()

    @property
    def failed(self) -> Optional[BaseException]:
        for pipeline in self._pipelines:
            if pipeline.failed is not None:
                return pipeline.failed
        return None


class ShardedSnapshot:
    """An immutable cross-shard view: one pinned ``StoreSnapshot`` per
    shard plus the DataGuide that covers it (captured atomically per
    shard), composed behind the single-snapshot read surface.

    ``version`` is the sum of shard versions — monotonic because each
    shard's is — so session pins advance exactly as with a plain store.
    """

    __slots__ = ("shards", "guides", "shard_count")

    def __init__(self, shards: Sequence[StoreSnapshot],
                 guides: Sequence[DataGuide]) -> None:
        self.shards = tuple(shards)
        self.guides = tuple(guides)
        self.shard_count = len(self.shards)

    @property
    def version(self) -> int:
        return sum(shard.version for shard in self.shards)

    @property
    def next_doc_id(self) -> int:
        n = self.shard_count
        ceilings = [(shard.next_doc_id - 1) * n + index + 1
                    for index, shard in enumerate(self.shards)
                    if shard.next_doc_id > 0]
        return max(ceilings) if ceilings else 0

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, doc_id: int) -> bool:
        return (doc_id // self.shard_count) in self.shards[
            doc_id % self.shard_count]

    def doc_ids(self) -> List[int]:
        n = self.shard_count
        out: List[int] = []
        for index, shard in enumerate(self.shards):
            out.extend(local * n + index for local in shard.doc_ids())
        out.sort()
        return out

    def image(self, doc_id: int) -> bytes:
        try:
            return self.shards[doc_id % self.shard_count].docs[
                doc_id // self.shard_count]
        except KeyError:
            raise StorageError(f"no document {doc_id}") from None

    def get(self, doc_id: int) -> Any:
        return oson_decode(self.image(doc_id))

    def documents(self) -> Iterator[Tuple[int, Any]]:
        """Yield ``(global_id, document)`` in global-id order (the
        cross-shard interleave of per-shard insertion order)."""
        for doc_id in self.doc_ids():
            yield doc_id, self.get(doc_id)

    def shard_documents(self, index: int) -> Iterator[Tuple[int, Any]]:
        """One shard's documents (global ids), in local order — the
        per-shard scan the scatter executor feeds to its workers.

        Fires the ``shard.scan`` chaos point at stream open and
        ``shard.read`` per document, so the chaos harness can fault a
        live scan mid-stream; the scatter executor owns the resulting
        retry/degrade decision."""
        n = self.shard_count
        _chaos.fault_point("shard.scan", shard=index)
        for local, document in self.shards[index].documents():
            _chaos.fault_point("shard.read", shard=index)
            yield local * n + index, document


class ShardedRecoveryReport:
    """Aggregate recovery report over all shards, preserving the
    standalone :class:`~repro.storage.recovery.RecoveryReport` contract:
    ``cut_batches`` dicts (with a ``shard`` key added), ``quarantined``
    records, ``diagnostics``, ``clean`` and ``summary()``."""

    def __init__(self, per_shard: Sequence[Optional[Any]]) -> None:
        self.per_shard = list(per_shard)
        self.cut_batches: List[Dict[str, Any]] = []
        self.quarantined: List[QuarantinedRecord] = []
        self.diagnostics: List[Diagnostic] = []
        for index, report in enumerate(self.per_shard):
            if report is None:
                continue
            for cut in report.cut_batches:
                annotated = dict(cut)
                annotated["shard"] = index
                self.cut_batches.append(annotated)
            self.quarantined.extend(report.quarantined)
            self.diagnostics.extend(report.diagnostics)

    @property
    def clean(self) -> bool:
        return all(report is None or report.clean
                   for report in self.per_shard) and not has_errors(
                       self.diagnostics)

    def summary(self) -> str:
        lines = [f"shards: {len(self.per_shard)}"]
        for index, report in enumerate(self.per_shard):
            header = f"shard {index}:"
            if report is None:
                lines.append(f"{header} freshly created")
                continue
            body = report.summary().splitlines()
            lines.append(header)
            lines.extend("  " + line for line in body)
        return "\n".join(lines)


class ShardedStore:
    """N hash-partitioned :class:`CollectionStore` shards behind one
    router with the single-store API surface."""

    def __init__(self, directory: str, fs: FileSystem,
                 shards: Sequence[CollectionStore],
                 routing_field: Optional[str]) -> None:
        self._directory = directory
        self._fs = fs
        self._shards = tuple(shards)
        self._routing_field = routing_field
        self._pipeline = ShardPipelines(self._shards)
        # router lock: covers ONLY the round-robin cursor and the closed
        # flag.  Never held across a call into a shard store (routing is
        # computed under it, the shard call happens outside), so no
        # storage.shard -> storage.store lock-order edge exists.
        self._lock = _locks.make_lock("storage.shard")
        self._next_shard = sum(                 # guarded-by: _lock
            len(shard) for shard in shards) % max(1, len(shards))
        self._closed = False                    # guarded-by: _lock
        # per-shard health state; scatter readers share this board via
        # the shard plan, so read- and write-side outcomes feed one
        # state machine
        self.health = ShardHealthBoard(len(self._shards))
        # write-path retry schedule; seeded so a chaos-sweep failure in
        # the commit path replays exactly
        self.backoff = _clock.BackoffPolicy()

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, directory: str, shards: int = 4,
               fs: Optional[FileSystem] = None,
               routing_field: Optional[str] = None) -> "ShardedStore":
        if shards < 1:
            raise StorageError(f"shard count must be >= 1, got {shards}")
        fs = fs or OsFileSystem()
        fs.ensure_dir(directory)
        if fs.exists(shards_path(directory)):
            raise StorageError(
                f"{directory} already contains a sharded store")
        if fs.exists(manifestfmt.manifest_path(directory)):
            raise StorageError(
                f"{directory} already contains an unsharded collection "
                f"store")
        _write_marker(fs, directory, shards, routing_field)
        stores = [CollectionStore.create(
            posixpath.join(directory, shard_dir_name(index)), fs=fs)
            for index in range(shards)]
        return cls(directory, fs, stores, routing_field)

    @classmethod
    def open(cls, directory: str, fs: Optional[FileSystem] = None,
             verify_documents: bool = True) -> "ShardedStore":
        fs = fs or OsFileSystem()
        marker = read_shard_marker(fs, directory)
        if marker is None:
            raise StorageError(
                f"{directory} is not a sharded store (no readable "
                f"{SHARDS_NAME} marker)")
        stores = [CollectionStore.open(
            posixpath.join(directory, shard_dir_name(index)), fs=fs,
            verify_documents=verify_documents)
            for index in range(marker["shards"])]
        return cls(directory, fs, stores, marker.get("routing_field"))

    @classmethod
    def open_or_create(cls, directory: str, shards: int = 4,
                       fs: Optional[FileSystem] = None,
                       routing_field: Optional[str] = None
                       ) -> "ShardedStore":
        fs = fs or OsFileSystem()
        fs.ensure_dir(directory)
        if fs.exists(shards_path(directory)):
            store = cls.open(directory, fs=fs)
            if store.shard_count != shards:
                raise StorageError(
                    f"{directory} holds {store.shard_count} shards; "
                    f"re-sharding to {shards} is not supported")
            if store.routing_field != routing_field:
                raise StorageError(
                    f"{directory} routes by "
                    f"{store.routing_field!r}, not {routing_field!r}")
            return store
        return cls.create(directory, shards=shards, fs=fs,
                          routing_field=routing_field)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- shape -------------------------------------------------------------

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> Tuple[CollectionStore, ...]:
        return self._shards

    @property
    def routing_field(self) -> Optional[str]:
        return self._routing_field

    @property
    def pipeline(self) -> ShardPipelines:
        return self._pipeline

    @property
    def recovery(self) -> Optional[ShardedRecoveryReport]:
        """Aggregate recovery report (None when every shard was freshly
        created, matching the standalone store's contract)."""
        reports = [shard.recovery for shard in self._shards]
        if all(report is None for report in reports):
            return None
        return ShardedRecoveryReport(reports)

    @property
    def quarantine(self) -> List[QuarantinedRecord]:
        out: List[QuarantinedRecord] = []
        for shard in self._shards:
            out.extend(shard.quarantine)
        return out

    def _live(self) -> None:
        if self._closed:
            raise StorageError("store is closed")

    # -- routing -----------------------------------------------------------

    def shard_of_value(self, value: Any) -> Optional[int]:
        """The shard a routing-field value places on (None when the
        value is not routable) — shared by insert routing and the
        planner's routing-equality pruning."""
        digest = routing_hash(value)
        if digest is None:
            return None
        return digest % len(self._shards)

    def _route(self, document: Any) -> int:
        """Pick the shard for a new document.  Holds the router lock
        only around the round-robin cursor."""
        if self._routing_field is not None and isinstance(document, dict):
            placed = self.shard_of_value(document.get(self._routing_field))
            if placed is not None:
                return placed
        with self._lock:
            self._live()
            index = self._next_shard
            self._next_shard = (index + 1) % len(self._shards)
        return index

    def _global(self, shard_index: int, local_id: int) -> int:
        return local_id * len(self._shards) + shard_index

    def _locate(self, doc_id: int) -> Tuple[CollectionStore, int, int]:
        n = len(self._shards)
        index = doc_id % n
        return self._shards[index], doc_id // n, index

    # -- fault tolerance ---------------------------------------------------

    def _shard_write(self, index: int, op: str, call: Any) -> Any:
        """Run one shard-scoped write under the health board and the
        seeded retry schedule.

        Fail-fast first: a write against a ``failed`` shard raises
        :class:`ShardUnavailable` without touching the shard (except
        for the board-admitted probe attempts that drive recovery).
        Then up to ``backoff.max_attempts`` tries, each preceded by the
        ``shard.commit`` chaos point; transient faults and ``OSError``
        back off through the seeded clock and retry, everything else
        propagates untouched.  Outcomes feed the health board either
        way.
        """
        if not self.health.admit(index):
            raise ShardUnavailable("write refused", shard_index=index,
                                   state=self.health.state(index))
        attempts = max(1, self.backoff.max_attempts)
        for attempt in range(attempts):
            try:
                _chaos.fault_point("shard.commit", shard=index)
                result = call()
            except RETRYABLE_FAULTS as exc:
                state = self.health.record_failure(index)
                if state == FAILED or attempt + 1 >= attempts:
                    raise ShardUnavailable(
                        f"{op} failed after {attempt + 1} attempt(s): "
                        f"{exc}", shard_index=index,
                        state=state) from exc
                _WRITE_RETRIES.inc()
                _clock.sleep(
                    self.backoff.delay_ms(f"{op}:{index}", attempt)
                    / 1000.0)
            else:
                self.health.record_success(index)
                return result

    def probe_shard(self, index: int) -> bool:
        """Explicitly probe one shard (a cheap snapshot pin through the
        ``shard.probe`` chaos point) and feed the outcome to the health
        board.  Returns True when the probe succeeded."""
        try:
            _chaos.fault_point("shard.probe", shard=index)
            self._shards[index].snapshot()
        except RETRYABLE_FAULTS:
            self.health.record_failure(index)
            return False
        self.health.record_success(index)
        return True

    def probe_failed(self) -> List[int]:
        """Probe every currently-failed shard; returns the shards whose
        probe succeeded (now ``recovered``).  The chaos harness calls
        this after a fault window to assert healing; operators would
        wire it to a timer."""
        return [index for index in self.health.failed_shards()
                if self.probe_shard(index)]

    # -- DML (global ids; acks ride the shard pipelines) -------------------

    def insert_async(self, document: Any) -> Tuple[int, ShardHandle]:
        with self._lock:
            self._live()
        index = self._route(document)
        shard = self._shards[index]
        local_id, entry = self._shard_write(
            index, "insert", lambda: shard.insert_async(document))
        return self._global(index, local_id), ShardHandle(entry,
                                                          shard.pipeline)

    def insert(self, document: Any) -> int:
        doc_id, handle = self.insert_async(document)
        self._pipeline.wait(handle)
        return doc_id

    def insert_many_async(
            self, documents: Any
    ) -> Tuple[List[int], Optional[MultiShardHandle]]:
        """Stage a batch: documents split by route, one logical commit
        **per shard touched** (so the per-shard WAL fsyncs overlap when
        the committer threads run).  Returns global ids in input order.
        """
        documents = list(documents)
        if not documents:
            return [], None
        with self._lock:
            self._live()
        routed: Dict[int, List[Tuple[int, Any]]] = {}
        for position, document in enumerate(documents):
            routed.setdefault(self._route(document), []).append(
                (position, document))
        doc_ids: List[int] = [0] * len(documents)
        handles: List[ShardHandle] = []
        for index in sorted(routed):
            shard = self._shards[index]
            positions = [position for position, _doc in routed[index]]
            batch = [doc for _position, doc in routed[index]]
            local_ids, entry = self._shard_write(
                index, "insert_many",
                lambda shard=shard, batch=batch:
                    shard.insert_many_async(batch))
            for position, local_id in zip(positions, local_ids):
                doc_ids[position] = self._global(index, local_id)
            if entry is not None:
                handles.append(ShardHandle(entry, shard.pipeline))
        return doc_ids, MultiShardHandle(handles) if handles else None

    def insert_many(self, documents: Any) -> List[int]:
        doc_ids, handle = self.insert_many_async(documents)
        if handle is not None:
            self._pipeline.wait(handle)
        return doc_ids

    def update(self, doc_id: int, document: Any) -> None:
        """Update in place.  A document carrying the routing field must
        keep hashing to its current shard — documents never migrate, so
        routing-equality pruning stays sound."""
        with self._lock:
            self._live()
        shard, local_id, index = self._locate(doc_id)
        if self._routing_field is not None and isinstance(document, dict):
            placed = self.shard_of_value(document.get(self._routing_field))
            if placed is not None and placed != index:
                raise StorageError(
                    f"update would move document {doc_id} off shard "
                    f"{index}: routing field {self._routing_field!r} "
                    f"value hashes to shard {placed}; delete and "
                    f"re-insert to migrate")
        self._shard_write(index, "update",
                          lambda: shard.update(local_id, document))

    def delete(self, doc_id: int) -> None:
        with self._lock:
            self._live()
        shard, local_id, index = self._locate(doc_id)
        self._shard_write(index, "delete",
                          lambda: shard.delete(local_id))

    # -- reads -------------------------------------------------------------

    def snapshot(self) -> ShardedSnapshot:
        """Pin every shard's current durable state (each with its
        covering DataGuide) into one immutable cross-shard snapshot."""
        pairs = [shard.snapshot_with_guide() for shard in self._shards]
        return ShardedSnapshot([snapshot for snapshot, _guide in pairs],
                               [guide for _snapshot, guide in pairs])

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, doc_id: int) -> bool:
        shard, local_id, _index = self._locate(doc_id)
        return local_id in shard

    def doc_ids(self) -> List[int]:
        return self.snapshot().doc_ids()

    def get(self, doc_id: int) -> Any:
        shard, local_id, _index = self._locate(doc_id)
        try:
            return shard.get(local_id)
        except StorageError:
            raise StorageError(f"no document {doc_id}") from None

    def image(self, doc_id: int) -> bytes:
        shard, local_id, _index = self._locate(doc_id)
        try:
            return shard.image(local_id)
        except StorageError:
            raise StorageError(f"no document {doc_id}") from None

    def documents(self) -> Iterator[Tuple[int, Any]]:
        return self.snapshot().documents()

    def dataguide(self) -> DataGuide:
        """The collection DataGuide: the associative merge of every
        shard's guide (order-independent)."""
        return DataGuide.merge_all(shard.dataguide()
                                   for shard in self._shards)

    def shard_guides(self) -> List[DataGuide]:
        return [shard.dataguide() for shard in self._shards]

    def zone_stats(self) -> List[List[Dict[str, Any]]]:
        """Per-shard zone-stat rows, indexed by shard."""
        return [shard.zone_stats() for shard in self._shards]

    # -- maintenance -------------------------------------------------------

    def checkpoint(self) -> None:
        for shard in self._shards:
            shard.checkpoint()

    def compact(self) -> int:
        return sum(shard.compact() for shard in self._shards)

    def storage_files(self) -> List[str]:
        """Shard-relative log files in apply order, prefixed by shard
        directory (plus the root marker)."""
        names = [SHARDS_NAME]
        for index, shard in enumerate(self._shards):
            prefix = shard_dir_name(index)
            names.extend(posixpath.join(prefix, name)
                         for name in shard.storage_files())
        return names


# -- marker ----------------------------------------------------------------


def _write_marker(fs: FileSystem, directory: str, shards: int,
                  routing_field: Optional[str]) -> None:
    document = {"format": SHARD_FORMAT, "version": SHARD_FORMAT_VERSION,
                "shards": shards, "routing_field": routing_field}
    tmp = posixpath.join(directory, SHARDS_TMP)
    handle = fs.create(tmp)
    handle.write(frame(oson_encode(document)))
    handle.flush()
    handle.sync()
    handle.close()
    fs.replace(tmp, shards_path(directory))


def read_shard_marker(fs: FileSystem,
                      directory: str) -> Optional[Dict[str, Any]]:
    """Load and validate the ``SHARDS`` marker; None when absent or
    unusable (callers decide whether that is an error)."""
    path = shards_path(directory)
    if not fs.exists(path):
        return None
    payload = first_frame(fs.read_bytes(path))
    if payload is None:
        return None
    try:
        document = oson_decode(payload)
    except Exception:  # lint: ignore[broad-except] a corrupt marker reads as "not a sharded store"; open() reports it
        return None
    if (not isinstance(document, dict)
            or document.get("format") != SHARD_FORMAT
            or not isinstance(document.get("shards"), int)
            or document["shards"] < 1):
        return None
    return document


def is_sharded_store(fs: FileSystem, directory: str) -> bool:
    return fs.exists(shards_path(directory))


def fsck_sharded(fs: FileSystem, directory: str) -> List[Diagnostic]:
    """Offline integrity check of a sharded store: validate the marker,
    then run the standalone :func:`repro.storage.fsck.fsck` over every
    shard directory with findings re-based to shard-relative paths."""
    marker = read_shard_marker(fs, directory)
    if marker is None:
        return [Diagnostic("storage.fsck.shards-marker",
                           f"unreadable or missing {SHARDS_NAME} marker",
                           path=shards_path(directory))]
    diagnostics: List[Diagnostic] = []
    for index in range(marker["shards"]):
        shard_dir = shard_dir_name(index)
        full = posixpath.join(directory, shard_dir)
        if not fs.exists(full) and not _dir_nonempty(fs, full):
            diagnostics.append(Diagnostic(
                "storage.fsck.shard-missing",
                f"marker names {marker['shards']} shards but {shard_dir} "
                f"is absent", path=shard_dir))
            continue
        for finding in fsck_store(fs, full):
            prefixed = (posixpath.join(shard_dir, finding.path)
                        if finding.path else shard_dir)
            diagnostics.append(Diagnostic(
                finding.rule, finding.message, finding.severity,
                offset=finding.offset, path=prefixed))
    # stray log files at the collection root are always wrong: every
    # log belongs to some shard directory
    for name in fs.listdir(directory):
        if logfmt.parse_log_name(name) is not None:
            diagnostics.append(Diagnostic(
                "storage.fsck.root-log",
                "log file at the sharded-store root (logs belong to "
                "shard directories)", Severity.WARNING, path=name))
    return diagnostics


def _dir_nonempty(fs: FileSystem, path: str) -> bool:
    """Whether a shard directory is actually there: some file systems
    (the in-memory one) answer ``listdir`` with an empty list instead of
    raising for absent directories, so presence means *entries*."""
    try:
        return bool(fs.listdir(path))
    except Exception:  # lint: ignore[broad-except] a missing directory is the condition being probed
        return False
