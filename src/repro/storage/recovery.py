"""Verified crash recovery for the durable collection store.

Recovery turns whatever bytes survived a crash back into a consistent,
openable store, *degrading gracefully* instead of refusing:

1. load the manifest (missing/corrupt → degraded mode: every log file
   found in the directory is applied in sequence order);
2. replay sealed segments over their recorded valid length, then the
   active WAL, then any log files *above* the manifest's sequence
   horizon (the checkpoint-in-flight window);
3. every recovered insert/update image is run through
   :func:`repro.analysis.oson_verifier.verify_oson`; images that fail
   verification — and records whose frames fail their CRC — are
   **quarantined** with structured diagnostics rather than aborting
   recovery or silently vanishing;
4. the DataGuide is rebuilt from the surviving documents and compared
   against the manifest's serialized guide (``revalidated`` when the
   structural signature matches, ``rebuilt-*`` otherwise).

A torn tail on the *active* WAL is the normal signature of a crash
mid-append: the valid prefix is kept, the tail is reported, and the
next checkpoint seals the file at its valid length.  Torn frames are
unacknowledged by construction (acknowledgement requires fsync), so
truncating them loses no committed operation.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity, has_errors
from repro.analysis.oson_verifier import verify_oson
from repro.core.dataguide.builder import DataGuideBuilder
from repro.core.oson import decode as oson_decode
from repro.errors import OsonError, StorageError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.storage import log as logfmt
from repro.storage import manifest as manifestfmt
from repro.storage.files import FileSystem
from repro.storage.framing import scan_frames


@dataclass
class QuarantinedRecord:
    """A record or document recovery preserved instead of applying.

    ``doc_id`` is None when the damage made even the operation prefix
    unreadable; ``superseded`` marks quarantines that did not cost any
    live data (an older good version of the document survived)."""

    source: str
    offset: int
    reason: str
    doc_id: Optional[int] = None
    diagnostics: List[Diagnostic] = field(default_factory=list)
    image: bytes = b""
    superseded: bool = False

    def render(self) -> str:
        who = f"doc {self.doc_id}" if self.doc_id is not None else "record"
        extra = " (older version survived)" if self.superseded else ""
        return (f"{self.source} @ byte {self.offset}: {who} quarantined: "
                f"{self.reason}{extra}")


@dataclass
class RecoveryReport:
    """What recovery found and decided."""

    manifest_status: str = "ok"        # ok | missing | corrupt
    dataguide_status: str = "rebuilt"  # revalidated | rebuilt | rebuilt-stale
    segments_scanned: int = 0
    records_applied: int = 0
    documents: int = 0
    torn_tail_bytes: int = 0
    # group-commit batches whose marker claims more operations than
    # survived the crash: {source, offset, expected, seen}.  The
    # surviving prefix replays normally (records past the cut were
    # never acknowledged) — the point is that the cut is *surfaced*,
    # on this open and every later one, never silently absorbed.
    cut_batches: List[Dict[str, Any]] = field(default_factory=list)
    quarantined: List[QuarantinedRecord] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (self.manifest_status == "ok" and not self.quarantined
                and not has_errors(self.diagnostics))

    def summary(self) -> str:
        lines = [
            f"manifest: {self.manifest_status}",
            f"segments scanned: {self.segments_scanned}",
            f"records applied: {self.records_applied}",
            f"documents live: {self.documents}",
            f"dataguide: {self.dataguide_status}",
        ]
        if self.torn_tail_bytes:
            lines.append(f"torn tail truncated: {self.torn_tail_bytes} bytes")
        if self.cut_batches:
            lines.append(f"cut group-commit batches: {len(self.cut_batches)}")
            lines.extend(
                f"  {cut['source']} @ byte {cut['offset']}: marker claims "
                f"{cut['expected']} operations, {cut['seen']} survived"
                for cut in self.cut_batches)
        if self.quarantined:
            lines.append(f"quarantined records: {len(self.quarantined)}")
            lines.extend("  " + q.render() for q in self.quarantined)
        errors = [d for d in self.diagnostics
                  if d.severity is Severity.ERROR]
        if errors:
            lines.append(f"error diagnostics: {len(errors)}")
        return "\n".join(lines)


@dataclass
class RecoveredState:
    """Everything the store needs to resume serving."""

    docs: Dict[int, bytes]
    builder: DataGuideBuilder
    next_doc_id: int
    max_sequence: int
    wal_name: Optional[str]
    wal_valid_length: int
    wal_reusable: bool
    sources: List[Tuple[str, int]]  # (name, valid length) in apply order
    report: RecoveryReport
    # pinned IMC column segments (manifest ``imc_segments`` rows) and
    # the document ids touched by any log record at or above the
    # segments' horizon — those ids must be served from the row-wise
    # form, never from a columnar base cut before the writes
    imc_segments: List[Dict[str, Any]] = field(default_factory=list)
    imc_dirty_ids: set = field(default_factory=set)


#: recovery observability: totals across recover() runs this process
_RECOVERIES = _metrics.counter("storage.recovery.runs")
_RECORDS_APPLIED = _metrics.counter("storage.recovery.records_applied")
_QUARANTINED = _metrics.counter("storage.recovery.quarantined")


def recover(fs: FileSystem, directory: str,
            verify_documents: bool = True) -> RecoveredState:
    """Rebuild store state from a directory; never raises on corrupt
    data (only on a directory that is not a store at all)."""
    with _trace.span("recovery", directory=directory):
        state = _recover(fs, directory, verify_documents)
    _RECOVERIES.inc()
    _RECORDS_APPLIED.inc(state.report.records_applied)
    _QUARANTINED.inc(len(state.report.quarantined))
    return state


def _recover(fs: FileSystem, directory: str,
             verify_documents: bool) -> RecoveredState:
    report = RecoveryReport()
    manifest_doc, manifest_diags = manifestfmt.read_manifest(fs, directory)
    report.diagnostics.extend(manifest_diags)

    log_files = _discover_logs(fs, directory)
    if manifest_doc is None:
        if not log_files:
            raise StorageError(
                f"{directory} is not a collection store (no manifest, "
                f"no log files)")
        report.manifest_status = (
            "missing" if any(d.rule == "storage.manifest.missing"
                             for d in manifest_diags) else "corrupt")
        sources = [(name, None) for _, name in log_files]
        wal_name = log_files[-1][1]
    else:
        sources, wal_name = _sources_from_manifest(
            fs, directory, manifest_doc, log_files, report)

    # IMC cache coherence across restart: any record in a log at or
    # above the pinned segments' horizon post-dates the columnar base;
    # its document id is dirty and must be served row-wise.  Logs whose
    # sequence cannot be parsed are tracked too (conservative).
    imc_entries = manifestfmt.imc_manifest_entries(manifest_doc)
    imc_horizon = min((entry["horizon"] for entry in imc_entries),
                      default=None)
    imc_dirty: set = set()

    docs: Dict[int, bytes] = {}
    id_floor = _IdFloor()
    applied_sources: List[Tuple[str, int]] = []
    for position, (name, pinned_length) in enumerate(sources):
        is_active_wal = name == wal_name and position == len(sources) - 1
        sequence = logfmt.parse_log_name(name)
        track_dirty = (imc_horizon is not None
                       and (sequence is None or sequence >= imc_horizon))
        valid_length = _apply_log(fs, directory, name, pinned_length,
                                  is_active_wal, docs, report,
                                  verify_documents, id_floor,
                                  imc_dirty if track_dirty else None)
        if valid_length is None:
            continue
        applied_sources.append((name, valid_length))
        report.segments_scanned += 1

    # ids seen in any applied record (including deletes/quarantines)
    # keep the allocation floor monotonic
    next_doc_id = id_floor.max_seen + 1
    if manifest_doc is not None:
        next_doc_id = max(next_doc_id, manifest_doc["next_doc_id"])
    for quarantined in report.quarantined:
        if quarantined.doc_id is not None:
            next_doc_id = max(next_doc_id, quarantined.doc_id + 1)

    builder = _rebuild_dataguide(docs, report, verify_documents)
    _revalidate_dataguide(manifest_doc, builder, report)

    report.documents = len(docs)
    wal_valid_length = applied_sources[-1][1] if applied_sources else 0
    # reuse the WAL only after a fully clean recovery (clean manifest,
    # no quarantine, no error diagnostics): appending after surviving
    # garbage would rely on resync to find the new records again.  A
    # cut group-commit batch in the WAL also forces a fresh one —
    # appending new records after the cut would let them satisfy the
    # old marker's count and mask the shortfall on the next open.
    wal_reusable = bool(
        applied_sources
        and applied_sources[-1][0] == wal_name
        and report.clean
        and report.torn_tail_bytes == 0
        and not any(cut["source"] == wal_name
                    for cut in report.cut_batches)
        and wal_valid_length == fs.file_size(
            posixpath.join(directory, wal_name)))
    max_sequence = max((seq for seq, _ in log_files), default=0)
    return RecoveredState(
        docs=docs,
        builder=builder,
        next_doc_id=next_doc_id,
        max_sequence=max_sequence,
        wal_name=wal_name,
        wal_valid_length=wal_valid_length,
        wal_reusable=wal_reusable,
        sources=applied_sources,
        report=report,
        imc_segments=imc_entries,
        imc_dirty_ids=imc_dirty,
    )


# -- source discovery --------------------------------------------------------


def _discover_logs(fs: FileSystem, directory: str) -> List[Tuple[int, str]]:
    found = []
    for name in fs.listdir(directory):
        sequence = logfmt.parse_log_name(name)
        if sequence is not None:
            found.append((sequence, name))
    return sorted(found)


def _sources_from_manifest(fs: FileSystem, directory: str,
                           manifest_doc: Dict[str, Any],
                           log_files: List[Tuple[int, str]],
                           report: RecoveryReport
                           ) -> Tuple[List[Tuple[str, Optional[int]]], str]:
    sources: List[Tuple[str, Optional[int]]] = []
    for segment in manifest_doc["segments"]:
        name, length = segment["name"], segment["length"]
        if not fs.exists(posixpath.join(directory, name)):
            report.diagnostics.append(Diagnostic(
                "storage.recover.missing-segment",
                f"manifest references missing segment {name}",
                path=name))
            continue
        sources.append((name, length))
    wal_name = manifest_doc["wal"]
    if fs.exists(posixpath.join(directory, wal_name)):
        sources.append((wal_name, None))
    else:
        report.diagnostics.append(Diagnostic(
            "storage.recover.missing-wal",
            f"manifest references missing WAL {wal_name}",
            Severity.WARNING, path=wal_name))
    # logs above the manifest horizon: a checkpoint crashed between
    # creating the new WAL and swapping the manifest
    horizon = manifestfmt.manifest_horizon(manifest_doc)
    referenced = {seg["name"] for seg in manifest_doc["segments"]}
    referenced.add(wal_name)
    for sequence, name in log_files:
        if sequence > horizon and name not in referenced:
            report.diagnostics.append(Diagnostic(
                "storage.recover.post-checkpoint-log",
                f"applying {name}: above the manifest's sequence "
                f"horizon (checkpoint was in flight)",
                Severity.WARNING, path=name))
            sources.append((name, None))
            wal_name = name
    return sources, wal_name


# -- log application ---------------------------------------------------------


class _IdFloor:
    """Highest document id seen in any applied record — deletes
    included, so a deleted id is never reallocated after restart."""

    __slots__ = ("max_seen",)

    def __init__(self) -> None:
        self.max_seen = -1

    def saw(self, doc_id: int) -> None:
        if doc_id > self.max_seen:
            self.max_seen = doc_id


def _apply_log(fs: FileSystem, directory: str, name: str,
               pinned_length: Optional[int], is_active_wal: bool,
               docs: Dict[int, bytes], report: RecoveryReport,
               verify_documents: bool, id_floor: _IdFloor,
               imc_dirty: Optional[set] = None) -> Optional[int]:
    path = posixpath.join(directory, name)
    try:
        data = fs.read_bytes(path)
    except (StorageError, OSError) as exc:
        report.diagnostics.append(Diagnostic(
            "storage.recover.unreadable",
            f"cannot read {name}: {exc}", path=name))
        return None
    window = data if pinned_length is None else data[:pinned_length]
    if pinned_length is not None and len(data) > pinned_length:
        report.diagnostics.append(Diagnostic(
            "storage.recover.sealed-slack",
            f"{len(data) - pinned_length} bytes past the sealed length "
            f"are ignored", Severity.WARNING, path=name))
    scan = scan_frames(window)
    for diagnostic in scan.diagnostics:
        report.diagnostics.append(Diagnostic(
            diagnostic.rule, diagnostic.message, diagnostic.severity,
            offset=diagnostic.offset, path=name))
    if scan.torn and is_active_wal:
        report.torn_tail_bytes += len(window) - scan.sealable

    saw_header = False
    # an open batch-marker expectation: [offset, expected, seen].  Any
    # record frame after the marker — applied or quarantined — fills
    # one of its slots; a shortfall at the next marker or end of file
    # is a cut group commit and gets reported.
    open_batch: Optional[List[int]] = None
    for found in scan.frames:
        if not found.valid:
            _quarantine_frame(name, found.offset, found.payload,
                              docs, report, imc_dirty)
            open_batch = _batch_slot(open_batch)
            continue
        try:
            record = logfmt.decode_record(found.payload)
        except StorageError as exc:
            report.quarantined.append(QuarantinedRecord(
                source=name, offset=found.offset,
                reason=f"unreadable record: {exc}",
                image=found.payload))
            open_batch = _batch_slot(open_batch)
            continue
        if record.op == logfmt.OP_LOG_HEADER:
            saw_header = True
            expected = logfmt.parse_log_name(name)
            if expected is not None and record.sequence != expected:
                report.diagnostics.append(Diagnostic(
                    "storage.recover.sequence-mismatch",
                    f"log header claims sequence {record.sequence} but "
                    f"file name says {expected}", Severity.WARNING,
                    path=name, offset=found.offset))
            continue
        if record.op == logfmt.OP_BATCH:
            if open_batch is not None:
                _report_cut_batch(report, name, open_batch)
            open_batch = [found.offset, record.count, 0]
            continue
        _apply_record(name, found.offset, record, docs, report,
                      verify_documents, id_floor, imc_dirty)
        open_batch = _batch_slot(open_batch)
    if open_batch is not None:
        _report_cut_batch(report, name, open_batch)
    if scan.frames and not saw_header:
        report.diagnostics.append(Diagnostic(
            "storage.recover.no-header",
            "log file has no surviving header record",
            Severity.WARNING, path=name))
    # seal the active WAL at scan.sealable — the whole scanned run minus
    # only a trailing torn tail.  Sealing at the *clean-prefix* end
    # instead would silently drop valid records applied after a corrupt
    # frame on the next open (they'd be live in memory now but outside
    # the manifest's pinned length).  Keeping corrupt frames inside the
    # seal means every later open re-quarantines them: damage to
    # acknowledged data is never reported once and then forgotten.
    return scan.sealable if is_active_wal else len(window)


def _apply_record(source: str, offset: int, record: "logfmt.LogRecord",
                  docs: Dict[int, bytes], report: RecoveryReport,
                  verify_documents: bool, id_floor: _IdFloor,
                  imc_dirty: Optional[set] = None) -> None:
    id_floor.saw(record.doc_id)
    if imc_dirty is not None:
        imc_dirty.add(record.doc_id)
    if record.op == logfmt.OP_DELETE:
        docs.pop(record.doc_id, None)
        report.records_applied += 1
        return
    if verify_documents:
        diagnostics = verify_oson(record.image)
        if has_errors(diagnostics):
            report.quarantined.append(QuarantinedRecord(
                source=source, offset=offset, doc_id=record.doc_id,
                reason="document image fails OSON verification",
                diagnostics=diagnostics, image=record.image,
                superseded=record.doc_id in docs))
            return
    docs[record.doc_id] = record.image
    report.records_applied += 1


def _batch_slot(open_batch: Optional[List[int]]) -> Optional[List[int]]:
    """One record frame consumed one slot of the open batch marker;
    the expectation closes silently once the count is satisfied."""
    if open_batch is None:
        return None
    open_batch[2] += 1
    return None if open_batch[2] >= open_batch[1] else open_batch


def _report_cut_batch(report: RecoveryReport, source: str,
                      open_batch: List[int]) -> None:
    offset, expected, seen = open_batch
    report.cut_batches.append({"source": source, "offset": offset,
                               "expected": expected, "seen": seen})
    report.diagnostics.append(Diagnostic(
        "storage.recover.partial-batch",
        f"group-commit batch marker claims {expected} operations but "
        f"only {seen} survived — the missing {expected - seen} were "
        f"never acknowledged; the surviving prefix is replayed",
        Severity.WARNING, path=source, offset=offset))


def _quarantine_frame(source: str, offset: int, payload: bytes,
                      docs: Dict[int, bytes], report: RecoveryReport,
                      imc_dirty: Optional[set] = None) -> None:
    """A frame whose CRC failed: attribute it to a document if the
    operation prefix is still readable, then quarantine."""
    doc_id = None
    superseded = False
    try:
        record = logfmt.decode_record(payload)
    except StorageError:
        record = None
    if record is not None and record.op != logfmt.OP_LOG_HEADER:
        doc_id = record.doc_id
        superseded = doc_id in docs
        if imc_dirty is not None:
            imc_dirty.add(doc_id)
    report.quarantined.append(QuarantinedRecord(
        source=source, offset=offset, doc_id=doc_id,
        reason="frame checksum mismatch", image=payload,
        superseded=superseded))


# -- DataGuide rebuild / revalidation ----------------------------------------


def _rebuild_dataguide(docs: Dict[int, bytes], report: RecoveryReport,
                       verify_documents: bool) -> DataGuideBuilder:
    builder = DataGuideBuilder()
    undecodable = []
    for doc_id in sorted(docs):
        try:
            builder.add(oson_decode(docs[doc_id]))
        except OsonError as exc:
            # only reachable with verify_documents=False: the verifier's
            # acceptance implies decodability (differential-tested)
            undecodable.append((doc_id, exc))
    for doc_id, exc in undecodable:
        report.quarantined.append(QuarantinedRecord(
            source="<memory>", offset=-1, doc_id=doc_id,
            reason=f"image undecodable during DataGuide rebuild: {exc}",
            image=docs.pop(doc_id)))
    return builder


def _revalidate_dataguide(manifest_doc: Optional[Dict[str, Any]],
                          builder: DataGuideBuilder,
                          report: RecoveryReport) -> None:
    if manifest_doc is None:
        report.dataguide_status = "rebuilt"
        return
    stored = manifestfmt.dataguide_from_document(manifest_doc["dataguide"])
    stored_signature = manifestfmt.structural_signature(stored)
    rebuilt_signature = manifestfmt.structural_signature(builder)
    if stored_signature == rebuilt_signature:
        report.dataguide_status = "revalidated"
    elif rebuilt_signature <= stored_signature:
        # additive guide legitimately keeps paths of deleted (or
        # quarantined, or WAL-superseded) documents
        report.dataguide_status = "rebuilt-stale"
    else:
        report.dataguide_status = "rebuilt"
        report.diagnostics.append(Diagnostic(
            "storage.recover.dataguide-behind",
            f"{len(rebuilt_signature - stored_signature)} path shapes "
            f"in the collection were missing from the checkpointed "
            f"DataGuide (WAL ran ahead of the checkpoint)",
            Severity.WARNING))
