"""Log records: the unit the WAL and sealed segments both store.

A log file (``log-NNNNNNNN.log``) is a sequence of frames
(:mod:`repro.storage.framing`).  The first frame is a *header record*
identifying the file and its sequence number; every subsequent frame is
an *operation record*::

    header:    <u8 0> "RLOG1" <u32 sequence>
    insert:    <u8 1> <u64 doc id> <OSON image bytes>
    update:    <u8 2> <u64 doc id> <OSON image bytes>
    delete:    <u8 3> <u64 doc id>
    batch:     <u8 4> <u32 operation count>

The active WAL and a sealed segment share this format exactly — sealing
a WAL is a metadata-only operation (the manifest records the file name
and its valid length); no bytes are rewritten.  A *commit* is one or
more framed operation records followed by flush + fsync: once those
return, the operations are acknowledged and recovery must preserve
them.

A *batch marker* (``OP_BATCH``) announces that the next ``count``
operation records were fsynced as one group commit.  The marker is pure
metadata — replay ignores it — but it lets recovery and fsck *report*
a batch that only partially survived a crash (the frames after the cut
were never acknowledged, so replaying the surviving prefix is correct;
the point is that the cut is surfaced, never silently absorbed).
Single-operation commits carry no marker, so their byte layout is
identical to the pre-group-commit format.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.errors import StorageError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.storage.files import FileHandle, FileSystem
from repro.storage.framing import frame

OP_LOG_HEADER = 0
OP_INSERT = 1
OP_UPDATE = 2
OP_DELETE = 3
OP_BATCH = 4

LOG_MAGIC = b"RLOG1"

_HEADER_RECORD = struct.Struct("<B5sI")
_OP_PREFIX = struct.Struct("<BQ")
_BATCH_RECORD = struct.Struct("<BI")

#: ops that carry an OSON image payload
IMAGE_OPS = (OP_INSERT, OP_UPDATE)

#: WAL write-path observability: appended frame sizes and commit
#: (flush+fsync) counts; commits also open a span so traced workloads
#: attribute their durability stalls
_APPEND_BYTES = _metrics.histogram("storage.wal.append_bytes",
                                   boundaries=_metrics.BYTES_BUCKETS)
_COMMITS = _metrics.counter("storage.wal.commits")


def log_name(sequence: int) -> str:
    return f"log-{sequence:08d}.log"


def parse_log_name(name: str) -> Optional[int]:
    """The sequence number encoded in a log file name, or None."""
    if not (name.startswith("log-") and name.endswith(".log")):
        return None
    digits = name[4:-4]
    if not digits.isdigit():
        return None
    return int(digits)


def encode_header(sequence: int) -> bytes:
    return _HEADER_RECORD.pack(OP_LOG_HEADER, LOG_MAGIC, sequence)


def encode_record(op: int, doc_id: int, image: bytes = b"") -> bytes:
    if op not in (OP_INSERT, OP_UPDATE, OP_DELETE):
        raise StorageError(f"unknown log operation {op}")
    if op == OP_DELETE and image:
        raise StorageError("delete records carry no image")
    return _OP_PREFIX.pack(op, doc_id) + image


def encode_batch_marker(count: int) -> bytes:
    """A group-commit batch marker announcing ``count`` operations."""
    if count < 1:
        raise StorageError(f"batch marker needs a positive count, "
                           f"got {count}")
    return _BATCH_RECORD.pack(OP_BATCH, count)


@dataclass(frozen=True)
class LogRecord:
    """A decoded operation, header or batch-marker record."""

    op: int
    doc_id: int = 0
    image: bytes = b""
    sequence: int = 0  # for header records
    count: int = 0     # for batch markers


def decode_record(payload: bytes) -> LogRecord:
    """Decode one frame payload; raises :class:`StorageError` on a
    structurally unreadable record (recovery catches and quarantines)."""
    if not payload:
        raise StorageError("empty log record")
    op = payload[0]
    if op == OP_LOG_HEADER:
        if len(payload) != _HEADER_RECORD.size:
            raise StorageError(
                f"log header record has {len(payload)} bytes, "
                f"expected {_HEADER_RECORD.size}")
        _, magic, sequence = _HEADER_RECORD.unpack(payload)
        if magic != LOG_MAGIC:
            raise StorageError(f"bad log header magic {magic!r}")
        return LogRecord(OP_LOG_HEADER, sequence=sequence)
    if op == OP_BATCH:
        if len(payload) != _BATCH_RECORD.size:
            raise StorageError(
                f"batch marker record has {len(payload)} bytes, "
                f"expected {_BATCH_RECORD.size}")
        _, count = _BATCH_RECORD.unpack(payload)
        if count < 1:
            raise StorageError(f"batch marker claims {count} operations")
        return LogRecord(OP_BATCH, count=count)
    if op in (OP_INSERT, OP_UPDATE, OP_DELETE):
        if len(payload) < _OP_PREFIX.size:
            raise StorageError(
                f"log record of {len(payload)} bytes is shorter than "
                f"the {_OP_PREFIX.size}-byte operation prefix")
        _, doc_id = _OP_PREFIX.unpack_from(payload)
        image = payload[_OP_PREFIX.size:]
        if op == OP_DELETE and image:
            raise StorageError("delete record carries unexpected bytes")
        if op != OP_DELETE and not image:
            raise StorageError("insert/update record carries no image")
        return LogRecord(op, doc_id=doc_id, image=image)
    raise StorageError(f"unknown log operation byte {op}")


class LogWriter:
    """Appends framed records to a log file with explicit commit points.

    ``append`` buffers; ``commit`` flushes and fsyncs — only then is the
    record acknowledged.  Each call maps one-to-one onto the injectable
    file abstraction so the fault harness sees every boundary.
    """

    def __init__(self, fs: FileSystem, path: str, handle: FileHandle,
                 sequence: int, offset: int) -> None:
        self.fs = fs
        self.path = path
        self.sequence = sequence
        self.offset = offset
        self._handle = handle

    @classmethod
    def create(cls, fs: FileSystem, path: str, sequence: int) -> "LogWriter":
        """Create a fresh log file and durably write its header record."""
        handle = fs.create(path)
        header = frame(encode_header(sequence))
        handle.write(header)
        handle.flush()
        handle.sync()
        return cls(fs, path, handle, sequence, len(header))

    @classmethod
    def reopen(cls, fs: FileSystem, path: str, sequence: int,
               offset: int) -> "LogWriter":
        """Continue appending to an existing, fully-valid log file."""
        handle = fs.open_append(path)
        return cls(fs, path, handle, sequence, offset)

    def append(self, payload: bytes) -> int:
        """Buffer one framed record; returns its start offset."""
        framed = frame(payload)
        start = self.offset
        self._handle.write(framed)
        self.offset += len(framed)
        _APPEND_BYTES.observe(len(framed))
        return start

    def commit(self) -> None:
        with _trace.span("wal.commit", log=self.path):
            self._handle.flush()
            self._handle.sync()
        _COMMITS.inc()

    def close(self) -> None:
        self._handle.close()
