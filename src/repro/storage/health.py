"""Per-shard health state machine: healthy → suspect → failed → recovered.

Every shard-scoped operation reports its outcome to the store's
:class:`ShardHealthBoard`; the board decides, fail-fast, whether the
*next* operation may even try.  The states:

``healthy``
    Normal operation.  A single failure drops to ``suspect`` — one
    transient IO error must not take a shard out of rotation.
``suspect``
    Still serving, but under watch.  ``fail_threshold`` *consecutive*
    failures escalate to ``failed``; one success clears back to
    ``healthy``.
``failed``
    Out of rotation.  Writes are refused immediately with
    :class:`~repro.errors.ShardUnavailable` (no retry budget burned on
    a shard known to be down) and scatter readers treat the shard per
    their ``on_shard_failure`` policy.  Recovery is probe-based: every
    ``probe_interval``-th refused operation is admitted as a *probe*,
    so a healed shard is rediscovered by traffic itself — no background
    thread, fully deterministic under test.
``recovered``
    A probe succeeded; the next success promotes to ``healthy``, the
    next failure demotes straight back to ``suspect``.  The
    intermediate state keeps one lucky probe from instantly restoring
    full confidence in a flapping shard.

Lock discipline: the board's lock guards only its own counters; it is
never held across shard IO, metric updates, or sleeps.  Gauges
(``storage.shard.health.failed`` / ``.suspect``) and transition
counters are published after the state change, outside the lock.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs import locks as _locks
from repro.obs import metrics as _metrics

__all__ = [
    "FAILED",
    "HEALTHY",
    "RECOVERED",
    "SUSPECT",
    "ShardHealthBoard",
]

HEALTHY = "healthy"
SUSPECT = "suspect"
FAILED = "failed"
RECOVERED = "recovered"

_FAILURES = _metrics.counter("storage.shard.health.failures")
_RECOVERIES = _metrics.counter("storage.shard.health.recoveries")
_PROBES = _metrics.counter("storage.shard.health.probes")
_FAILED_GAUGE = _metrics.gauge("storage.shard.health.failed")
_SUSPECT_GAUGE = _metrics.gauge("storage.shard.health.suspect")


class ShardHealthBoard:
    """Health state for every shard of one :class:`ShardedStore`."""

    def __init__(self, shard_count: int, fail_threshold: int = 3,
                 probe_interval: int = 4) -> None:
        if shard_count <= 0:
            raise ValueError("shard_count must be positive")
        if fail_threshold <= 0:
            raise ValueError("fail_threshold must be positive")
        if probe_interval <= 0:
            raise ValueError("probe_interval must be positive")
        self.fail_threshold = fail_threshold
        self.probe_interval = probe_interval
        self._lock = _locks.make_lock("storage.health")
        # all three guarded-by: _lock
        self._states = [HEALTHY] * shard_count
        self._consecutive = [0] * shard_count
        self._refusals = [0] * shard_count

    # -- outcome reporting -------------------------------------------------

    def record_failure(self, index: int) -> str:
        """A shard-scoped operation failed; returns the new state."""
        with self._lock:
            state = self._states[index]
            if state == FAILED:
                return FAILED
            if state == HEALTHY:
                new = SUSPECT
                self._consecutive[index] = 1
            elif state == RECOVERED:
                # a flapping shard loses its probationary credit at once
                new = SUSPECT
                self._consecutive[index] = 1
            else:  # SUSPECT
                self._consecutive[index] += 1
                new = (FAILED if self._consecutive[index]
                       >= self.fail_threshold else SUSPECT)
            self._states[index] = new
            if new == FAILED:
                self._refusals[index] = 0
            counts = self._counts_locked()
        _FAILURES.inc()
        self._publish(counts)
        return new

    def record_success(self, index: int) -> str:
        """A shard-scoped operation (or probe) succeeded."""
        recovered = False
        with self._lock:
            state = self._states[index]
            if state == FAILED:
                new = RECOVERED
                recovered = True
            elif state == RECOVERED:
                new = HEALTHY
            else:
                new = HEALTHY
            self._states[index] = new
            self._consecutive[index] = 0
            counts = self._counts_locked()
        if recovered:
            _RECOVERIES.inc()
        self._publish(counts)
        return new

    # -- admission ---------------------------------------------------------

    def admit(self, index: int) -> bool:
        """May an operation against this shard proceed?  True for every
        non-failed shard.  For a failed shard, counts the refusal and
        admits every ``probe_interval``-th attempt as a probe — the
        deterministic, traffic-driven recovery path."""
        probe = False
        with self._lock:
            if self._states[index] != FAILED:
                return True
            self._refusals[index] += 1
            probe = self._refusals[index] % self.probe_interval == 0
        if probe:
            _PROBES.inc()
            return True
        return False

    # -- introspection -----------------------------------------------------

    def state(self, index: int) -> str:
        with self._lock:
            return self._states[index]

    def states(self) -> List[str]:
        with self._lock:
            return list(self._states)

    def failed_shards(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(i for i, s in enumerate(self._states)
                         if s == FAILED)

    def summary(self) -> Dict[str, int]:
        """State histogram (JSON-ready, for reports and EXPLAIN text)."""
        with self._lock:
            states = list(self._states)
        histogram: Dict[str, int] = {}
        for state in states:
            histogram[state] = histogram.get(state, 0) + 1
        return histogram

    # -- internal ----------------------------------------------------------

    def _counts_locked(self) -> Tuple[int, int]:
        failed = sum(1 for s in self._states if s == FAILED)
        suspect = sum(1 for s in self._states if s == SUSPECT)
        return failed, suspect

    @staticmethod
    def _publish(counts: Tuple[int, int]) -> None:
        failed, suspect = counts
        _FAILED_GAUGE.set(failed)
        _SUSPECT_GAUGE.set(suspect)
