"""BSON element type tags (bsonspec.org, JSON-reachable subset)."""

from __future__ import annotations

TYPE_DOUBLE = 0x01
TYPE_STRING = 0x02
TYPE_DOCUMENT = 0x03
TYPE_ARRAY = 0x04
TYPE_BOOLEAN = 0x08
TYPE_NULL = 0x0A
TYPE_INT32 = 0x10
TYPE_INT64 = 0x12

INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1
INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1
