"""BSON decoder with the access pattern the paper attributes to BSON.

:class:`BsonDocument` wraps raw BSON bytes and exposes:

* ``find_field(name)`` — a *sequential scan* of the element list, comparing
  null-terminated field-name strings, skipping over unneeded child
  containers via their leading length words (this is the "skip navigation"
  of section 4.1);
* ``element_at(index)`` — sequential scan to the Nth array element;
* ``materialize()`` — full decode to Python values.

There is deliberately no random field access: the gap between this scan
behaviour and OSON's binary-searched sorted field-id arrays is exactly what
Figures 3/5 measure.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator, Optional

from repro.bson import constants as c
from repro.bson.encoder import WRAPPER_KEY
from repro.errors import BsonError

_unpack_i32 = struct.Struct("<i").unpack_from
_unpack_i64 = struct.Struct("<q").unpack_from
_unpack_f64 = struct.Struct("<d").unpack_from

#: BSON node kinds surfaced by :attr:`BsonNode.kind`
KIND_OBJECT = "object"
KIND_ARRAY = "array"
KIND_SCALAR = "scalar"

_CONTAINER_TYPES = (c.TYPE_DOCUMENT, c.TYPE_ARRAY)


class BsonNode:
    """A handle onto one element inside a BSON byte buffer.

    ``offset`` points at the start of the element *value* (after the type
    byte and the field name).  Container nodes can be opened as child
    :class:`BsonDocument` views without copying.
    """

    __slots__ = ("buffer", "type_tag", "offset")

    def __init__(self, buffer: bytes, type_tag: int, offset: int) -> None:
        self.buffer = buffer
        self.type_tag = type_tag
        self.offset = offset

    @property
    def kind(self) -> str:
        if self.type_tag == c.TYPE_DOCUMENT:
            return KIND_OBJECT
        if self.type_tag == c.TYPE_ARRAY:
            return KIND_ARRAY
        return KIND_SCALAR

    def scalar_value(self) -> Any:
        """Decode a scalar element's value."""
        tag, buf, off = self.type_tag, self.buffer, self.offset
        try:
            if tag == c.TYPE_DOUBLE:
                return _unpack_f64(buf, off)[0]
            if tag == c.TYPE_INT32:
                return _unpack_i32(buf, off)[0]
            if tag == c.TYPE_INT64:
                return _unpack_i64(buf, off)[0]
            if tag == c.TYPE_STRING:
                length = _unpack_i32(buf, off)[0]
                if length < 1 or off + 4 + length > len(buf):
                    raise BsonError(f"string length {length} out of range",
                                    offset=off)
                if buf[off + 4 + length - 1] != 0:
                    raise BsonError("string payload is missing its NUL "
                                    "terminator", offset=off + 4 + length - 1)
                return buf[off + 4:off + 4 + length - 1].decode("utf-8")
            if tag == c.TYPE_BOOLEAN:
                if off >= len(buf) or buf[off] not in (0, 1):
                    raise BsonError("boolean byte must be 0x00 or 0x01",
                                    offset=off)
                return buf[off] == 1
            if tag == c.TYPE_NULL:
                return None
        except struct.error as exc:
            raise BsonError(f"scalar value overruns the buffer: {exc}",
                            offset=off) from exc
        except UnicodeDecodeError as exc:
            raise BsonError(f"string payload is not valid UTF-8: {exc}",
                            offset=off) from exc
        raise BsonError(f"not a scalar element (type 0x{tag:02x})")

    def as_document(self) -> "BsonDocument":
        """Open a container element as a child document view."""
        if self.type_tag not in _CONTAINER_TYPES:
            raise BsonError("element is not a document or array")
        return BsonDocument(self.buffer, self.offset, self.type_tag == c.TYPE_ARRAY)

    def materialize(self) -> Any:
        if self.type_tag in _CONTAINER_TYPES:
            return self.as_document().materialize()
        return self.scalar_value()


def _skip_value(buf: bytes, type_tag: int, offset: int) -> int:
    """Return the offset just past the element value starting at ``offset``."""
    try:
        if type_tag == c.TYPE_DOUBLE or type_tag == c.TYPE_INT64:
            return offset + 8
        if type_tag == c.TYPE_INT32:
            return offset + 4
        if type_tag == c.TYPE_STRING:
            length = _unpack_i32(buf, offset)[0]
            if length < 1:
                raise BsonError(f"string length {length} must be positive",
                                offset=offset)
            return offset + 4 + length
        if type_tag in _CONTAINER_TYPES:
            # skip navigation: containers carry a leading total length
            total = _unpack_i32(buf, offset)[0]
            if total < 5:
                raise BsonError(f"container length {total} below the "
                                "5-byte minimum", offset=offset)
            return offset + total
        if type_tag == c.TYPE_BOOLEAN:
            return offset + 1
        if type_tag == c.TYPE_NULL:
            return offset
    except struct.error as exc:
        raise BsonError(f"element length word overruns the buffer: {exc}",
                        offset=offset) from exc
    raise BsonError(f"unsupported BSON type 0x{type_tag:02x}")


class BsonDocument:
    """Zero-copy view over a BSON document or array within a byte buffer."""

    __slots__ = ("buffer", "start", "is_array")

    def __init__(self, buffer: bytes, start: int = 0, is_array: bool = False) -> None:
        if len(buffer) - start < 5:
            raise BsonError("buffer too small for a BSON document",
                            offset=start)
        self.buffer = buffer
        self.start = start
        self.is_array = is_array
        total = _unpack_i32(buffer, start)[0]
        if start + total > len(buffer) or total < 5:
            raise BsonError(f"BSON length word {total} out of range",
                            offset=start)
        if buffer[start + total - 1] != 0:
            raise BsonError("BSON document does not end with a NUL "
                            "terminator", offset=start + total - 1)

    # -- scanning ---------------------------------------------------------

    def iter_elements(self) -> Iterator[tuple[str, BsonNode]]:
        """Sequentially scan (field name, node) pairs."""
        buf = self.buffer
        end = self.start + _unpack_i32(buf, self.start)[0] - 1  # before trailing NUL
        pos = self.start + 4
        while pos < end:
            type_tag = buf[pos]
            pos += 1
            name_end = buf.find(b"\x00", pos, end)  # the byte scan the paper mentions
            if name_end < 0:
                raise BsonError("field name is not NUL-terminated inside "
                                "the document", offset=pos)
            try:
                name = buf[pos:name_end].decode("utf-8")
            except UnicodeDecodeError as exc:
                raise BsonError("field name is not valid UTF-8",
                                offset=pos) from exc
            pos = name_end + 1
            node = BsonNode(buf, type_tag, pos)
            # validate the element's extent before handing the node out,
            # so lazy decoding can never read past the document
            pos = _skip_value(buf, type_tag, pos)
            if pos > end:
                raise BsonError("element value overruns the document",
                                offset=node.offset)
            yield name, node
        if pos != end:
            raise BsonError("corrupt BSON element list", offset=pos)

    def find_field(self, name: str) -> Optional[BsonNode]:
        """Sequential-scan lookup of a named field (documents only)."""
        for field, node in self.iter_elements():
            if field == name:
                return node
        return None

    def element_at(self, index: int) -> Optional[BsonNode]:
        """Sequential-scan access to the Nth element (arrays)."""
        for i, (_name, node) in enumerate(self.iter_elements()):
            if i == index:
                return node
        return None

    def element_count(self) -> int:
        return sum(1 for _ in self.iter_elements())

    # -- materialization ---------------------------------------------------

    def materialize(self) -> Any:
        if self.is_array:
            return [node.materialize() for _name, node in self.iter_elements()]
        return {name: node.materialize() for name, node in self.iter_elements()}


def decode(data: bytes) -> Any:
    """Fully decode BSON ``data`` back to Python values, unwrapping the
    single-key wrapper produced by :func:`repro.bson.encoder.encode` for
    non-document top-level values."""
    doc = BsonDocument(data)
    value = doc.materialize()
    if isinstance(value, dict) and list(value.keys()) == [WRAPPER_KEY]:
        return value[WRAPPER_KEY]
    return value
