"""BSON decoder with the access pattern the paper attributes to BSON.

:class:`BsonDocument` wraps raw BSON bytes and exposes:

* ``find_field(name)`` — a *sequential scan* of the element list, comparing
  null-terminated field-name strings, skipping over unneeded child
  containers via their leading length words (this is the "skip navigation"
  of section 4.1);
* ``element_at(index)`` — sequential scan to the Nth array element;
* ``materialize()`` — full decode to Python values.

There is deliberately no random field access: the gap between this scan
behaviour and OSON's binary-searched sorted field-id arrays is exactly what
Figures 3/5 measure.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator, Optional

from repro.bson import constants as c
from repro.bson.encoder import WRAPPER_KEY
from repro.errors import BsonError

_unpack_i32 = struct.Struct("<i").unpack_from
_unpack_i64 = struct.Struct("<q").unpack_from
_unpack_f64 = struct.Struct("<d").unpack_from

#: BSON node kinds surfaced by :attr:`BsonNode.kind`
KIND_OBJECT = "object"
KIND_ARRAY = "array"
KIND_SCALAR = "scalar"

_CONTAINER_TYPES = (c.TYPE_DOCUMENT, c.TYPE_ARRAY)


class BsonNode:
    """A handle onto one element inside a BSON byte buffer.

    ``offset`` points at the start of the element *value* (after the type
    byte and the field name).  Container nodes can be opened as child
    :class:`BsonDocument` views without copying.
    """

    __slots__ = ("buffer", "type_tag", "offset")

    def __init__(self, buffer: bytes, type_tag: int, offset: int) -> None:
        self.buffer = buffer
        self.type_tag = type_tag
        self.offset = offset

    @property
    def kind(self) -> str:
        if self.type_tag == c.TYPE_DOCUMENT:
            return KIND_OBJECT
        if self.type_tag == c.TYPE_ARRAY:
            return KIND_ARRAY
        return KIND_SCALAR

    def scalar_value(self) -> Any:
        """Decode a scalar element's value."""
        tag, buf, off = self.type_tag, self.buffer, self.offset
        if tag == c.TYPE_DOUBLE:
            return _unpack_f64(buf, off)[0]
        if tag == c.TYPE_INT32:
            return _unpack_i32(buf, off)[0]
        if tag == c.TYPE_INT64:
            return _unpack_i64(buf, off)[0]
        if tag == c.TYPE_STRING:
            length = _unpack_i32(buf, off)[0]
            return buf[off + 4:off + 4 + length - 1].decode("utf-8")
        if tag == c.TYPE_BOOLEAN:
            return buf[off] == 1
        if tag == c.TYPE_NULL:
            return None
        raise BsonError(f"not a scalar element (type 0x{tag:02x})")

    def as_document(self) -> "BsonDocument":
        """Open a container element as a child document view."""
        if self.type_tag not in _CONTAINER_TYPES:
            raise BsonError("element is not a document or array")
        return BsonDocument(self.buffer, self.offset, self.type_tag == c.TYPE_ARRAY)

    def materialize(self) -> Any:
        if self.type_tag in _CONTAINER_TYPES:
            return self.as_document().materialize()
        return self.scalar_value()


def _skip_value(buf: bytes, type_tag: int, offset: int) -> int:
    """Return the offset just past the element value starting at ``offset``."""
    if type_tag == c.TYPE_DOUBLE or type_tag == c.TYPE_INT64:
        return offset + 8
    if type_tag == c.TYPE_INT32:
        return offset + 4
    if type_tag == c.TYPE_STRING:
        return offset + 4 + _unpack_i32(buf, offset)[0]
    if type_tag in _CONTAINER_TYPES:
        # skip navigation: containers carry a leading total length
        return offset + _unpack_i32(buf, offset)[0]
    if type_tag == c.TYPE_BOOLEAN:
        return offset + 1
    if type_tag == c.TYPE_NULL:
        return offset
    raise BsonError(f"unsupported BSON type 0x{type_tag:02x}")


class BsonDocument:
    """Zero-copy view over a BSON document or array within a byte buffer."""

    __slots__ = ("buffer", "start", "is_array")

    def __init__(self, buffer: bytes, start: int = 0, is_array: bool = False) -> None:
        if len(buffer) - start < 5:
            raise BsonError("buffer too small for a BSON document")
        self.buffer = buffer
        self.start = start
        self.is_array = is_array
        total = _unpack_i32(buffer, start)[0]
        if start + total > len(buffer) or total < 5:
            raise BsonError("BSON length word out of range")

    # -- scanning ---------------------------------------------------------

    def iter_elements(self) -> Iterator[tuple[str, BsonNode]]:
        """Sequentially scan (field name, node) pairs."""
        buf = self.buffer
        end = self.start + _unpack_i32(buf, self.start)[0] - 1  # before trailing NUL
        pos = self.start + 4
        while pos < end:
            type_tag = buf[pos]
            pos += 1
            name_end = buf.index(b"\x00", pos)  # the byte scan the paper mentions
            name = buf[pos:name_end].decode("utf-8")
            pos = name_end + 1
            node = BsonNode(buf, type_tag, pos)
            yield name, node
            pos = _skip_value(buf, type_tag, pos)
        if pos != end:
            raise BsonError("corrupt BSON element list")

    def find_field(self, name: str) -> Optional[BsonNode]:
        """Sequential-scan lookup of a named field (documents only)."""
        for field, node in self.iter_elements():
            if field == name:
                return node
        return None

    def element_at(self, index: int) -> Optional[BsonNode]:
        """Sequential-scan access to the Nth element (arrays)."""
        for i, (_name, node) in enumerate(self.iter_elements()):
            if i == index:
                return node
        return None

    def element_count(self) -> int:
        return sum(1 for _ in self.iter_elements())

    # -- materialization ---------------------------------------------------

    def materialize(self) -> Any:
        if self.is_array:
            return [node.materialize() for _name, node in self.iter_elements()]
        return {name: node.materialize() for name, node in self.iter_elements()}


def decode(data: bytes) -> Any:
    """Fully decode BSON ``data`` back to Python values, unwrapping the
    single-key wrapper produced by :func:`repro.bson.encoder.encode` for
    non-document top-level values."""
    doc = BsonDocument(data)
    value = doc.materialize()
    if isinstance(value, dict) and list(value.keys()) == [WRAPPER_KEY]:
        return value[WRAPPER_KEY]
    return value
