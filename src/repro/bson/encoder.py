"""BSON encoder.

Encodes Python values (dict / list / str / int / float / bool / None) into
BSON bytes.  Top-level scalars and arrays are wrapped the way MongoDB
drivers wrap them — as a single-element document — so that any JSON value
can round-trip; :func:`repro.bson.decoder.decode` unwraps them again.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.bson import constants as c
from repro.errors import BsonError

# Key used when wrapping non-document top-level values.  BSON requires a
# document at the top level, so scalars/arrays are wrapped MongoDB-driver
# style; the marker is chosen to be vanishingly unlikely in real data
# (a document whose only key equals it would be unwrapped on decode).
WRAPPER_KEY = "\x7frepro.bson.wrapped"

_pack_i32 = struct.Struct("<i").pack
_pack_i64 = struct.Struct("<q").pack
_pack_f64 = struct.Struct("<d").pack


def encode(value: Any) -> bytes:
    """Encode any JSON-compatible Python value to BSON bytes."""
    if isinstance(value, dict):
        return _encode_document(value)
    # BSON top level must be a document: wrap scalars/arrays.
    return _encode_document({WRAPPER_KEY: value})


def _cstring(name: str) -> bytes:
    encoded = name.encode("utf-8")
    if b"\x00" in encoded:
        raise BsonError("BSON field names cannot contain NUL bytes")
    return encoded + b"\x00"


def _encode_document(obj: dict[str, Any]) -> bytes:
    body = bytearray()
    for key, item in obj.items():
        if not isinstance(key, str):
            raise BsonError(f"BSON keys must be strings, got {type(key).__name__}")
        _encode_element(body, key, item)
    return _frame(body)


def _encode_array(items: list[Any]) -> bytes:
    body = bytearray()
    for index, item in enumerate(items):
        _encode_element(body, str(index), item)
    return _frame(body)


def _frame(body: bytearray) -> bytes:
    # total length includes the 4 length bytes and the trailing NUL
    total = len(body) + 5
    return _pack_i32(total) + bytes(body) + b"\x00"


def _encode_element(out: bytearray, key: str, value: Any) -> None:
    if value is None:
        out.append(c.TYPE_NULL)
        out += _cstring(key)
    elif value is True or value is False:
        out.append(c.TYPE_BOOLEAN)
        out += _cstring(key)
        out.append(1 if value else 0)
    elif isinstance(value, str):
        out.append(c.TYPE_STRING)
        out += _cstring(key)
        encoded = value.encode("utf-8")
        out += _pack_i32(len(encoded) + 1)
        out += encoded
        out.append(0)
    elif isinstance(value, int):
        if c.INT32_MIN <= value <= c.INT32_MAX:
            out.append(c.TYPE_INT32)
            out += _cstring(key)
            out += _pack_i32(value)
        elif c.INT64_MIN <= value <= c.INT64_MAX:
            out.append(c.TYPE_INT64)
            out += _cstring(key)
            out += _pack_i64(value)
        else:
            # out-of-range integers degrade to double, like most drivers
            out.append(c.TYPE_DOUBLE)
            out += _cstring(key)
            out += _pack_f64(float(value))
    elif isinstance(value, float):
        out.append(c.TYPE_DOUBLE)
        out += _cstring(key)
        out += _pack_f64(value)
    elif isinstance(value, dict):
        out.append(c.TYPE_DOCUMENT)
        out += _cstring(key)
        out += _encode_document(value)
    elif isinstance(value, (list, tuple)):
        out.append(c.TYPE_ARRAY)
        out += _cstring(key)
        out += _encode_array(list(value))
    else:
        raise BsonError(f"cannot encode {type(value).__name__} to BSON")
