"""From-scratch BSON baseline format.

BSON is the comparison binary format in the paper (Tables 10/11, Figures
3/4).  This implementation follows the bsonspec.org layout for the types
reachable from JSON (double, int32/int64, string, document, array, boolean,
null) and exposes exactly the access pattern the paper attributes to BSON:

* sequential element scans with null-terminated field names, and
* *skip navigation* over unneeded child containers via their leading
  length words — but no random access to a named field.
"""

from repro.bson.encoder import encode
from repro.bson.decoder import BsonDocument, decode

__all__ = ["encode", "decode", "BsonDocument"]
