"""Command-line tools built on the library (In-Situ utilities)."""
