"""``python -m repro.tools.store`` — operate on a durable collection store.

Subcommands::

    python -m repro.tools.store open DIR       # recover + print report
    python -m repro.tools.store fsck DIR       # offline integrity check
    python -m repro.tools.store compact DIR    # rewrite live docs only

``open`` runs verified recovery and prints the recovery report
(quarantined records, torn-tail truncation, DataGuide status) plus the
store's DataGuide paths; it exits 0 even for a degraded-but-openable
store — recovery *degrading* is the designed behaviour, not a failure —
and 1 only when the directory is not a store at all.

``fsck`` is read-only and shares its verification code path with
``python -m repro.analysis verify`` (:mod:`repro.storage.fsck`); it
exits 1 when any ERROR-severity diagnostic is found.

All three subcommands transparently handle **sharded** collections
(directories carrying a ``SHARDS`` marker, see
:mod:`repro.storage.shard`): ``open`` prints the aggregate per-shard
recovery report, ``fsck`` checks the marker plus every shard, and
``compact`` compacts shard by shard.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis.diagnostics import has_errors
from repro.errors import StorageError
from repro.storage import (
    CollectionStore,
    ShardedStore,
    fsck,
    fsck_sharded,
    imc_segment_status,
    is_sharded_store,
)
from repro.storage.files import OsFileSystem


def _open_any(directory: str, verify_documents: bool = True):
    if is_sharded_store(OsFileSystem(), directory):
        return ShardedStore.open(directory,
                                 verify_documents=verify_documents)
    return CollectionStore.open(directory,
                                verify_documents=verify_documents)


def cmd_open(args: argparse.Namespace) -> int:
    try:
        store = _open_any(args.directory,
                          verify_documents=not args.no_verify)
    except StorageError as exc:
        print(f"cannot open {args.directory}: {exc}", file=sys.stderr)
        return 1
    report = store.recovery
    if args.json:
        if isinstance(store, ShardedStore):
            payload = {
                "sharded": True,
                "shards": store.shard_count,
                "routing_field": store.routing_field,
                "documents": len(store),
                "clean": report is None or report.clean,
                "cut_batches": report.cut_batches if report else [],
                "quarantined": [q.render() for q in
                                (report.quarantined if report else [])],
                "diagnostics": [d.to_dict() for d in
                                (report.diagnostics if report else [])],
            }
        else:
            payload = {
                "documents": len(store),
                "manifest": report.manifest_status,
                "dataguide": report.dataguide_status,
                "records_applied": report.records_applied,
                "torn_tail_bytes": report.torn_tail_bytes,
                "quarantined": [q.render() for q in report.quarantined],
                "diagnostics": [d.to_dict() for d in report.diagnostics],
            }
        print(json.dumps(payload, indent=2))
    else:
        if report is None:
            print(f"{args.directory}: freshly created, nothing to recover")
        else:
            print(report.summary())
        print(f"dataguide paths: {len(store.dataguide().paths())}")
    store.close()
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    fs = OsFileSystem()
    try:
        if is_sharded_store(fs, args.directory):
            diagnostics = fsck_sharded(fs, args.directory)
            segments = []
        else:
            diagnostics = fsck(fs, args.directory)
            segments = imc_segment_status(fs, args.directory)
    except OSError as exc:
        print(f"cannot fsck {args.directory}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        payload = {"diagnostics": [d.to_dict() for d in diagnostics]}
        if segments:
            payload["imc_segments"] = segments
        print(json.dumps(payload, indent=2))
    else:
        for diagnostic in diagnostics:
            print(diagnostic.render())
        for row in segments:
            print(f"imc segment {row['name']} "
                  f"({row['table']}.{row['column']}, "
                  f"{row['length']} bytes): {row['status']}")
        if not diagnostics and not segments:
            print(f"{args.directory}: store clean")
    return 1 if has_errors(diagnostics) else 0


def cmd_compact(args: argparse.Namespace) -> int:
    try:
        store = _open_any(args.directory)
    except StorageError as exc:
        print(f"cannot open {args.directory}: {exc}", file=sys.stderr)
        return 1
    reclaimed = store.compact()
    documents = len(store)
    store.close()
    print(f"{args.directory}: compacted to {documents} live documents, "
          f"reclaimed {reclaimed} bytes")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.store",
        description="Open, check and compact durable collection stores.")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON report on stdout")
    commands = parser.add_subparsers(dest="command", required=True)

    cmd = commands.add_parser("open", help="recover a store and print "
                                           "the recovery report")
    cmd.add_argument("directory")
    cmd.add_argument("--no-verify", action="store_true",
                     help="skip per-document OSON verification")
    cmd.set_defaults(func=cmd_open)

    cmd = commands.add_parser("fsck", help="offline integrity check "
                                           "(read-only)")
    cmd.add_argument("directory")
    cmd.set_defaults(func=cmd_fsck)

    cmd = commands.add_parser("compact", help="rewrite live documents "
                                              "into a fresh segment")
    cmd.add_argument("directory")
    cmd.set_defaults(func=cmd_compact)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
