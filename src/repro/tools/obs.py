"""``python -m repro.tools.obs`` — inspect observability exports.

Subcommands::

    python -m repro.tools.obs trace FILE [FILE...]     # render span trees
    python -m repro.tools.obs metrics FILE [FILE...]   # render metric table
    python -m repro.tools.obs validate FILE [FILE...]  # schema-check only

``trace`` and ``metrics`` validate each payload against the published
schema (:mod:`repro.obs.schema`) before rendering — a malformed export
is reported and counted as a failure, never rendered half-way.
``validate`` sniffs the payload kind from its ``schema`` field, so one
invocation can check a mixed directory of exports (the CI perf-smoke
artifact).  Exit status is 0 when every file validated, 1 otherwise.

All rendering is plain text on stdout; the exports themselves are the
machine-readable interface.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.schema import (
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    validate,
    validate_metrics_export,
    validate_trace_export,
)

#: schema-id -> (kind label, schema) for ``validate`` sniffing
_KNOWN_SCHEMAS = {
    "repro.obs.trace/v1": ("trace", TRACE_SCHEMA),
    "repro.obs.metrics/v1": ("metrics", METRICS_SCHEMA),
}


def _load(path: str) -> Any:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _iter_files(paths: Sequence[str]) -> List[Path]:
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(p for p in path.rglob("*.json")
                              if p.is_file()))
        else:
            out.append(path)
    return out


def _report_problems(path: str, problems: Sequence[str]) -> None:
    for problem in problems:
        print(f"{path}: {problem}", file=sys.stderr)


# -- trace rendering ---------------------------------------------------------


def _render_span(span: Dict[str, Any], depth: int) -> None:
    indent = "  " * depth
    elapsed = span.get("elapsed_ms")
    timing = f"{elapsed:.3f}ms" if isinstance(elapsed, (int, float)) \
        else "open"
    attrs = span.get("attrs") or {}
    suffix = ""
    if attrs:
        rendered = " ".join(f"{k}={v}" for k, v in attrs.items())
        suffix = f"  [{rendered}]"
    print(f"{indent}{span['name']}  {timing}{suffix}")
    counters = span.get("counters") or {}
    for key in sorted(counters):
        print(f"{indent}    {key}: {counters[key]}")
    for child in span.get("children") or []:
        _render_span(child, depth + 1)
    dropped = span.get("dropped_children")
    if dropped:
        print(f"{indent}  ... {dropped} child spans dropped (ring cap)")


def cmd_trace(args: argparse.Namespace) -> int:
    failed = 0
    for path in _iter_files(args.paths):
        try:
            payload = _load(str(path))
        except (OSError, ValueError) as exc:
            print(f"{path}: cannot read: {exc}", file=sys.stderr)
            failed += 1
            continue
        problems = validate_trace_export(payload)
        if problems:
            _report_problems(str(path), problems)
            failed += 1
            continue
        spans = payload["spans"]
        print(f"{path}: {len(spans)} root span(s)")
        for span in spans:
            _render_span(span, 1)
    return 1 if failed else 0


# -- metrics rendering -------------------------------------------------------


def _render_metric(name: str, snapshot: Dict[str, Any]) -> None:
    kind = snapshot.get("type")
    if kind == "histogram":
        boundaries = snapshot["boundaries"]
        counts = snapshot["counts"]
        buckets = []
        for i, count in enumerate(counts):
            if not count:
                continue
            upper = ("+inf" if i >= len(boundaries)
                     else f"<={boundaries[i]}")
            buckets.append(f"{upper}:{count}")
        rendered = " ".join(buckets) if buckets else "(empty)"
        print(f"  {name}  histogram  count={snapshot['count']} "
              f"sum={snapshot['sum']}  {rendered}")
    else:
        print(f"  {name}  {kind}  {snapshot.get('value')}")


def cmd_metrics(args: argparse.Namespace) -> int:
    failed = 0
    for path in _iter_files(args.paths):
        try:
            payload = _load(str(path))
        except (OSError, ValueError) as exc:
            print(f"{path}: cannot read: {exc}", file=sys.stderr)
            failed += 1
            continue
        problems = validate_metrics_export(payload)
        if problems:
            _report_problems(str(path), problems)
            failed += 1
            continue
        metrics = payload["metrics"]
        print(f"{path}: {len(metrics)} instrument(s)")
        for name in sorted(metrics):
            _render_metric(name, metrics[name])
        for section, body in sorted((payload.get("providers")
                                     or {}).items()):
            print(f"  provider {section}:")
            for key in sorted(body):
                print(f"    {key}: {body[key]}")
    return 1 if failed else 0


# -- validation --------------------------------------------------------------


def cmd_validate(args: argparse.Namespace) -> int:
    failed = 0
    checked = 0
    for path in _iter_files(args.paths):
        try:
            payload = _load(str(path))
        except (OSError, ValueError) as exc:
            print(f"{path}: cannot read: {exc}", file=sys.stderr)
            failed += 1
            continue
        schema_id = payload.get("schema") if isinstance(payload, dict) \
            else None
        known = _KNOWN_SCHEMAS.get(schema_id)
        if known is None:
            print(f"{path}: unknown export schema {schema_id!r}",
                  file=sys.stderr)
            failed += 1
            continue
        kind, schema = known
        problems = validate(payload, schema)
        checked += 1
        if problems:
            _report_problems(str(path), problems)
            failed += 1
        else:
            print(f"{path}: {kind} export ok")
    if failed:
        print(f"{failed} export(s) failed validation", file=sys.stderr)
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.obs",
        description="Pretty-print and validate repro.obs trace/metrics "
                    "exports.")
    commands = parser.add_subparsers(dest="command", required=True)
    trace = commands.add_parser("trace", help="render trace exports")
    trace.add_argument("paths", nargs="+",
                       help="trace export files or directories")
    trace.set_defaults(func=cmd_trace)
    metrics = commands.add_parser("metrics", help="render metrics exports")
    metrics.add_argument("paths", nargs="+",
                         help="metrics export files or directories")
    metrics.set_defaults(func=cmd_metrics)
    check = commands.add_parser(
        "validate", help="schema-validate exports (kind sniffed)")
    check.add_argument("paths", nargs="+",
                       help="export files or directories")
    check.set_defaults(func=cmd_validate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
