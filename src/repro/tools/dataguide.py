"""``python -m repro.tools.dataguide`` — In-Situ DataGuide over JSONL.

Computes a transient JSON DataGuide over a JSON-lines file without
loading it into a database (the external-table workflow of section 3.4)
and prints either the flat ($DG-style) or hierarchical form.

Examples::

    python -m repro.tools.dataguide events.jsonl
    python -m repro.tools.dataguide events.jsonl --hierarchical
    python -m repro.tools.dataguide big.jsonl --sample 25 --seed 7
"""

from __future__ import annotations

import argparse
import sys

from repro.engine.external import ExternalJsonTable
from repro.jsontext import dumps


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.dataguide",
        description="Compute a JSON DataGuide over a JSON-lines file "
                    "(In-Situ: the file is never loaded into a table).")
    parser.add_argument("path", help="JSON-lines file (one document/line)")
    parser.add_argument("--hierarchical", action="store_true",
                        help="print the nested schema document instead of "
                             "the flat $DG rows")
    parser.add_argument("--sample", type=float, default=None,
                        metavar="PCT",
                        help="Bernoulli-sample PCT%% of documents "
                             "(the paper's SAMPLE clause)")
    parser.add_argument("--seed", type=int, default=None,
                        help="sampling seed for reproducible output")
    parser.add_argument("--skip-errors", action="store_true",
                        help="skip malformed lines instead of failing")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    table = ExternalJsonTable(args.path, skip_errors=args.skip_errors)
    guide = table.dataguide(sample_percent=args.sample, seed=args.seed)
    if args.hierarchical:
        print(dumps(guide.as_hierarchical(), pretty=True))
    else:
        print(f"{'PATH':<50} {'TYPE':<18} {'FREQ':>6} {'MAXLEN':>7}")
        for row in guide.as_flat():
            print(f"{row['PATH']:<50} {row['TYPE']:<18} "
                  f"{row['FREQUENCY']:>6} {row['MAX_LENGTH']:>7}")
    print(f"\n-- {guide.document_count} documents, {len(guide)} distinct "
          f"paths, {guide.dmdv_column_count()} DMDV columns",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
