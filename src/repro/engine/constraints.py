"""Table constraints, including the IS JSON check constraint.

:class:`IsJsonConstraint` is where the paper fuses DataGuide maintenance
into DML (section 3.2.1): validating a document already requires parsing
it, so the parsed value is handed to any registered hooks — the JSON
search index and the persistent DataGuide — at no extra parse cost.
Figure 7 measures exactly the three tiers this module implements:
no constraint / IS JSON / IS JSON + DataGuide hook.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ConstraintViolation, JsonParseError, ReproError
from repro.jsontext import loads


class Constraint:
    """Base class: ``check(row)`` raises ConstraintViolation on failure."""

    name = "CONSTRAINT"

    def check(self, row: dict) -> None:
        raise NotImplementedError


class CheckConstraint(Constraint):
    """Generic check constraint over a row predicate callable."""

    def __init__(self, name: str, predicate: Callable[[dict], bool]) -> None:
        self.name = name
        self._predicate = predicate

    def check(self, row: dict) -> None:
        if not self._predicate(row):
            raise ConstraintViolation(f"check constraint {self.name} violated")


class NotNullConstraint(Constraint):
    def __init__(self, column: str) -> None:
        self.column = column
        self.name = f"{column}_NOT_NULL"

    def check(self, row: dict) -> None:
        if row.get(self.column) is None:
            raise ConstraintViolation(f"column {self.column} is NOT NULL")


class IsJsonConstraint(Constraint):
    """``CHECK (col IS JSON)`` with optional post-parse hooks.

    The constraint parses the column value (text, or accepts
    already-binary OSON/BSON and pre-parsed values) and passes the parsed
    Python value to each registered hook.  Hooks are how the JSON search
    index and the persistent DataGuide piggyback on constraint
    validation, the paper's low-overhead integration point.
    """

    def __init__(self, column: str) -> None:
        self.column = column
        self.name = f"{column}_IS_JSON"
        self._hooks: list[Callable[[dict, Any], None]] = []

    def add_hook(self, hook: Callable[[dict, Any], None]) -> None:
        """Register ``hook(row, parsed_value)`` to run after validation."""
        self._hooks.append(hook)

    def remove_hook(self, hook: Callable[[dict, Any], None]) -> None:
        self._hooks.remove(hook)

    @property
    def hook_count(self) -> int:
        return len(self._hooks)

    def check(self, row: dict) -> None:
        raw = row.get(self.column)
        if raw is None:
            return  # NULLs satisfy IS JSON, as in Oracle
        parsed = self._parse(raw)
        for hook in self._hooks:
            hook(row, parsed)

    def _parse(self, raw: Any) -> Any:
        if isinstance(raw, str):
            try:
                return loads(raw)
            except JsonParseError as exc:
                raise ConstraintViolation(
                    f"{self.name}: malformed JSON: {exc}") from exc
        if isinstance(raw, (bytes, bytearray)):
            data = bytes(raw)
            try:
                if data[:4] == b"OSON":
                    from repro.core.oson import decode as oson_decode
                    return oson_decode(data)
                from repro.bson import decode as bson_decode
                return bson_decode(data)
            except ReproError as exc:
                raise ConstraintViolation(
                    f"{self.name}: malformed binary JSON: {exc}") from exc
        if isinstance(raw, (dict, list, int, float, bool)):
            return raw
        raise ConstraintViolation(
            f"{self.name}: unsupported value type {type(raw).__name__}")
