"""External tables: In-Situ query processing over file-system JSON.

Section 3.4: "Oracle external table can map file system data as virtual
relational table on top of which JSON DataGuide can be computed and DMDV
view can be created for query.  Oracle SQL/JSON query support can
transparently read from external virtual table and thus enables the
In-Situ Query processing over JSON collection."

:class:`ExternalJsonTable` maps a JSON-lines file (one document per
line) as a scannable row source with a single JSON column.  It plugs
into everything that accepts a table-like object with ``scan()``:
``Query``, ``JSON_DATAGUIDEAGG``, ``create_view_on_path`` — no loading
step, the file is re-read per scan (that is the In-Situ trade-off).
"""

from __future__ import annotations

import os
from typing import Any, Iterator, Optional

from repro.errors import EngineError


class ExternalJsonTable:
    """A virtual relational table over a JSON-lines file.

    Rows have two columns: ``LINE`` (1-based line number, the pseudo
    rowid) and the JSON text column (default name ``JDOC``).  Blank
    lines are skipped; malformed lines raise unless ``skip_errors``, in
    which case they are counted in ``skipped_count`` (refreshed by each
    scan) instead of vanishing silently.  A leading UTF-8 BOM is
    tolerated.  The file's existence is re-checked at every ``scan()``
    — the file can legitimately disappear between the constructor and a
    later query (the In-Situ trade-off cuts both ways).
    """

    def __init__(self, path: str, json_column: str = "JDOC",
                 skip_errors: bool = False) -> None:
        if not os.path.exists(path):
            raise EngineError(f"external file not found: {path}")
        self.name = f"EXTERNAL({os.path.basename(path)})"
        self.path = path
        self.json_column = json_column
        self.skip_errors = skip_errors
        #: malformed lines skipped by the most recent scan
        self.skipped_count = 0

    @property
    def column_names(self) -> list[str]:
        return ["LINE", self.json_column]

    def has_column(self, name: str) -> bool:
        """Table-protocol compatibility (lets ``create_view_on_path``
        target an external table directly)."""
        return name in self.column_names

    def scan(self) -> Iterator[dict[str, Any]]:
        """Stream rows from the file; each scan re-reads it (In-Situ).

        Existence is re-checked here, not only in ``__init__``: the
        backing file may have been deleted or replaced between scans
        (TOCTOU), and the open itself can still lose that race, so both
        paths surface as :class:`EngineError` naming the file.
        """
        from repro.jsontext import loads
        from repro.errors import JsonParseError
        self.skipped_count = 0
        if not os.path.exists(self.path):
            raise EngineError(f"external file not found: {self.path}")
        try:
            # utf-8-sig: tolerate (and strip) a UTF-8 BOM first line
            handle = open(self.path, "r", encoding="utf-8-sig")
        except OSError as exc:
            raise EngineError(
                f"external file not found: {self.path} ({exc})") from exc
        with handle:
            for line_number, line in enumerate(handle, start=1):
                text = line.strip()
                if not text:
                    continue
                try:
                    loads(text)  # IS JSON validation, in situ
                except JsonParseError:
                    if self.skip_errors:
                        self.skipped_count += 1
                        continue
                    raise EngineError(
                        f"{self.path}:{line_number}: malformed JSON line")
                yield {"LINE": line_number, self.json_column: text}

    def documents(self) -> Iterator[Any]:
        """Parsed documents only (for DataGuide aggregation)."""
        from repro.jsontext import loads
        for row in self.scan():
            yield loads(row[self.json_column])

    def dataguide(self, sample_percent: Optional[float] = None,
                  seed: Optional[int] = None):
        """Compute a transient DataGuide over the file without loading it
        into any table — the paper's In-Situ schema discovery."""
        from repro.core.dataguide import json_dataguide_agg
        return json_dataguide_agg(self.documents(),
                                  sample_percent=sample_percent, seed=seed)
