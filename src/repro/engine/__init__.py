"""Mini relational engine substrate.

A small but real embedded relational engine standing in for the Oracle
kernel: heap tables with typed columns, check constraints and virtual
columns, a volcano-style iterator executor (scan / filter / project /
hash join / hash group-by / sort / window), a query builder, views and a
catalog.  The paper's experiments compare storage encodings and schema
maintenance *inside* one engine; this package is that engine.
"""

from repro.engine.catalog import Database
from repro.engine.table import Column, DurableTable, Table
from repro.engine.types import (
    BOOLEAN,
    CLOB,
    DATE,
    NUMBER,
    RAW,
    SqlType,
    VARCHAR2,
)
from repro.engine.query import Query, default_mode, set_default_mode
from repro.engine import expressions as expr

__all__ = [
    "Database",
    "Table",
    "DurableTable",
    "Column",
    "Query",
    "default_mode",
    "set_default_mode",
    "expr",
    "SqlType",
    "NUMBER",
    "VARCHAR2",
    "RAW",
    "CLOB",
    "DATE",
    "BOOLEAN",
]
