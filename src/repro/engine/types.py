"""SQL column types with Oracle-flavoured names and coercion rules.

Types are value objects: ``VARCHAR2(4000)`` constructs a sized string
type, ``NUMBER`` is a singleton-ish unsized numeric.  ``coerce`` validates
and converts a Python value on insert; ``storage_bytes`` estimates the
bytes a value occupies in our heap pages, which is what the Figure 4
storage-size accounting sums.
"""

from __future__ import annotations

import re
from decimal import Decimal
from typing import Any, Optional

from repro.errors import TypeCoercionError

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}([ T]\d{2}:\d{2}(:\d{2})?)?$")


class SqlType:
    """Base class for SQL types."""

    name = "SQLTYPE"

    def coerce(self, value: Any) -> Any:
        raise NotImplementedError

    def storage_bytes(self, value: Any) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class NumberType(SqlType):
    """NUMBER — ints, floats and Decimals; booleans are rejected."""

    name = "NUMBER"

    def coerce(self, value: Any) -> Any:
        if value is None:
            return None
        if isinstance(value, bool):
            raise TypeCoercionError("cannot store BOOLEAN in NUMBER column")
        if isinstance(value, (int, float, Decimal)):
            return value
        if isinstance(value, str):
            text = value.strip()
            try:
                return int(text)
            except ValueError:
                try:
                    return float(text)
                except ValueError:
                    raise TypeCoercionError(
                        f"cannot convert {value!r} to NUMBER") from None
        raise TypeCoercionError(f"cannot store {type(value).__name__} in NUMBER")

    def storage_bytes(self, value: Any) -> int:
        if value is None:
            return 1
        # Oracle NUMBER is variable length; ~1 byte per 2 significant digits
        digits = len(str(value).replace("-", "").replace(".", ""))
        return 2 + (digits + 1) // 2


class Varchar2Type(SqlType):
    """VARCHAR2(n) — bounded UTF-8 string."""

    def __init__(self, size: int = 4000) -> None:
        if size <= 0:
            raise TypeCoercionError("VARCHAR2 size must be positive")
        self.size = size

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"VARCHAR2({self.size})"

    def coerce(self, value: Any) -> Any:
        if value is None:
            return None
        if not isinstance(value, str):
            raise TypeCoercionError(
                f"cannot store {type(value).__name__} in {self.name}")
        if len(value.encode("utf-8")) > self.size:
            raise TypeCoercionError(
                f"value of {len(value)} chars exceeds {self.name}")
        return value

    def storage_bytes(self, value: Any) -> int:
        if value is None:
            return 1
        return 1 + len(value.encode("utf-8"))


class RawType(SqlType):
    """RAW(n) — bounded byte string (used for BSON/OSON columns)."""

    def __init__(self, size: int = 4000) -> None:
        self.size = size

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"RAW({self.size})"

    def coerce(self, value: Any) -> Any:
        if value is None:
            return None
        if not isinstance(value, (bytes, bytearray)):
            raise TypeCoercionError(
                f"cannot store {type(value).__name__} in {self.name}")
        data = bytes(value)
        if len(data) > self.size:
            raise TypeCoercionError(f"{len(data)} bytes exceeds {self.name}")
        return data

    def storage_bytes(self, value: Any) -> int:
        if value is None:
            return 1
        return 2 + len(value)


class ClobType(SqlType):
    """CLOB — unbounded text (JSON text columns in the paper's setups)."""

    name = "CLOB"

    def coerce(self, value: Any) -> Any:
        if value is None:
            return None
        if not isinstance(value, str):
            raise TypeCoercionError(
                f"cannot store {type(value).__name__} in CLOB")
        return value

    def storage_bytes(self, value: Any) -> int:
        if value is None:
            return 1
        return 4 + len(value.encode("utf-8"))


class BlobType(SqlType):
    """BLOB — unbounded bytes."""

    name = "BLOB"

    def coerce(self, value: Any) -> Any:
        if value is None:
            return None
        if not isinstance(value, (bytes, bytearray)):
            raise TypeCoercionError(
                f"cannot store {type(value).__name__} in BLOB")
        return bytes(value)

    def storage_bytes(self, value: Any) -> int:
        if value is None:
            return 1
        return 4 + len(value)


class BooleanType(SqlType):
    name = "BOOLEAN"

    def coerce(self, value: Any) -> Any:
        if value is None:
            return None
        if isinstance(value, bool):
            return value
        raise TypeCoercionError(
            f"cannot store {type(value).__name__} in BOOLEAN")

    def storage_bytes(self, value: Any) -> int:
        return 1


class DateType(SqlType):
    """DATE — ISO-8601 date / datetime strings, compared lexically."""

    name = "DATE"

    def coerce(self, value: Any) -> Any:
        if value is None:
            return None
        if isinstance(value, str) and _DATE_RE.match(value):
            return value
        raise TypeCoercionError(f"cannot convert {value!r} to DATE")

    def storage_bytes(self, value: Any) -> int:
        return 8


NUMBER = NumberType()
CLOB = ClobType()
BLOB = BlobType()
BOOLEAN = BooleanType()
DATE = DateType()


def VARCHAR2(size: int = 4000) -> Varchar2Type:  # noqa: N802 - SQL spelling
    return Varchar2Type(size)


def RAW(size: int = 4000) -> RawType:  # noqa: N802 - SQL spelling
    return RawType(size)


def parse_type(spec: str) -> SqlType:
    """Parse a SQL type spec string like ``"varchar2(16)"`` or ``"number"``."""
    match = re.match(r"^\s*(\w+)\s*(?:\(\s*(\d+)\s*\))?\s*$", spec)
    if not match:
        raise TypeCoercionError(f"bad type spec {spec!r}")
    name = match.group(1).lower()
    size: Optional[int] = int(match.group(2)) if match.group(2) else None
    if name == "number":
        return NUMBER
    if name in ("varchar2", "varchar", "string"):
        return VARCHAR2(size or 4000)
    if name == "raw":
        return RAW(size or 4000)
    if name == "clob":
        return CLOB
    if name == "blob":
        return BLOB
    if name == "boolean":
        return BOOLEAN
    if name == "date":
        return DATE
    raise TypeCoercionError(f"unknown SQL type {spec!r}")
