"""Heap tables with typed columns, constraints and virtual columns.

Rows are stored as plain dicts keyed by column name.  Virtual columns
(section 3.3.1 / 5.2.1) carry an expression instead of storage: their
value is computed on read and never occupies heap bytes.  ``AddVC`` in
the DataGuide package creates JSON_VALUE-backed virtual columns here,
and the hidden OSON virtual column of section 5.2.2 is also expressed
this way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.engine.constraints import Constraint, IsJsonConstraint
from repro.engine.expressions import Expression
from repro.engine.types import SqlType, parse_type
from repro.errors import CatalogError, EngineError


@dataclass
class Column:
    """A table column.  ``expression`` marks it virtual (computed)."""

    name: str
    sql_type: SqlType
    nullable: bool = True
    expression: Optional[Expression] = None
    hidden: bool = False

    @property
    def is_virtual(self) -> bool:
        return self.expression is not None

    @classmethod
    def of(cls, name: str, type_spec: str, **kwargs: Any) -> "Column":
        """Construct from a textual type spec, e.g. ``Column.of("id", "number")``."""
        return cls(name, parse_type(type_spec), **kwargs)


class Table:
    """A heap table: rows, columns, constraints, insert/update/delete."""

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not columns:
            raise CatalogError("a table needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in table {name}")
        self.name = name
        self._columns: dict[str, Column] = {c.name: c for c in columns}
        self._rows: list[dict[str, Any]] = []
        self._constraints: list[Constraint] = []
        self._insert_listeners: list[Callable[[dict], None]] = []
        self._delete_listeners: list[Callable[[dict], None]] = []
        #: the columnar cache this table is bound into, if any — set by
        #: :meth:`repro.imc.store.IMCStore.bind`; the plan rewrite uses
        #: it to narrow scans to the referenced columns (§5.2)
        self.imc: Optional[Any] = None

    # -- schema ------------------------------------------------------------

    @property
    def columns(self) -> list[Column]:
        return list(self._columns.values())

    @property
    def column_names(self) -> list[str]:
        return list(self._columns.keys())

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise CatalogError(
                f"no column {name!r} in table {self.name}") from None

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def add_column(self, column: Column) -> None:
        """ALTER TABLE ADD — virtual columns may be added at any time;
        stored columns may only be added while they are nullable."""
        if column.name in self._columns:
            raise CatalogError(
                f"column {column.name!r} already exists in {self.name}")
        if not column.is_virtual and not column.nullable and self._rows:
            raise EngineError(
                "cannot add a NOT NULL stored column to a non-empty table")
        self._columns[column.name] = column

    def add_constraint(self, constraint: Constraint) -> None:
        self._constraints.append(constraint)

    def constraints(self) -> list[Constraint]:
        return list(self._constraints)

    def is_json_constraint(self, column: str) -> Optional[IsJsonConstraint]:
        """The IS JSON constraint guarding ``column``, if any."""
        for constraint in self._constraints:
            if (isinstance(constraint, IsJsonConstraint)
                    and constraint.column == column):
                return constraint
        return None

    # -- listeners (index maintenance) ----------------------------------------

    def on_insert(self, listener: Callable[[dict], None]) -> None:
        self._insert_listeners.append(listener)

    def on_delete(self, listener: Callable[[dict], None]) -> None:
        self._delete_listeners.append(listener)

    # -- DML ---------------------------------------------------------------------

    def _prepare_insert(self, row: dict[str, Any]) -> dict[str, Any]:
        """Validate one row for insert — coerce types, fill NULL
        defaults, run constraints — without appending it or firing
        listeners.  This is the staging half of an insert: batched
        paths validate every row first, then commit them together.

        Unknown keys raise; missing stored columns default to NULL;
        virtual columns must not be supplied.
        """
        stored: dict[str, Any] = {}
        for key, value in row.items():
            column = self.column(key)
            if column.is_virtual:
                raise EngineError(
                    f"cannot insert into virtual column {key!r}")
            stored[key] = column.sql_type.coerce(value)
        for column in self._columns.values():
            if column.is_virtual:
                continue
            if column.name not in stored:
                if not column.nullable:
                    raise EngineError(
                        f"column {column.name!r} is NOT NULL and has no value")
                stored[column.name] = None
        for constraint in self._constraints:
            constraint.check(stored)
        return stored

    def insert(self, row: dict[str, Any]) -> dict[str, Any]:
        """Insert one row: coerce types, run constraints, fire listeners."""
        stored = self._prepare_insert(row)
        self._rows.append(stored)
        for listener in self._insert_listeners:
            listener(stored)
        return stored

    def insert_many(self, rows: Sequence[dict[str, Any]]) -> int:
        """Insert a batch, validating every row before the first lands:
        a constraint failure anywhere leaves the table unchanged."""
        prepared = [self._prepare_insert(row) for row in rows]
        for stored in prepared:
            self._rows.append(stored)
            for listener in self._insert_listeners:
                listener(stored)
        return len(prepared)

    def delete(self, predicate: Callable[[dict], Any]) -> int:
        """Delete rows matching ``predicate``; returns the count removed."""
        kept: list[dict[str, Any]] = []
        removed = 0
        for row in self._rows:
            if predicate(row):
                removed += 1
                for listener in self._delete_listeners:
                    listener(row)
            else:
                kept.append(row)
        self._rows = kept
        return removed

    def update(self, predicate: Callable[[dict], Any],
               changes: dict[str, Any]) -> int:
        """Update matching rows in place (replace semantics: delete+insert
        listeners fire so indexes stay in sync)."""
        coerced: dict[str, Any] = {}
        for key, value in changes.items():
            column = self.column(key)
            if column.is_virtual:
                raise EngineError(f"cannot update virtual column {key!r}")
            coerced[key] = column.sql_type.coerce(value)
        updated = 0
        for row in self._rows:
            if not predicate(row):
                continue
            # validate against a copy before any side effect: once the
            # delete listeners fire, backing state (indexes, durable
            # documents) is already gone, so a constraint failure after
            # that point would strand the row
            candidate = dict(row)
            candidate.update(coerced)
            for constraint in self._constraints:
                constraint.check(candidate)
            for listener in self._delete_listeners:
                listener(row)
            row.update(coerced)
            for listener in self._insert_listeners:
                listener(row)
            updated += 1
        return updated

    # -- reads --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def scan(self) -> Iterator[dict[str, Any]]:
        """Full scan; virtual columns are computed into each output row."""
        virtuals = [c for c in self._columns.values() if c.is_virtual]
        if not virtuals:
            yield from iter(self._rows)
            return
        for row in self._rows:
            out = dict(row)
            for column in virtuals:
                out[column.name] = column.expression.evaluate(row)
            yield out

    def raw_rows(self) -> list[dict[str, Any]]:
        """Stored rows without virtual-column evaluation (internal use)."""
        return self._rows

    # -- storage accounting (Figure 4) -----------------------------------------------

    def storage_bytes(self) -> int:
        """Estimated heap bytes: per-value type storage + row header."""
        total = 0
        stored_columns = [c for c in self._columns.values() if not c.is_virtual]
        for row in self._rows:
            total += 3  # row header
            for column in stored_columns:
                total += column.sql_type.storage_bytes(row.get(column.name))
        return total


class DurableTable(Table):
    """A heap table write-through-backed by a crash-safe
    :class:`~repro.storage.store.CollectionStore`.

    Every committed row lives as one OSON document in the store's WAL/
    segments; insert/update/delete ride the table's existing listener
    protocol (an update is persisted as delete + insert, exactly the
    replace semantics the in-memory indexes already see).  Opening the
    same directory again restores the rows through verified recovery —
    quarantined (corrupt) documents are reported on
    ``table.store.recovery`` and simply absent from the heap, never
    fatal.

    Binary values (RAW columns) are persisted as ``{"$raw": <hex>}``
    wrappers since JSON has no byte-string scalar; NUMBER values keep
    full fidelity through OSON's packed-decimal encoding.
    """

    def __init__(self, name: str, columns: Sequence[Column],
                 store: Any) -> None:
        super().__init__(name, columns)
        self._store = store
        self._row_doc_ids: dict[int, int] = {}
        self._restore_rows()
        self.on_insert(self._persist_insert)
        self.on_delete(self._persist_delete)

    @property
    def store(self) -> Any:
        return self._store

    @property
    def recovery(self) -> Any:
        """The last recovery report (None for a freshly created store)."""
        return self._store.recovery

    # -- write-through listeners -------------------------------------------

    def _persist_insert(self, row: dict) -> None:
        doc_id = self._store.insert(_row_to_document(row))
        self._row_doc_ids[id(row)] = doc_id

    def insert_many(self, rows: Sequence[dict[str, Any]]) -> int:
        """Insert a batch as **one** logical commit: every row is
        validated first, then all of them go to the store in a single
        group-commit batch (one WAL fsync, one acknowledgement) instead
        of paying a durability round-trip per row."""
        prepared = [self._prepare_insert(row) for row in rows]
        if not prepared:
            return 0
        doc_ids = self._store.insert_many(
            [_row_to_document(stored) for stored in prepared])
        persist = self._persist_insert
        for stored, doc_id in zip(prepared, doc_ids):
            self._rows.append(stored)
            self._row_doc_ids[id(stored)] = doc_id
            for listener in self._insert_listeners:
                # the batch already persisted; fire only the other
                # listeners (index maintenance etc.)
                if listener != persist:
                    listener(stored)
        return len(prepared)

    def insert_pending(self, row: dict[str, Any]) -> Any:
        """Stage one insert without waiting for durability: the row is
        validated, applied to the heap and the secondary listeners, and
        its document submitted to the store's group-commit pipeline.
        Returns a commit handle — the insert is acknowledged only once
        ``table.store.pipeline.wait(handle)`` returns.

        This is the serving layer's write path: the caller serializes
        heap mutation (this method) under its write lock but performs
        the durability wait *outside* it, so many sessions' commits can
        share one fsync.  Until the handle resolves, the row is visible
        to live ``scan()`` but to no snapshot."""
        stored = self._prepare_insert(row)
        doc_id, handle = self._store.insert_async(_row_to_document(stored))
        self._rows.append(stored)
        self._row_doc_ids[id(stored)] = doc_id
        persist = self._persist_insert
        for listener in self._insert_listeners:
            if listener != persist:
                listener(stored)
        return handle

    def _persist_delete(self, row: dict) -> None:
        doc_id = self._row_doc_ids.pop(id(row), None)
        if doc_id is None:
            raise EngineError(
                f"row in durable table {self.name} has no backing "
                f"document (listener ordering broken?)")
        self._store.delete(doc_id)

    # -- restore ------------------------------------------------------------

    def _restore_rows(self) -> None:
        """Load surviving documents back into the heap (no constraint
        re-check, no listener firing: these rows were validated and
        acknowledged before the restart)."""
        stored_names = {c.name for c in self._columns.values()
                        if not c.is_virtual}
        for doc_id, document in self._store.documents():
            row = _document_to_row(document)
            unknown = set(row) - stored_names
            if unknown:
                raise EngineError(
                    f"durable table {self.name}: recovered document "
                    f"{doc_id} carries unknown columns {sorted(unknown)}")
            for name in stored_names - set(row):
                row[name] = None
            self._rows.append(row)
            self._row_doc_ids[id(row)] = doc_id

    # -- columnar (IMC) access ----------------------------------------------

    def doc_id_rows(self) -> list[tuple[int, dict[str, Any]]]:
        """(document id, stored row) pairs in heap order — the IMC
        loader's bridge between heap rows and the durable column
        segments keyed by document id."""
        return [(self.doc_id_of(row), row) for row in self._rows]

    def doc_id_of(self, row: dict[str, Any]) -> int:
        """The backing document id of a heap row object."""
        doc_id = self._row_doc_ids.get(id(row))
        if doc_id is None:
            raise EngineError(
                f"row in durable table {self.name} has no backing "
                f"document (listener ordering broken?)")
        return doc_id

    # -- snapshot reads -----------------------------------------------------

    def snapshot_scan(self, snapshot: Any = None
                      ) -> Iterator[dict[str, Any]]:
        """Scan rows from a pinned store snapshot instead of the live
        heap: the iteration sees one consistent durable state no matter
        how many commits land while it runs (long analytical scans
        never observe a partial batch).  Pass a snapshot from
        ``table.store.snapshot()`` to reuse one pin across several
        scans; omit it to pin the current state."""
        if snapshot is None:
            snapshot = self._store.snapshot()
        stored_names = {c.name for c in self._columns.values()
                        if not c.is_virtual}
        virtuals = [c for c in self._columns.values() if c.is_virtual]
        for _, document in snapshot.documents():
            row = _document_to_row(document)
            for name in stored_names - set(row):
                row[name] = None
            for column in virtuals:
                row[column.name] = column.expression.evaluate(row)
            yield row

    # -- scatter-gather (sharded stores) ------------------------------------

    def shard_plan(self, snapshot: Any = None) -> Optional[Any]:
        """The scatter plan over this table's shards, or None when the
        backing store is unsharded (the planner then keeps the ordinary
        single-stream scan).

        Pass a pinned :class:`~repro.storage.shard.ShardedSnapshot` to
        scatter over a session's snapshot; omit it to pin the current
        durable state.  Each shard's stream reconstructs rows exactly
        like :meth:`snapshot_scan`; its DataGuide is the one captured
        *with* that shard's snapshot, which is what makes partition
        pruning against it sound.
        """
        if not hasattr(self._store, "shard_guides"):
            return None
        from repro.engine.scatter import ShardInput, ShardPlanInfo
        if snapshot is None:
            snapshot = self._store.snapshot()
        shards = [
            ShardInput(index,
                       lambda index=index: self._shard_rows(snapshot,
                                                            index),
                       snapshot.guides[index])
            for index in range(snapshot.shard_count)]
        return ShardPlanInfo(self.name, shards, self.prune_path,
                             routing_field=self._store.routing_field,
                             shard_of_value=self._store.shard_of_value,
                             health=getattr(self._store, "health", None))

    def prune_path(self, column: str) -> Optional[str]:
        """The DataGuide path a stored column's values live at (``$.col``
        in the backing documents); None for virtual or unknown columns —
        those never contribute to pruning."""
        if not self.has_column(column) or self.column(column).is_virtual:
            return None
        from repro.core.dataguide.model import child_path
        return child_path("$", column)

    def _shard_rows(self, snapshot: Any,
                    index: int) -> Iterator[dict[str, Any]]:
        stored_names = {c.name for c in self._columns.values()
                        if not c.is_virtual}
        virtuals = [c for c in self._columns.values() if c.is_virtual]
        for _, document in snapshot.shard_documents(index):
            row = _document_to_row(document)
            for name in stored_names - set(row):
                row[name] = None
            for column in virtuals:
                row[column.name] = column.expression.evaluate(row)
            yield row

    def checkpoint(self) -> None:
        self._store.checkpoint()

    def close(self) -> None:
        self._store.close()


def _row_to_document(row: dict) -> dict:
    document = {}
    for key, value in row.items():
        if isinstance(value, (bytes, bytearray)):
            document[key] = {"$raw": bytes(value).hex()}
        else:
            document[key] = value
    return document


def _document_to_row(document: dict) -> dict:
    row = {}
    for key, value in document.items():
        if isinstance(value, dict) and set(value) == {"$raw"}:
            row[key] = bytes.fromhex(value["$raw"])
        else:
            row[key] = value
    return row
