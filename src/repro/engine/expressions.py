"""Scalar, predicate, aggregate and window expressions.

Expressions form a small tree evaluated per row (rows are plain dicts).
SQL NULL semantics are observed: any scalar operation over NULL yields
NULL, comparisons with NULL are unknown (treated as false in WHERE), and
aggregates skip NULLs.

The module exposes Oracle-style helpers used by the paper's Figure 3
queries — ``SUBSTR``, ``INSTR``, ``LAG(...) OVER (ORDER BY ...)`` — plus
SQL/JSON expression wrappers (``JsonValueExpr``, ``JsonExistsExpr``) so
queries can push predicates down onto JSON columns of any encoding.
"""

from __future__ import annotations

import operator

from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.core.counters import counters_for
from repro.errors import QueryError
from repro.sqljson.operators import json_exists, json_value

Row = dict

#: per-query expression compilation: a hit means the tree had already
#: been lowered to a closure and the executor reused it
_COMPILE = counters_for("engine.expr_compile")


class Expression:
    """Base class: ``evaluate(row)`` computes the value for one row."""

    def evaluate(self, row: Row) -> Any:
        raise NotImplementedError

    def compile(self) -> Callable[[Row], Any]:
        """Lower this tree to a per-row closure.

        Subclasses specialize to remove the per-row dispatch on ``self``
        (operator lookup, attribute hops); the default interprets the
        tree, so an un-specialized node is merely not faster, never
        wrong.
        """
        return self.evaluate

    def compiled(self) -> Callable[[Row], Any]:
        """Memoized :meth:`compile` — one closure per expression tree,
        built the first time an executor hoists it out of its row loop."""
        fn = self.__dict__.get("_compiled_fn")
        if fn is not None:
            _COMPILE.record_hit()
            return fn
        _COMPILE.record_miss()
        fn = self.compile()
        self.__dict__["_compiled_fn"] = fn
        return fn

    def sql(self) -> str:
        raise NotImplementedError

    # -- operator sugar -------------------------------------------------

    def __eq__(self, other: Any) -> "Comparison":  # type: ignore[override]
        return Comparison("=", self, wrap(other))

    def __ne__(self, other: Any) -> "Comparison":  # type: ignore[override]
        return Comparison("<>", self, wrap(other))

    def __lt__(self, other: Any) -> "Comparison":
        return Comparison("<", self, wrap(other))

    def __le__(self, other: Any) -> "Comparison":
        return Comparison("<=", self, wrap(other))

    def __gt__(self, other: Any) -> "Comparison":
        return Comparison(">", self, wrap(other))

    def __ge__(self, other: Any) -> "Comparison":
        return Comparison(">=", self, wrap(other))

    def __add__(self, other: Any) -> "Arithmetic":
        return Arithmetic("+", self, wrap(other))

    def __sub__(self, other: Any) -> "Arithmetic":
        return Arithmetic("-", self, wrap(other))

    def __mul__(self, other: Any) -> "Arithmetic":
        return Arithmetic("*", self, wrap(other))

    def __truediv__(self, other: Any) -> "Arithmetic":
        return Arithmetic("/", self, wrap(other))

    def __hash__(self) -> int:
        return id(self)

    def in_(self, values: Iterable[Any]) -> "InList":
        return InList(self, tuple(values))

    def like(self, pattern: str) -> "Like":
        return Like(self, pattern)

    def is_null(self) -> "IsNull":
        return IsNull(self, True)

    def is_not_null(self) -> "IsNull":
        return IsNull(self, False)

    def as_(self, alias: str) -> "Aliased":
        return Aliased(self, alias)


def wrap(value: Any) -> Expression:
    """Lift a plain Python value to a :class:`Literal` (expressions pass
    through unchanged)."""
    if isinstance(value, Expression):
        return value
    return Literal(value)


class Literal(Expression):
    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, row: Row) -> Any:
        return self.value

    def compile(self) -> Callable[[Row], Any]:
        value = self.value
        return lambda row: value

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return str(self.value)


class Col(Expression):
    """A column reference by name."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, row: Row) -> Any:
        if self.name not in row:
            raise QueryError(f"unknown column {self.name!r}")
        return row[self.name]

    def compile(self) -> Callable[[Row], Any]:
        name = self.name

        def fetch(row: Row) -> Any:
            try:
                return row[name]
            except KeyError:
                raise QueryError(f"unknown column {name!r}") from None

        return fetch

    def sql(self) -> str:
        return self.name


class Aliased(Expression):
    """``expr AS alias`` — only meaningful in SELECT lists."""

    __slots__ = ("inner", "alias")

    def __init__(self, inner: Expression, alias: str) -> None:
        self.inner = inner
        self.alias = alias

    def evaluate(self, row: Row) -> Any:
        return self.inner.evaluate(row)

    def compile(self) -> Callable[[Row], Any]:
        return self.inner.compiled()

    def sql(self) -> str:
        return f"{self.inner.sql()} AS {self.alias}"


class Arithmetic(Expression):
    __slots__ = ("op", "left", "right")

    _OPS: dict[str, Callable[[Any, Any], Any]] = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
    }

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in self._OPS:
            raise QueryError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: Row) -> Any:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        return self._OPS[self.op](left, right)

    def compile(self) -> Callable[[Row], Any]:
        apply = self._OPS[self.op]
        left = self.left.compiled()
        right = self.right.compiled()

        def fn(row: Row) -> Any:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            return apply(a, b)

        return fn

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


class Comparison(Expression):
    __slots__ = ("op", "left", "right")

    _COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
        "=": operator.eq,
        "<>": operator.ne,
        "<": operator.lt,
        "<=": operator.le,
        ">": operator.gt,
        ">=": operator.ge,
    }

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: Row) -> Any:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None  # SQL three-valued logic: unknown
        try:
            if self.op == "=":
                return left == right
            if self.op == "<>":
                return left != right
            if self.op == "<":
                return left < right
            if self.op == "<=":
                return left <= right
            if self.op == ">":
                return left > right
            if self.op == ">=":
                return left >= right
        except TypeError:
            return None
        raise QueryError(f"unknown comparison {self.op!r}")

    def compile(self) -> Callable[[Row], Any]:
        comparator = self._COMPARATORS.get(self.op)
        if comparator is None:
            # unknown operator: keep the interpreted path so the error
            # still surfaces per row, exactly where evaluate() raises it
            return self.evaluate
        left = self.left.compiled()
        right = self.right.compiled()

        def fn(row: Row) -> Any:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            try:
                return comparator(a, b)
            except TypeError:
                return None

        return fn

    def sql(self) -> str:
        return f"{self.left.sql()} {self.op} {self.right.sql()}"


class And(Expression):
    __slots__ = ("parts",)

    def __init__(self, *parts: Expression) -> None:
        self.parts = parts

    def evaluate(self, row: Row) -> Any:
        result: Any = True
        for part in self.parts:
            value = part.evaluate(row)
            if value is False:
                return False
            if value is None:
                result = None
        return result

    def compile(self) -> Callable[[Row], Any]:
        parts = [p.compiled() for p in self.parts]

        def fn(row: Row) -> Any:
            result: Any = True
            for part in parts:
                value = part(row)
                if value is False:
                    return False
                if value is None:
                    result = None
            return result

        return fn

    def sql(self) -> str:
        return " AND ".join(p.sql() for p in self.parts)


class Or(Expression):
    __slots__ = ("parts",)

    def __init__(self, *parts: Expression) -> None:
        self.parts = parts

    def evaluate(self, row: Row) -> Any:
        result: Any = False
        for part in self.parts:
            value = part.evaluate(row)
            if value is True:
                return True
            if value is None:
                result = None
        return result

    def compile(self) -> Callable[[Row], Any]:
        parts = [p.compiled() for p in self.parts]

        def fn(row: Row) -> Any:
            result: Any = False
            for part in parts:
                value = part(row)
                if value is True:
                    return True
                if value is None:
                    result = None
            return result

        return fn

    def sql(self) -> str:
        return "(" + " OR ".join(p.sql() for p in self.parts) + ")"


class Not(Expression):
    __slots__ = ("inner",)

    def __init__(self, inner: Expression) -> None:
        self.inner = inner

    def evaluate(self, row: Row) -> Any:
        value = self.inner.evaluate(row)
        if value is None:
            return None
        return not value

    def compile(self) -> Callable[[Row], Any]:
        inner = self.inner.compiled()

        def fn(row: Row) -> Any:
            value = inner(row)
            if value is None:
                return None
            return not value

        return fn

    def sql(self) -> str:
        return f"NOT ({self.inner.sql()})"


class InList(Expression):
    __slots__ = ("operand", "values")

    def __init__(self, operand: Expression, values: tuple) -> None:
        self.operand = operand
        self.values = values

    def evaluate(self, row: Row) -> Any:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        return value in self.values

    def compile(self) -> Callable[[Row], Any]:
        operand = self.operand.compiled()
        values = self.values

        def fn(row: Row) -> Any:
            value = operand(row)
            if value is None:
                return None
            return value in values

        return fn

    def sql(self) -> str:
        rendered = ", ".join(Literal(v).sql() for v in self.values)
        return f"{self.operand.sql()} IN ({rendered})"


class Like(Expression):
    """SQL LIKE with % and _ wildcards."""

    __slots__ = ("operand", "pattern", "_regex")

    def __init__(self, operand: Expression, pattern: str) -> None:
        import re
        self.operand = operand
        self.pattern = pattern
        # re.escape leaves % and _ untouched (they are not regex
        # metacharacters), so the wildcard substitution happens afterwards
        escaped = re.escape(pattern).replace("%", ".*").replace("_", ".")
        self._regex = re.compile(f"^{escaped}$", re.DOTALL)

    def evaluate(self, row: Row) -> Any:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        return bool(self._regex.match(str(value)))

    def compile(self) -> Callable[[Row], Any]:
        operand = self.operand.compiled()
        match = self._regex.match

        def fn(row: Row) -> Any:
            value = operand(row)
            if value is None:
                return None
            return bool(match(str(value)))

        return fn

    def sql(self) -> str:
        return f"{self.operand.sql()} LIKE {Literal(self.pattern).sql()}"


class IsNull(Expression):
    __slots__ = ("operand", "expect_null")

    def __init__(self, operand: Expression, expect_null: bool) -> None:
        self.operand = operand
        self.expect_null = expect_null

    def evaluate(self, row: Row) -> Any:
        is_null = self.operand.evaluate(row) is None
        return is_null if self.expect_null else not is_null

    def compile(self) -> Callable[[Row], Any]:
        operand = self.operand.compiled()
        expect_null = self.expect_null

        def fn(row: Row) -> Any:
            is_null = operand(row) is None
            return is_null if expect_null else not is_null

        return fn

    def sql(self) -> str:
        suffix = "IS NULL" if self.expect_null else "IS NOT NULL"
        return f"{self.operand.sql()} {suffix}"


class Func(Expression):
    """Named scalar function over evaluated arguments (NULL-propagating)."""

    __slots__ = ("name", "args", "fn")

    def __init__(self, name: str, args: Sequence[Expression],
                 fn: Callable[..., Any]) -> None:
        self.name = name
        self.args = tuple(args)
        self.fn = fn

    def evaluate(self, row: Row) -> Any:
        values = [a.evaluate(row) for a in self.args]
        if any(v is None for v in values):
            return None
        return self.fn(*values)

    def compile(self) -> Callable[[Row], Any]:
        args = [a.compiled() for a in self.args]
        call = self.fn

        def fn(row: Row) -> Any:
            values = [a(row) for a in args]
            if any(v is None for v in values):
                return None
            return call(*values)

        return fn

    def sql(self) -> str:
        return f"{self.name}({', '.join(a.sql() for a in self.args)})"


# -- Oracle-style scalar functions used in the paper's queries ---------------


def SUBSTR(operand: Any, start: Any, length: Any = None) -> Func:  # noqa: N802
    """1-based SUBSTR; negative start counts from the end (Oracle rules)."""
    def fn(text: str, begin: int, size: Optional[int] = None) -> str:
        text = str(text)
        begin = int(begin)
        if begin > 0:
            index = begin - 1
        elif begin < 0:
            index = len(text) + begin
        else:
            index = 0
        if size is None:
            return text[index:]
        return text[index:index + int(size)]

    args = [wrap(operand), wrap(start)]
    if length is not None:
        args.append(wrap(length))
    return Func("SUBSTR", args, fn)


def INSTR(haystack: Any, needle: Any) -> Func:  # noqa: N802
    """1-based position of needle in haystack, 0 if absent."""
    return Func("INSTR", [wrap(haystack), wrap(needle)],
                lambda h, n: str(h).find(str(n)) + 1)


def UPPER(operand: Any) -> Func:  # noqa: N802
    return Func("UPPER", [wrap(operand)], lambda s: str(s).upper())


def LOWER(operand: Any) -> Func:  # noqa: N802
    return Func("LOWER", [wrap(operand)], lambda s: str(s).lower())


def LENGTH(operand: Any) -> Func:  # noqa: N802
    return Func("LENGTH", [wrap(operand)], lambda s: len(str(s)))


def NVL(operand: Any, default: Any) -> Expression:  # noqa: N802
    class _Nvl(Expression):
        def __init__(self, inner: Expression, alt: Expression) -> None:
            self.inner = inner
            self.alt = alt

        def evaluate(self, row: Row) -> Any:
            value = self.inner.evaluate(row)
            return self.alt.evaluate(row) if value is None else value

        def sql(self) -> str:
            return f"NVL({self.inner.sql()}, {self.alt.sql()})"

    return _Nvl(wrap(operand), wrap(default))


# -- SQL/JSON expression wrappers ----------------------------------------------


class JsonValueExpr(Expression):
    """``JSON_VALUE(col, 'path' RETURNING type)`` as a row expression."""

    __slots__ = ("column", "path", "returning")

    def __init__(self, column: Union[str, Expression], path: str,
                 returning: Optional[str] = None) -> None:
        self.column = Col(column) if isinstance(column, str) else column
        self.path = path
        self.returning = returning

    def evaluate(self, row: Row) -> Any:
        data = self.column.evaluate(row)
        if data is None:
            return None
        return json_value(data, self.path, returning=self.returning)

    def compile(self) -> Callable[[Row], Any]:
        column = self.column.compiled()
        path = self.path
        returning = self.returning

        def fn(row: Row) -> Any:
            data = column(row)
            if data is None:
                return None
            return json_value(data, path, returning=returning)

        return fn

    def sql(self) -> str:
        returning = f" RETURNING {self.returning}" if self.returning else ""
        return f"JSON_VALUE({self.column.sql()}, '{self.path}'{returning})"


class JsonExistsExpr(Expression):
    """``JSON_EXISTS(col, 'path')`` as a row predicate."""

    __slots__ = ("column", "path")

    def __init__(self, column: Union[str, Expression], path: str) -> None:
        self.column = Col(column) if isinstance(column, str) else column
        self.path = path

    def evaluate(self, row: Row) -> Any:
        data = self.column.evaluate(row)
        if data is None:
            return False
        return json_exists(data, self.path)

    def compile(self) -> Callable[[Row], Any]:
        column = self.column.compiled()
        path = self.path

        def fn(row: Row) -> Any:
            data = column(row)
            if data is None:
                return False
            return json_exists(data, path)

        return fn

    def sql(self) -> str:
        return f"JSON_EXISTS({self.column.sql()}, '{self.path}')"


# -- aggregates ------------------------------------------------------------------


class Aggregate:
    """Base class for SQL aggregates (NULL-skipping, per the standard)."""

    name = "AGG"

    def __init__(self, operand: Optional[Expression] = None) -> None:
        self.operand = operand

    def create(self) -> "AggregateState":
        raise NotImplementedError

    def sql(self) -> str:
        inner = self.operand.sql() if self.operand is not None else "*"
        return f"{self.name}({inner})"

    def as_(self, alias: str) -> tuple[str, "Aggregate"]:
        return alias, self


class AggregateState:
    """Accumulator for one group.  Besides the volcano ``step``/``final``
    protocol, states support the scatter-gather fold protocol:

    * :meth:`merge` — combine another state of the same aggregate into
      this one (in-process gather of per-shard partials);
    * :meth:`partial` / :meth:`fold_partial` — the serializable form of
      the same combine, for partials crossing a process boundary (states
      hold compiled closures and cannot be pickled; their partial dicts
      can).

    Merging is order-sensitive only where SQL addition is
    (float SUM/AVG reassociation); gather folds shards in shard-index
    order so results stay deterministic.
    """

    def step(self, row: Row) -> None:
        raise NotImplementedError

    def final(self) -> Any:
        raise NotImplementedError

    def merge(self, other: "AggregateState") -> None:
        raise NotImplementedError

    def partial(self) -> dict:
        raise NotImplementedError

    def fold_partial(self, partial: dict) -> None:
        raise NotImplementedError


class CountAgg(Aggregate):
    name = "COUNT"

    class _State(AggregateState):
        def __init__(self, operand: Optional[Expression]) -> None:
            self.operand = operand
            self._fn = None if operand is None else operand.compiled()
            self.count = 0

        def step(self, row: Row) -> None:
            if self._fn is None or self._fn(row) is not None:
                self.count += 1

        def final(self) -> Any:
            return self.count

        def merge(self, other: AggregateState) -> None:
            self.count += other.count

        def partial(self) -> dict:
            return {"count": self.count}

        def fold_partial(self, partial: dict) -> None:
            self.count += partial["count"]

    def create(self) -> AggregateState:
        return self._State(self.operand)


class SumAgg(Aggregate):
    name = "SUM"

    class _State(AggregateState):
        def __init__(self, operand: Expression) -> None:
            self.operand = operand
            self._fn = operand.compiled()
            self.total: Any = None

        def step(self, row: Row) -> None:
            value = self._fn(row)
            if value is None:
                return
            self.total = value if self.total is None else self.total + value

        def final(self) -> Any:
            return self.total

        def merge(self, other: AggregateState) -> None:
            if other.total is not None:
                self.total = (other.total if self.total is None
                              else self.total + other.total)

        def partial(self) -> dict:
            return {"total": self.total}

        def fold_partial(self, partial: dict) -> None:
            value = partial["total"]
            if value is not None:
                self.total = (value if self.total is None
                              else self.total + value)

    def create(self) -> AggregateState:
        if self.operand is None:
            raise QueryError("SUM requires an operand")
        return self._State(self.operand)


class AvgAgg(Aggregate):
    name = "AVG"

    class _State(AggregateState):
        def __init__(self, operand: Expression) -> None:
            self.operand = operand
            self._fn = operand.compiled()
            self.total: Any = 0
            self.count = 0

        def step(self, row: Row) -> None:
            value = self._fn(row)
            if value is None:
                return
            self.total += value
            self.count += 1

        def final(self) -> Any:
            return None if self.count == 0 else self.total / self.count

        def merge(self, other: AggregateState) -> None:
            self.total += other.total
            self.count += other.count

        def partial(self) -> dict:
            return {"total": self.total, "count": self.count}

        def fold_partial(self, partial: dict) -> None:
            self.total += partial["total"]
            self.count += partial["count"]

    def create(self) -> AggregateState:
        if self.operand is None:
            raise QueryError("AVG requires an operand")
        return self._State(self.operand)


class _ExtremeAgg(Aggregate):
    better: Callable[[Any, Any], bool]

    class _State(AggregateState):
        def __init__(self, operand: Expression,
                     better: Callable[[Any, Any], bool]) -> None:
            self.operand = operand
            self._fn = operand.compiled()
            self.better = better
            self.current: Any = None

        def step(self, row: Row) -> None:
            value = self._fn(row)
            if value is None:
                return
            if self.current is None or self.better(value, self.current):
                self.current = value

        def final(self) -> Any:
            return self.current

        def merge(self, other: AggregateState) -> None:
            self._absorb(other.current)

        def partial(self) -> dict:
            return {"current": self.current}

        def fold_partial(self, partial: dict) -> None:
            self._absorb(partial["current"])

        def _absorb(self, value: Any) -> None:
            if value is None:
                return
            if self.current is None or self.better(value, self.current):
                self.current = value

    def create(self) -> AggregateState:
        if self.operand is None:
            raise QueryError(f"{self.name} requires an operand")
        return self._State(self.operand, type(self).better)


class MinAgg(_ExtremeAgg):
    name = "MIN"
    better = staticmethod(lambda a, b: a < b)


class MaxAgg(_ExtremeAgg):
    name = "MAX"
    better = staticmethod(lambda a, b: a > b)


def COUNT(operand: Any = None) -> CountAgg:  # noqa: N802
    return CountAgg(wrap(operand) if operand is not None else None)


def SUM(operand: Any) -> SumAgg:  # noqa: N802
    return SumAgg(wrap(operand))


def AVG(operand: Any) -> AvgAgg:  # noqa: N802
    return AvgAgg(wrap(operand))


def MIN(operand: Any) -> MinAgg:  # noqa: N802
    return MinAgg(wrap(operand))


def MAX(operand: Any) -> MaxAgg:  # noqa: N802
    return MaxAgg(wrap(operand))


# -- window functions ----------------------------------------------------------------


class WindowFunction:
    """Base for window functions applied by the executor's window operator."""

    def compute(self, rows: list[Row], index: int) -> Any:
        raise NotImplementedError


class Lag(WindowFunction):
    """``LAG(expr, offset, default) OVER (ORDER BY ...)`` — the window
    function of the paper's Q6."""

    def __init__(self, operand: Expression, offset: int = 1,
                 default: Optional[Expression] = None) -> None:
        self.operand = operand
        self.offset = offset
        self.default = default

    def compute(self, rows: list[Row], index: int) -> Any:
        source = index - self.offset
        if source < 0:
            if self.default is None:
                return None
            return self.default.evaluate(rows[index])
        return self.operand.evaluate(rows[source])


def LAG(operand: Any, offset: int = 1, default: Any = None) -> Lag:  # noqa: N802
    default_expr = wrap(default) if default is not None else None
    return Lag(wrap(operand), offset, default_expr)
