"""The explicit logical plan behind :class:`~repro.engine.query.Query`.

A chained query builds a linear :class:`LogicalPlan` — a source node
followed by operator nodes — which then passes through **rewrite
rules** before execution:

1. *predicate pushdown* (:class:`PushdownRule`): a leading WHERE over a
   JSON_TABLE view turns into JSON_EXISTS document pre-filters on the
   scan (paper §6.3); the WHERE stays — document-level filtering admits
   a superset;
2. *scatter-gather* (:class:`ScatterRule`): over a sharded source
   (anything exposing ``shard_plan()``), the maximal
   scan→filter→project[→group-by] prefix fuses into one
   :class:`ScatterNode` that runs per-shard morsel pipelines on a
   worker pool and merges partial aggregate states; partition pruning
   is decided **at rewrite time** from the per-shard DataGuides, so
   even a plain ``explain()`` shows ``shards=N pruned=M``;
3. *IMC projection pushdown* (:class:`IMCScanRule`): a scan of a table
   bound into an :class:`~repro.imc.store.IMCStore` whose
   scan→[filter…]→(project | group-by) prefix references a provable
   column set becomes an :class:`IMCScanNode` that materializes **only
   those columns** through the columnar cache (paper §5.2) — the
   ``imc.columns_read`` counter advancing by exactly that count is the
   observable contract in ``EXPLAIN ANALYZE``.

Rewrites preserve semantics by construction: pushdown keeps the
residual predicate, the scatter prefix computes exactly what the fused
nodes would (the differential suite asserts row parity), and pruning
only skips shards whose guide proves no document can match.

Every node renders the same ``explain()`` label the hand-wired volcano
chain printed, so plan text is stable across the refactor.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence

from repro.engine import executor
from repro.engine import scatter as scattermod
from repro.engine.expressions import Expression, WindowFunction
from repro.errors import QueryError

Row = dict


def iterate_source(source: Any) -> Iterator[Row]:
    """Open a query source: Query (subquery), table/view (``scan()``),
    callable, or iterable of rows."""
    from repro.engine.query import Query
    if isinstance(source, Query):
        return iter(source.rows())
    if hasattr(source, "scan"):  # Table and View both expose scan()
        return source.scan()
    if callable(source):
        return source()
    from typing import Iterable
    if isinstance(source, Iterable):
        return iter(source)
    raise QueryError(f"cannot use {type(source).__name__} as a query source")


def source_name(source: Any) -> str:
    return getattr(source, "name", type(source).__name__)


class PlanNode:
    """One operator of a linear logical plan."""

    #: stage identifier in ``profile()`` output ("scan", "where", ...)
    op: str = "?"
    #: runs a distinct batched implementation under morsel mode
    batched: bool = False

    def label(self) -> str:
        raise NotImplementedError

    def execute(self, rows: Iterator[Row], morsel: bool) -> Iterator[Row]:
        raise NotImplementedError


class ScanNode(PlanNode):
    """Plan leaf: produce the source's rows.  ``exists_paths`` (set by
    the pushdown rewrite) pre-filters documents through JSON_EXISTS
    before row expansion."""

    op = "scan"
    batched = True

    def __init__(self, source: Any,
                 exists_paths: Optional[List[str]] = None) -> None:
        self.source = source
        self.exists_paths = exists_paths

    def label(self) -> str:
        name = source_name(self.source)
        if self.exists_paths:
            return f"SCAN {name} (pushdown)"
        return f"SCAN {name}"

    def execute(self, rows: Iterator[Row], morsel: bool) -> Iterator[Row]:
        if self.exists_paths:
            return self.source.scan_pushdown(self.exists_paths)
        return iterate_source(self.source)


class IMCScanNode(PlanNode):
    """Plan leaf: columnar scan through the table's bound
    :class:`~repro.imc.store.IMCStore`, materializing only the columns
    the query references (built by :class:`IMCScanRule`).

    The store's merged base+delta scan serves the canonical column
    values — byte-identical to row mode even right after DML — and
    for a durable table the cold path loads pinned column segments
    instead of re-extracting from OSON."""

    op = "scan"
    batched = True

    def __init__(self, source: Any, imc: Any,
                 columns: Sequence[str]) -> None:
        self.source = source
        self.imc = imc
        self.columns = list(columns)

    def label(self) -> str:
        return (f"IMC SCAN {source_name(self.source)} "
                f"[columns={', '.join(self.columns)}]")

    def execute(self, rows: Iterator[Row], morsel: bool) -> Iterator[Row]:
        return iter(self.imc.scan_rows(self.source, self.columns))


class FilterNode(PlanNode):
    op = "where"
    batched = True

    def __init__(self, predicate: Expression) -> None:
        self.predicate = predicate

    def label(self) -> str:
        return f"FILTER {self.predicate.sql()}"

    def execute(self, rows: Iterator[Row], morsel: bool) -> Iterator[Row]:
        return (executor.filter_rows_morsel(rows, self.predicate) if morsel
                else executor.filter_rows(rows, self.predicate))


class ProjectNode(PlanNode):
    op = "select"
    batched = True

    def __init__(self, outputs: Sequence) -> None:
        self.outputs = list(outputs)

    def label(self) -> str:
        rendered = ", ".join(f"{e.sql()} AS {n}" for n, e in self.outputs)
        return f"PROJECT {rendered}"

    def execute(self, rows: Iterator[Row], morsel: bool) -> Iterator[Row]:
        return (executor.project_morsel(rows, self.outputs) if morsel
                else executor.project(rows, self.outputs))


class JoinNode(PlanNode):
    op = "join"
    batched = True

    def __init__(self, other: Any, left_key: str, right_key: str,
                 how: str) -> None:
        self.other = other
        self.left_key = left_key
        self.right_key = right_key
        self.how = how

    def label(self) -> str:
        return (f"HASH JOIN ({self.how}) ON "
                f"{self.left_key} = {self.right_key}")

    def execute(self, rows: Iterator[Row], morsel: bool) -> Iterator[Row]:
        join = executor.hash_join_morsel if morsel else executor.hash_join
        return join(rows, iterate_source(self.other),
                    self.left_key, self.right_key, self.how)


class GroupNode(PlanNode):
    op = "group_by"
    batched = True

    def __init__(self, keys: Sequence, aggregates: Sequence) -> None:
        self.keys = list(keys)
        self.aggregates = list(aggregates)

    def label(self) -> str:
        keys = ", ".join(n for n, _e in self.keys) or "()"
        aggs = ", ".join(f"{a.sql()} AS {alias}"
                         for alias, a in self.aggregates)
        return f"HASH GROUP BY {keys} AGG {aggs}"

    def execute(self, rows: Iterator[Row], morsel: bool) -> Iterator[Row]:
        return (executor.group_by_morsel(rows, self.keys, self.aggregates)
                if morsel
                else executor.group_by(rows, self.keys, self.aggregates))


class WindowNode(PlanNode):
    op = "window"

    def __init__(self, alias: str, function: WindowFunction,
                 orders: Sequence) -> None:
        self.alias = alias
        self.function = function
        self.orders = list(orders)

    def label(self) -> str:
        return f"WINDOW {self.alias}"

    def execute(self, rows: Iterator[Row], morsel: bool) -> Iterator[Row]:
        return iter(executor.window(rows, self.alias, self.function,
                                    self.orders))


class SortNode(PlanNode):
    op = "order_by"

    def __init__(self, orders: Sequence) -> None:
        self.orders = list(orders)

    def label(self) -> str:
        keys = ", ".join(e.sql() + (" DESC" if d else "")
                         for e, d in self.orders)
        return f"SORT {keys}"

    def execute(self, rows: Iterator[Row], morsel: bool) -> Iterator[Row]:
        return iter(executor.sort(rows, self.orders))


class DistinctNode(PlanNode):
    op = "distinct"

    def label(self) -> str:
        return "DISTINCT"

    def execute(self, rows: Iterator[Row], morsel: bool) -> Iterator[Row]:
        return executor.distinct(rows)


class LimitNode(PlanNode):
    op = "limit"

    def __init__(self, count: int) -> None:
        self.count = count

    def label(self) -> str:
        return f"LIMIT {self.count}"

    def execute(self, rows: Iterator[Row], morsel: bool) -> Iterator[Row]:
        return executor.limit(rows, self.count)


class UnionAllNode(PlanNode):
    op = "union_all"

    def __init__(self, other: Any) -> None:
        self.other = other

    def label(self) -> str:
        return "UNION ALL"

    def execute(self, rows: Iterator[Row], morsel: bool) -> Iterator[Row]:
        return executor.union_all([rows, iterate_source(self.other)])


class ScatterNode(PlanNode):
    """A fused scan→filter→project[→group-by] prefix executed
    shard-parallel with partition pruning (built by
    :class:`ScatterRule`; execution in :mod:`repro.engine.scatter`).

    Pruning decisions are taken at construction from per-shard
    DataGuides, so the plan text itself reports how many shards the
    query will touch.  Cooperative-cancellation hooks (sessions'
    deadline checks) and the shard-failure policy are injected per
    execution via ``hook`` / ``policy``; ``last_degraded`` records the
    degraded marker of the most recent execution (None when the answer
    was complete), which :meth:`Query.rows` surfaces to callers.
    """

    op = "scan"
    batched = True

    def __init__(self, info: scattermod.ShardPlanInfo,
                 predicate: Optional[Expression],
                 outputs: Optional[Sequence],
                 group: Optional[tuple],
                 selected: Sequence[bool],
                 hook: Optional[Callable[[Row], None]] = None,
                 policy: Optional[scattermod.ScatterPolicy] = None
                 ) -> None:
        self.info = info
        self.predicate = predicate
        self.outputs = outputs
        self.group = group
        self.selected = list(selected)
        self.hook = hook
        self.policy = policy
        self.last_degraded = None

    @property
    def shards_scanned(self) -> int:
        return sum(1 for keep in self.selected if keep)

    @property
    def shards_pruned(self) -> int:
        return len(self.selected) - self.shards_scanned

    def label(self) -> str:
        parts = [f"SCATTER SCAN {self.info.name} "
                 f"[shards={len(self.selected)} "
                 f"scanned={self.shards_scanned} "
                 f"pruned={self.shards_pruned}]"]
        if self.predicate is not None:
            parts.append(f"FILTER {self.predicate.sql()}")
        if self.outputs is not None:
            rendered = ", ".join(f"{e.sql()} AS {n}"
                                 for n, e in self.outputs)
            parts.append(f"PROJECT {rendered}")
        if self.group is not None:
            keys, aggregates = self.group
            key_names = ", ".join(n for n, _e in keys) or "()"
            aggs = ", ".join(f"{a.sql()} AS {alias}"
                             for alias, a in aggregates)
            parts.append(f"GATHER GROUP BY {key_names} AGG {aggs}")
        return " -> ".join(parts)

    def execute(self, rows: Iterator[Row], morsel: bool) -> Iterator[Row]:
        out = scattermod.execute_scatter(
            self.info, self.selected, self.predicate, self.outputs,
            self.group, morsel, hook=self.hook, policy=self.policy)
        self.last_degraded = getattr(out, "degraded", None)
        return iter(out)


class LogicalPlan:
    """A rewritten, executable plan: a source node plus operator tail."""

    def __init__(self, nodes: List[PlanNode]) -> None:
        self.nodes = nodes

    def explain_lines(self) -> List[str]:
        return [node.label() for node in self.nodes]

    def degraded(self):
        """The degraded marker of the last execution (None when the
        plan is not a scatter or the answer was complete)."""
        head = self.nodes[0]
        if isinstance(head, ScatterNode):
            return head.last_degraded
        return None

    def execute(self, morsel: bool,
                hook: Optional[Callable[[Row], None]] = None,
                scatter_policy: Optional[scattermod.ScatterPolicy] = None
                ) -> Iterator[Row]:
        """Lazy whole-plan execution.  ``hook`` (cancellation) fires on
        every source row and, when operators exist, every result row —
        the contract :meth:`Query.instrumented` documents."""
        head, tail = self.nodes[0], self.nodes[1:]
        if isinstance(head, ScatterNode):
            head.hook = hook
            if scatter_policy is not None:
                head.policy = scatter_policy
        rows = head.execute(iter(()), morsel)
        if hook is not None and not isinstance(head, ScatterNode):
            rows = _hooked(rows, hook)
        for node in tail:
            rows = node.execute(rows, morsel)
        if hook is not None and tail:
            rows = _hooked(rows, hook)
        elif hook is not None and isinstance(head, ScatterNode):
            rows = _hooked(rows, hook)
        return rows


def _hooked(rows: Iterator[Row],
            hook: Callable[[Row], None]) -> Iterator[Row]:
    for row in rows:
        hook(row)
        yield row


# -- building ---------------------------------------------------------------


def build_plan(source: Any, ops: Sequence[tuple]) -> LogicalPlan:
    """Translate a query's chained operations into plan nodes (no
    rewrites yet)."""
    nodes: List[PlanNode] = [ScanNode(source)]
    for op, args in ops:
        if op == "where":
            nodes.append(FilterNode(args[0]))
        elif op == "select":
            nodes.append(ProjectNode(args[0]))
        elif op == "join":
            nodes.append(JoinNode(*args))
        elif op == "group_by":
            nodes.append(GroupNode(args[0], args[1]))
        elif op == "window":
            nodes.append(WindowNode(args[0], args[1], args[2]))
        elif op == "order_by":
            nodes.append(SortNode(args[0]))
        elif op == "distinct":
            nodes.append(DistinctNode())
        elif op == "limit":
            nodes.append(LimitNode(args[0]))
        elif op == "union_all":
            nodes.append(UnionAllNode(args[0]))
        else:
            raise QueryError(f"unknown operation {op!r}")
    return LogicalPlan(nodes)


# -- rewrite rules -----------------------------------------------------------


class PushdownRule:
    """Leading WHERE over a pushdown-capable view → JSON_EXISTS
    document pre-filters on the scan (§6.3).  Sound because document
    filtering admits a superset and the residual WHERE remains."""

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        nodes = plan.nodes
        if len(nodes) < 2 or not isinstance(nodes[1], FilterNode):
            return plan
        scan = nodes[0]
        if not isinstance(scan, ScanNode):
            return plan
        view = scan.source
        if (not hasattr(view, "scan_pushdown")
                or not hasattr(view, "pushdown_path")):
            return plan
        paths = []
        for column, op, values in scattermod.pushable_conjuncts(
                nodes[1].predicate):
            rendered = view.pushdown_path(column, op, values)
            if rendered is not None:
                paths.append(rendered)
        if not paths:
            return plan
        return LogicalPlan([ScanNode(view, exists_paths=paths)]
                           + nodes[1:])


class ScatterRule:
    """Sharded source → fuse the maximal
    scan→filter→project[→group-by] prefix into a :class:`ScatterNode`
    with rewrite-time partition pruning.

    Applies only to a plain scan of a source exposing ``shard_plan()``
    (pushdown and scatter are mutually exclusive: JSON_TABLE views that
    shard route their pushdown inside ``shard_plan``'s streams).
    """

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        nodes = plan.nodes
        scan = nodes[0]
        if not isinstance(scan, ScanNode) or scan.exists_paths:
            return plan
        plan_fn = getattr(scan.source, "shard_plan", None)
        if plan_fn is None:
            return plan
        info = plan_fn()
        if info is None or not info.shards:
            return plan
        predicate: Optional[Expression] = None
        outputs: Optional[Sequence] = None
        group: Optional[tuple] = None
        consumed = 0
        for node in nodes[1:]:
            if (isinstance(node, FilterNode) and predicate is None
                    and outputs is None and group is None):
                predicate = node.predicate
            elif (isinstance(node, ProjectNode) and outputs is None
                    and group is None):
                outputs = node.outputs
            elif isinstance(node, GroupNode) and group is None:
                group = (node.keys, node.aggregates)
            else:
                break
            consumed += 1
        conjuncts = (scattermod.pushable_conjuncts(predicate)
                     if predicate is not None else [])
        selected = scattermod.prune_shards(info, conjuncts)
        fused = ScatterNode(info, predicate, outputs, group, selected)
        return LogicalPlan([fused] + nodes[1 + consumed:])


def _collect_columns(expr: Any, out: set) -> bool:
    """Record every column ``expr`` reads into ``out``.  Returns False
    for any node shape this walker does not fully understand — the
    caller then refuses to narrow the scan (conservative by design:
    an unprovable column set must never drop a column a row-mode
    evaluation would have seen)."""
    from repro.engine import expressions as E
    if isinstance(expr, E.Literal):
        return True
    if isinstance(expr, E.Col):
        out.add(expr.name)
        return True
    if isinstance(expr, E.Aliased):
        return _collect_columns(expr.inner, out)
    if isinstance(expr, (E.Arithmetic, E.Comparison)):
        return (_collect_columns(expr.left, out)
                and _collect_columns(expr.right, out))
    if isinstance(expr, (E.And, E.Or)):
        return all(_collect_columns(part, out) for part in expr.parts)
    if isinstance(expr, E.Not):
        return _collect_columns(expr.inner, out)
    if isinstance(expr, (E.InList, E.Like, E.IsNull)):
        return _collect_columns(expr.operand, out)
    if isinstance(expr, E.Func):
        return all(_collect_columns(arg, out) for arg in expr.args)
    if isinstance(expr, (E.JsonValueExpr, E.JsonExistsExpr)):
        return _collect_columns(expr.column, out)
    return False


class IMCScanRule:
    """Table bound into an IMC columnar cache + a shaping prefix →
    scan only the referenced columns through the cache (§5.2).

    Fires on a ``scan [filter]* (project | group-by)`` prefix whose
    expressions :func:`_collect_columns` fully resolves.  The shaping
    terminator is required: without a PROJECT/GROUP BY the caller sees
    whole rows, so a narrowed scan would change the answer.  Only the
    scan node is replaced — the filter/project/group nodes stay and
    run unchanged over rows that carry exactly the columns they read.
    """

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        nodes = plan.nodes
        scan = nodes[0]
        if not isinstance(scan, ScanNode) or scan.exists_paths:
            return plan
        source = scan.source
        imc = getattr(source, "imc", None)
        if imc is None or not hasattr(source, "has_column"):
            return plan
        needed: set = set()
        shaped = False
        for node in nodes[1:]:
            if isinstance(node, FilterNode):
                if not _collect_columns(node.predicate, needed):
                    return plan
                continue
            if isinstance(node, ProjectNode):
                if not all(_collect_columns(expr, needed)
                           for _name, expr in node.outputs):
                    return plan
                shaped = True
            elif isinstance(node, GroupNode):
                if not all(_collect_columns(expr, needed)
                           for _name, expr in node.keys):
                    return plan
                for _alias, aggregate in node.aggregates:
                    operand = getattr(aggregate, "operand", None)
                    if operand is not None \
                            and not _collect_columns(operand, needed):
                        return plan
                shaped = True
            break
        if not shaped:
            return plan
        columns = sorted(needed)
        # COUNT(*)-only prefixes reference nothing: a zero-column scan
        # cannot carry the row count, so leave those to the row path
        if not columns or not all(source.has_column(name)
                                  for name in columns):
            return plan
        return LogicalPlan([IMCScanNode(source, imc, columns)]
                           + nodes[1:])


# scatter first: a sharded source scatters (per-shard pruning subsumes
# the document pre-filter); pushdown then no-ops because the head is no
# longer a plain ScanNode.  IMC narrowing runs last for the same
# reason — it only fires on a plain unsharded, un-pushed-down table
# scan, which is exactly what the earlier rules leave untouched.
_RULES = (ScatterRule(), PushdownRule(), IMCScanRule())


def rewrite(plan: LogicalPlan) -> LogicalPlan:
    for rule in _RULES:
        plan = rule.apply(plan)
    return plan
