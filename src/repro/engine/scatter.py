"""Scatter-gather execution over sharded sources, with partition pruning.

A source that can execute shard-parallel exposes ``shard_plan()``
returning a :class:`ShardPlanInfo`: one row stream per shard (each
pinned to that shard's snapshot), the shard's covering DataGuide, and
the column→path / routing metadata the pruner needs.  The planner's
scatter rewrite (:mod:`repro.engine.plan`) fuses the leading
scan→filter→project→group-by prefix of a query into one scatter node;
this module supplies its two halves:

* :func:`prune_shards` — decide statically, from per-shard DataGuides,
  which shards **cannot** contribute rows to a pushed-down predicate
  and skip them entirely.  Three sound rules (see DESIGN §10.4):
  path absence, min/max zone intervals, routing-hash equality.  Every
  rule errs toward scanning: a shard is skipped only when its guide
  *proves* no document can satisfy the predicate.
* :func:`execute_scatter` — run the fused per-shard pipeline (the 1k-row
  morsel executor) on a worker pool, one task per surviving shard, and
  gather: group-by states merge through
  :func:`~repro.engine.executor.gather_group_partials` in shard-index
  order (deterministic output order), plain row pipelines concatenate
  in shard-index order.

``engine.scatter.shards_scanned`` / ``engine.scatter.shards_pruned``
count every scatter execution and surface per-query in EXPLAIN ANALYZE
as metric deltas.

Fault tolerance (:class:`ScatterPolicy`): each shard worker retries
transient faults under the seeded backoff schedule (retry time charged
to the query's ``CancelToken`` deadline via the token's lookahead
check), reports outcomes to the store's health board, and the gather
applies the caller's ``on_shard_failure`` policy — ``"fail"`` sets the
shared abort flag so in-flight siblings stop at their next row and the
first failure propagates typed; ``"partial"`` returns the surviving
shards' rows as :class:`DegradedRows` carrying an explicit
:class:`~repro.errors.DegradedResult` marker (never silent:
``engine.scatter.shards_failed`` rides EXPLAIN ANALYZE next to
``shards_scanned``/``shards_pruned``).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import (TYPE_CHECKING, Any, Callable, Dict, Iterator, List,
                    Optional, Sequence, Tuple)

if TYPE_CHECKING:  # imported lazily to stay out of the package cycle
    from repro.core.dataguide.guide import DataGuide

from repro.engine import executor
from repro.engine.expressions import (Aggregate, And, Col, Comparison,
                                      Expression, InList, Literal)
from repro.errors import (DegradedResult, RETRYABLE_FAULTS,
                          ShardUnavailable)
from repro.obs import clock as _clock

Row = dict

#: comparison spellings the interval pruner understands
_INTERVAL_OPS = ("=", "<", "<=", ">", ">=")


def pushable_conjuncts(expression: Expression
                       ) -> List[Tuple[str, str, list]]:
    """Extract ``(column, op, literal values)`` conjuncts from a WHERE
    tree — the decomposable part shared by JSON_EXISTS pushdown and
    partition pruning.  Non-decomposable parts are simply not pushed;
    the original predicate always still runs."""
    if isinstance(expression, And):
        out: List[Tuple[str, str, list]] = []
        for part in expression.parts:
            out.extend(pushable_conjuncts(part))
        return out
    if (isinstance(expression, Comparison)
            and isinstance(expression.left, Col)
            and isinstance(expression.right, Literal)
            and expression.right.value is not None):
        return [(expression.left.name, expression.op,
                 [expression.right.value])]
    if isinstance(expression, InList) and isinstance(expression.operand,
                                                    Col):
        return [(expression.operand.name, "=", list(expression.values))]
    return []


class ShardInput:
    """One shard's contribution to a scatter plan: a factory for its
    pinned row stream plus the DataGuide covering that stream."""

    __slots__ = ("index", "rows", "guide")

    def __init__(self, index: int, rows: Callable[[], Iterator[Row]],
                 guide: DataGuide) -> None:
        self.index = index
        self.rows = rows
        self.guide = guide


class ShardPlanInfo:
    """Everything the scatter rewrite needs from a sharded source.

    ``prune_path`` maps an output column name to the DataGuide path its
    values come from (``$.col`` for table columns, the JSON_TABLE
    absolute path with ``[*]`` steps dropped for view columns), or None
    when the column's provenance is unknown — that column then
    contributes nothing to pruning.  ``shard_of_value`` is the router's
    placement function when a routing field exists.  ``health`` is the
    source store's :class:`~repro.storage.health.ShardHealthBoard`
    (None for unsharded-compatible callers): scatter workers consult it
    fail-fast and report read outcomes to it, so read- and write-side
    failures feed one state machine.
    """

    __slots__ = ("name", "shards", "prune_path", "routing_field",
                 "shard_of_value", "health")

    def __init__(self, name: str, shards: Sequence[ShardInput],
                 prune_path: Callable[[str], Optional[str]],
                 routing_field: Optional[str] = None,
                 shard_of_value: Optional[Callable[[Any], Optional[int]]]
                 = None, health: Optional[Any] = None) -> None:
        self.name = name
        self.shards = list(shards)
        self.prune_path = prune_path
        self.routing_field = routing_field
        self.shard_of_value = shard_of_value
        self.health = health


# -- pruning ---------------------------------------------------------------


def _scalar_interval(guide: "DataGuide", path: str
                     ) -> Optional[Tuple[str, Any, Any]]:
    """The proven value interval of a scalar path, or None when the
    guide cannot vouch for one (heterogeneous types, missing bounds).

    Mirrors the zone-stats gate in :func:`repro.storage.manifest
    .zone_stats_from_builder`: only ``number``/``string`` entries with
    type-correct bounds count.  A ``number`` entry is provably
    homogeneous (any type mixture generalizes to string), so its
    interval is exact.  A ``string`` entry may mask a mixed-type path
    whose extremes were coerced through ``str()`` — but the coerced
    bounds still cover the ``str()`` image of *every* stored value, so
    they form a valid superset interval for string literals; the
    caller (:func:`_interval_can_match`) must simply never prune a
    non-string literal against it.
    """
    entry = None
    for candidate in guide.entries():
        if candidate.path != path:
            continue
        if candidate.kind != "scalar":
            # the path also occurs as object/array: values exist the
            # interval does not describe — no proof possible
            return None
        entry = candidate
    if entry is None or entry.scalar_type not in ("number", "string"):
        return None
    expected = str if entry.scalar_type == "string" else (int, float)
    low, high = entry.min_value, entry.max_value
    if (not isinstance(low, expected) or not isinstance(high, expected)
            or isinstance(low, bool) or isinstance(high, bool)):
        return None
    return entry.scalar_type, low, high


def _typed(scalar_type: str, value: Any) -> bool:
    if isinstance(value, bool):
        return False
    if scalar_type == "string":
        return isinstance(value, str)
    return isinstance(value, (int, float))


def _interval_can_match(interval: Tuple[str, Any, Any], op: str,
                        values: Sequence[Any]) -> bool:
    """Could any value inside ``[low, high]`` satisfy ``op value``?
    Unknown operators or type-mismatched literals answer True (never
    prune on what we cannot reason about).  For equality the rules are
    asymmetric, because only ``number`` entries are provably
    homogeneous:

    * number entry, string literal — cannot equal any stored value,
      so ``=`` prunes;
    * number entry, bool literal — the engine compares booleans
      numerically (``1 = TRUE`` matches), so the literal prunes by its
      0/1 image;
    * string entry, non-string literal — the entry may mask a
      mixed-type path (heterogeneous values generalize to string and
      coerce their extremes through ``str()``), so a masked number or
      bool could equal the literal: always scan.
    """
    scalar_type, low, high = interval
    if op == "=":
        for value in values:
            if isinstance(value, bool):
                if scalar_type == "string" or low <= int(value) <= high:
                    return True
                continue
            if not _typed(scalar_type, value):
                if scalar_type == "string":
                    return True
                continue
            if low <= value <= high:
                return True
        return False
    if op not in _INTERVAL_OPS or len(values) != 1:
        return True
    value = values[0]
    if not _typed(scalar_type, value):
        return True
    if op == "<":
        return low < value
    if op == "<=":
        return low <= value
    if op == ">":
        return high > value
    return high >= value                     # ">="


def shard_can_match(guide: "DataGuide", path: str, op: str,
                    values: Sequence[Any]) -> bool:
    """Could any document in a shard covered by ``guide`` satisfy the
    conjunct?  False only under proof:

    * **path absence** — no entry of any kind at ``path`` means no
      document in the shard has the path at all; the column scans as
      NULL and every comparison drops the row (SQL three-valued logic);
    * **interval miss** — the path's proven min/max interval cannot
      contain a satisfying value.

    The guide is captured *with* the shard snapshot and can only run
    ahead of it (extra paths, wider ranges — see
    :meth:`~repro.storage.store.CollectionStore.snapshot_with_guide`),
    so both proofs hold for the stream being pruned.
    """
    if not any(entry.path == path for entry in guide.entries()):
        return False
    interval = _scalar_interval(guide, path)
    if interval is None:
        return True
    return _interval_can_match(interval, op, values)


def prune_shards(info: ShardPlanInfo,
                 conjuncts: Sequence[Tuple[str, str, list]]
                 ) -> List[bool]:
    """Per-shard keep/skip decisions for a pushed-down predicate.

    Returns ``selected[i]`` per shard.  A shard survives unless some
    conjunct proves it empty of matches — conjuncts are AND-ed, so any
    single impossible conjunct suffices.  Routing equality additionally
    restricts to the shards the routing values hash to: documents
    *with* the routing field provably live there (inserts route by
    hash, updates refuse to move a document's routing hash), and
    documents without it cannot match an equality on it.
    """
    selected = [True] * len(info.shards)
    routed: Optional[set] = None
    for column, op, values in conjuncts:
        if (op == "=" and values and info.routing_field == column
                and info.shard_of_value is not None):
            placed = {info.shard_of_value(v) for v in values}
            if None not in placed:  # every literal routable
                routed = placed if routed is None else routed & placed
        path = info.prune_path(column)
        if path is None:
            continue
        for shard in info.shards:
            if selected[shard.index] and not shard_can_match(
                    shard.guide, path, op, values):
                selected[shard.index] = False
    if routed is not None:
        for shard in info.shards:
            if shard.index not in routed:
                selected[shard.index] = False
    return selected


# -- execution -------------------------------------------------------------


#: what a partial-read policy may degrade over: retryable faults plus
#: the health board's fail-fast refusal.  Semantic errors (QueryError,
#: arithmetic) are never degradable — they propagate unchanged, so a
#: sharded query and its unsharded twin fail identically.
DEGRADABLE_FAULTS = RETRYABLE_FAULTS + (ShardUnavailable,)

_FAILED_STATE = "failed"  # mirrors repro.storage.health.FAILED


class ScatterPolicy:
    """How a scatter execution treats shard failure.

    ``on_failure="fail"`` (the default) propagates the first shard
    failure as its typed error after aborting in-flight siblings;
    ``"partial"`` degrades instead: surviving shards' rows return as
    :class:`DegradedRows` with an explicit marker.  ``backoff`` is the
    seeded per-shard retry schedule; ``token`` (the serve layer's
    ``CancelToken``, duck-typed) charges retry waits against the query
    deadline via ``token.check(ahead_s)``.
    """

    __slots__ = ("on_failure", "backoff", "token")

    def __init__(self, on_failure: str = "fail",
                 backoff: Optional[_clock.BackoffPolicy] = None,
                 token: Optional[Any] = None) -> None:
        if on_failure not in ("fail", "partial"):
            raise ValueError(
                f"on_shard_failure must be 'fail' or 'partial', got "
                f"{on_failure!r}")
        self.on_failure = on_failure
        self.backoff = backoff or _clock.BackoffPolicy()
        self.token = token


class DegradedRows(list):
    """A scatter result that is explicitly *not* the full answer: a
    plain row list (so every downstream consumer works unchanged) with
    a :class:`~repro.errors.DegradedResult` marker naming the missing
    shards.  Callers that refuse degraded data do
    ``raise rows.degraded``."""

    degraded: Optional[DegradedResult] = None


class _ScatterAbort(Exception):
    """Internal: a sibling worker failed and set the abort flag; this
    worker stopped early.  Never escapes :func:`execute_scatter`."""


def worker_count(shards: int) -> int:
    """Worker-pool width: one thread per surviving shard, capped by the
    machine (``REPRO_SHARD_WORKERS`` overrides for benchmarks)."""
    override = os.environ.get("REPRO_SHARD_WORKERS")
    if override and override.isdigit() and int(override) > 0:
        return min(shards, int(override))
    return max(1, min(shards, os.cpu_count() or 1))


def _shard_pipeline(shard: ShardInput, predicate: Optional[Expression],
                    outputs: Optional[Sequence], morsel: bool,
                    hook: Optional[Callable[[Row], None]]
                    ) -> Iterator[Row]:
    rows: Iterator[Row] = shard.rows()
    if hook is not None:
        rows = _hooked(rows, hook)
    if predicate is not None:
        rows = (executor.filter_rows_morsel(rows, predicate) if morsel
                else executor.filter_rows(rows, predicate))
    if outputs is not None:
        rows = (executor.project_morsel(rows, outputs) if morsel
                else executor.project(rows, outputs))
    return rows


def _hooked(rows: Iterator[Row],
            hook: Callable[[Row], None]) -> Iterator[Row]:
    for row in rows:
        hook(row)
        yield row


def _backoff_wait(policy: ScatterPolicy, key: str, attempt: int) -> None:
    """Sleep out one backoff step, charging the wait against the query
    deadline *before* sleeping: the token's lookahead check raises
    ``QueryTimeout`` when the wait would overrun, so a retry never
    sleeps past a deadline it cannot meet."""
    delay = policy.backoff.delay_ms(key, attempt) / 1000.0
    token = policy.token
    if token is not None:
        token.check(delay)
    _clock.sleep(delay)
    if token is not None:
        token.check()


def execute_scatter(info: ShardPlanInfo, selected: Sequence[bool],
                    predicate: Optional[Expression],
                    outputs: Optional[Sequence],
                    group: Optional[Tuple[Sequence, Sequence[Tuple[str,
                                                                   Aggregate]]]],
                    morsel: bool,
                    hook: Optional[Callable[[Row], None]] = None,
                    policy: Optional[ScatterPolicy] = None) -> List[Row]:
    """Run the fused scan→filter→project[→group-by] prefix over the
    surviving shards on a thread pool and gather.

    Per shard the pipeline is exactly the single-stream morsel (or row)
    executor; with a fused group-by each worker produces **partial**
    aggregate states and the gather merges them in shard-index order
    (:func:`~repro.engine.executor.gather_group_partials`) before
    finalizing — row-parity with the unsharded plan is asserted by the
    differential suite.  Cooperative-cancellation hooks run inside the
    workers (every source row), so a session deadline aborts mid-scan.

    Failure handling follows ``policy`` (:class:`ScatterPolicy`):
    transient faults retry per shard under the seeded backoff schedule
    with outcomes reported to the health board; exhausted retries
    surface as :class:`ShardUnavailable`.  Under ``"fail"`` the first
    shard failure sets a shared abort flag — in-flight siblings stop at
    their next row instead of running to completion behind the
    propagated error — and re-raises typed.  Under ``"partial"``
    degradable failures are collected and the surviving shards' rows
    return as :class:`DegradedRows` with an explicit marker.  Semantic
    errors always propagate unchanged under either policy.
    """
    from repro.obs import metrics as _obs_metrics

    policy = policy or ScatterPolicy()
    live = [shard for shard in info.shards if selected[shard.index]]
    _obs_metrics.counter("engine.scatter.shards_scanned").inc(len(live))
    _obs_metrics.counter("engine.scatter.shards_pruned").inc(
        len(info.shards) - len(live))
    retries = _obs_metrics.counter("engine.scatter.retries")
    shards_failed = _obs_metrics.counter("engine.scatter.shards_failed")
    degraded_results = _obs_metrics.counter(
        "engine.scatter.degraded_results")
    board = info.health

    if group is not None:
        keys, aggregates = group

        def run(shard: ShardInput,
                guard: Optional[Callable[[Row], None]]) -> dict:
            return executor.partial_group_by(
                _shard_pipeline(shard, predicate, outputs, morsel,
                                guard),
                keys, aggregates, morsel=morsel)
    else:
        def run(shard: ShardInput,
                guard: Optional[Callable[[Row], None]]) -> list:
            return list(_shard_pipeline(shard, predicate, outputs,
                                        morsel, guard))

    retry_counts: Dict[int, int] = {}  # per-shard keys: no lock needed

    def run_with_retry(shard: ShardInput,
                       guard: Optional[Callable[[Row], None]]) -> Any:
        if board is not None and not board.admit(shard.index):
            raise ShardUnavailable("read refused", shard_index=shard.index,
                                   state=board.state(shard.index))
        key = f"{info.name}:{shard.index}"
        attempts = max(1, policy.backoff.max_attempts)
        for attempt in range(attempts):
            try:
                result = run(shard, guard)
            except RETRYABLE_FAULTS as exc:
                state = (board.record_failure(shard.index)
                         if board is not None else "")
                if state == _FAILED_STATE or attempt + 1 >= attempts:
                    raise ShardUnavailable(
                        f"scan failed after {attempt + 1} attempt(s): "
                        f"{exc}", shard_index=shard.index,
                        state=state) from exc
                retries.inc()
                retry_counts[shard.index] = retry_counts.get(
                    shard.index, 0) + 1
                _backoff_wait(policy, key, attempt)
            else:
                if board is not None:
                    board.record_success(shard.index)
                return result

    partial = policy.on_failure == "partial"
    results_by_index: Dict[int, Any] = {}
    failures: Dict[int, BaseException] = {}

    if len(live) <= 1:
        for shard in live:
            try:
                results_by_index[shard.index] = run_with_retry(shard,
                                                               hook)
            except DEGRADABLE_FAULTS as exc:
                if not partial:
                    shards_failed.inc()
                    raise
                failures[shard.index] = exc
    else:
        abort = threading.Event()

        def guard_hook(row: Row) -> None:
            if abort.is_set():
                raise _ScatterAbort()
            if hook is not None:
                hook(row)

        def guarded(shard: ShardInput) -> Any:
            # the failing worker flips the abort flag itself, so
            # siblings stop at their next row — not when the ordered
            # gather finally reaches the failed future
            try:
                return run_with_retry(shard, guard_hook)
            except _ScatterAbort:
                raise
            except DEGRADABLE_FAULTS:
                if not partial:
                    abort.set()
                raise
            except BaseException:  # lint: ignore[broad-except] any worker failure (incl. SimulatedCrash / QueryTimeout, BaseExceptions) must flip the abort flag before propagating through its future
                abort.set()
                raise

        with ThreadPoolExecutor(
                max_workers=worker_count(len(live)),
                thread_name_prefix="scatter") as pool:
            futures = [(shard, pool.submit(guarded, shard))
                       for shard in live]
            propagate: Optional[BaseException] = None
            # gather in shard-index order regardless of completion order
            for shard, future in futures:
                try:
                    results_by_index[shard.index] = future.result()
                except _ScatterAbort:  # lint: ignore[silent-except] aborted behind a sibling failure; that failure surfaces from its own future below
                    pass
                except DEGRADABLE_FAULTS as exc:
                    if partial:
                        failures[shard.index] = exc
                    else:
                        propagate = exc
                        break
                except BaseException as exc:  # lint: ignore[broad-except] semantic errors, Cancelled and QueryTimeout (a BaseException) all propagate verbatim after the drain below
                    propagate = exc
                    break
            if propagate is not None:
                # drain promptly: abort is already set (the worker set
                # it), running workers bail at their next row, queued
                # ones never start
                pool.shutdown(wait=True, cancel_futures=True)
                if isinstance(propagate, DEGRADABLE_FAULTS):
                    shards_failed.inc()
                raise propagate

    if failures:
        shards_failed.inc(len(failures))
        degraded_results.inc()

    surviving = [results_by_index[shard.index] for shard in live
                 if shard.index in results_by_index]
    if group is not None:
        gathered = executor.gather_group_partials(surviving, aggregates)
        rows: List[Row] = list(executor.finalize_groups(
            gathered, keys, aggregates))
    else:
        rows = []
        for part in surviving:
            rows.extend(part)

    if failures:
        degraded = DegradedRows(rows)
        degraded.degraded = DegradedResult(
            f"partial result from {info.name}",
            shards_failed=tuple(sorted(failures)),
            retries=sum(retry_counts.values()))
        return degraded
    return rows
