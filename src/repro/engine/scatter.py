"""Scatter-gather execution over sharded sources, with partition pruning.

A source that can execute shard-parallel exposes ``shard_plan()``
returning a :class:`ShardPlanInfo`: one row stream per shard (each
pinned to that shard's snapshot), the shard's covering DataGuide, and
the column→path / routing metadata the pruner needs.  The planner's
scatter rewrite (:mod:`repro.engine.plan`) fuses the leading
scan→filter→project→group-by prefix of a query into one scatter node;
this module supplies its two halves:

* :func:`prune_shards` — decide statically, from per-shard DataGuides,
  which shards **cannot** contribute rows to a pushed-down predicate
  and skip them entirely.  Three sound rules (see DESIGN §10.4):
  path absence, min/max zone intervals, routing-hash equality.  Every
  rule errs toward scanning: a shard is skipped only when its guide
  *proves* no document can satisfy the predicate.
* :func:`execute_scatter` — run the fused per-shard pipeline (the 1k-row
  morsel executor) on a worker pool, one task per surviving shard, and
  gather: group-by states merge through
  :func:`~repro.engine.executor.gather_group_partials` in shard-index
  order (deterministic output order), plain row pipelines concatenate
  in shard-index order.

``engine.scatter.shards_scanned`` / ``engine.scatter.shards_pruned``
count every scatter execution and surface per-query in EXPLAIN ANALYZE
as metric deltas.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import (TYPE_CHECKING, Any, Callable, Iterator, List,
                    Optional, Sequence, Tuple)

if TYPE_CHECKING:  # imported lazily to stay out of the package cycle
    from repro.core.dataguide.guide import DataGuide

from repro.engine import executor
from repro.engine.expressions import (Aggregate, And, Col, Comparison,
                                      Expression, InList, Literal)

Row = dict

#: comparison spellings the interval pruner understands
_INTERVAL_OPS = ("=", "<", "<=", ">", ">=")


def pushable_conjuncts(expression: Expression
                       ) -> List[Tuple[str, str, list]]:
    """Extract ``(column, op, literal values)`` conjuncts from a WHERE
    tree — the decomposable part shared by JSON_EXISTS pushdown and
    partition pruning.  Non-decomposable parts are simply not pushed;
    the original predicate always still runs."""
    if isinstance(expression, And):
        out: List[Tuple[str, str, list]] = []
        for part in expression.parts:
            out.extend(pushable_conjuncts(part))
        return out
    if (isinstance(expression, Comparison)
            and isinstance(expression.left, Col)
            and isinstance(expression.right, Literal)
            and expression.right.value is not None):
        return [(expression.left.name, expression.op,
                 [expression.right.value])]
    if isinstance(expression, InList) and isinstance(expression.operand,
                                                    Col):
        return [(expression.operand.name, "=", list(expression.values))]
    return []


class ShardInput:
    """One shard's contribution to a scatter plan: a factory for its
    pinned row stream plus the DataGuide covering that stream."""

    __slots__ = ("index", "rows", "guide")

    def __init__(self, index: int, rows: Callable[[], Iterator[Row]],
                 guide: DataGuide) -> None:
        self.index = index
        self.rows = rows
        self.guide = guide


class ShardPlanInfo:
    """Everything the scatter rewrite needs from a sharded source.

    ``prune_path`` maps an output column name to the DataGuide path its
    values come from (``$.col`` for table columns, the JSON_TABLE
    absolute path with ``[*]`` steps dropped for view columns), or None
    when the column's provenance is unknown — that column then
    contributes nothing to pruning.  ``shard_of_value`` is the router's
    placement function when a routing field exists.
    """

    __slots__ = ("name", "shards", "prune_path", "routing_field",
                 "shard_of_value")

    def __init__(self, name: str, shards: Sequence[ShardInput],
                 prune_path: Callable[[str], Optional[str]],
                 routing_field: Optional[str] = None,
                 shard_of_value: Optional[Callable[[Any], Optional[int]]]
                 = None) -> None:
        self.name = name
        self.shards = list(shards)
        self.prune_path = prune_path
        self.routing_field = routing_field
        self.shard_of_value = shard_of_value


# -- pruning ---------------------------------------------------------------


def _scalar_interval(guide: "DataGuide", path: str
                     ) -> Optional[Tuple[str, Any, Any]]:
    """The proven value interval of a scalar path, or None when the
    guide cannot vouch for one (heterogeneous types, missing bounds).

    Mirrors the zone-stats gate in :func:`repro.storage.manifest
    .zone_stats_from_builder`: only ``number``/``string`` entries with
    type-correct bounds count.  A ``number`` entry is provably
    homogeneous (any type mixture generalizes to string), so its
    interval is exact.  A ``string`` entry may mask a mixed-type path
    whose extremes were coerced through ``str()`` — but the coerced
    bounds still cover the ``str()`` image of *every* stored value, so
    they form a valid superset interval for string literals; the
    caller (:func:`_interval_can_match`) must simply never prune a
    non-string literal against it.
    """
    entry = None
    for candidate in guide.entries():
        if candidate.path != path:
            continue
        if candidate.kind != "scalar":
            # the path also occurs as object/array: values exist the
            # interval does not describe — no proof possible
            return None
        entry = candidate
    if entry is None or entry.scalar_type not in ("number", "string"):
        return None
    expected = str if entry.scalar_type == "string" else (int, float)
    low, high = entry.min_value, entry.max_value
    if (not isinstance(low, expected) or not isinstance(high, expected)
            or isinstance(low, bool) or isinstance(high, bool)):
        return None
    return entry.scalar_type, low, high


def _typed(scalar_type: str, value: Any) -> bool:
    if isinstance(value, bool):
        return False
    if scalar_type == "string":
        return isinstance(value, str)
    return isinstance(value, (int, float))


def _interval_can_match(interval: Tuple[str, Any, Any], op: str,
                        values: Sequence[Any]) -> bool:
    """Could any value inside ``[low, high]`` satisfy ``op value``?
    Unknown operators or type-mismatched literals answer True (never
    prune on what we cannot reason about).  For equality the rules are
    asymmetric, because only ``number`` entries are provably
    homogeneous:

    * number entry, string literal — cannot equal any stored value,
      so ``=`` prunes;
    * number entry, bool literal — the engine compares booleans
      numerically (``1 = TRUE`` matches), so the literal prunes by its
      0/1 image;
    * string entry, non-string literal — the entry may mask a
      mixed-type path (heterogeneous values generalize to string and
      coerce their extremes through ``str()``), so a masked number or
      bool could equal the literal: always scan.
    """
    scalar_type, low, high = interval
    if op == "=":
        for value in values:
            if isinstance(value, bool):
                if scalar_type == "string" or low <= int(value) <= high:
                    return True
                continue
            if not _typed(scalar_type, value):
                if scalar_type == "string":
                    return True
                continue
            if low <= value <= high:
                return True
        return False
    if op not in _INTERVAL_OPS or len(values) != 1:
        return True
    value = values[0]
    if not _typed(scalar_type, value):
        return True
    if op == "<":
        return low < value
    if op == "<=":
        return low <= value
    if op == ">":
        return high > value
    return high >= value                     # ">="


def shard_can_match(guide: "DataGuide", path: str, op: str,
                    values: Sequence[Any]) -> bool:
    """Could any document in a shard covered by ``guide`` satisfy the
    conjunct?  False only under proof:

    * **path absence** — no entry of any kind at ``path`` means no
      document in the shard has the path at all; the column scans as
      NULL and every comparison drops the row (SQL three-valued logic);
    * **interval miss** — the path's proven min/max interval cannot
      contain a satisfying value.

    The guide is captured *with* the shard snapshot and can only run
    ahead of it (extra paths, wider ranges — see
    :meth:`~repro.storage.store.CollectionStore.snapshot_with_guide`),
    so both proofs hold for the stream being pruned.
    """
    if not any(entry.path == path for entry in guide.entries()):
        return False
    interval = _scalar_interval(guide, path)
    if interval is None:
        return True
    return _interval_can_match(interval, op, values)


def prune_shards(info: ShardPlanInfo,
                 conjuncts: Sequence[Tuple[str, str, list]]
                 ) -> List[bool]:
    """Per-shard keep/skip decisions for a pushed-down predicate.

    Returns ``selected[i]`` per shard.  A shard survives unless some
    conjunct proves it empty of matches — conjuncts are AND-ed, so any
    single impossible conjunct suffices.  Routing equality additionally
    restricts to the shards the routing values hash to: documents
    *with* the routing field provably live there (inserts route by
    hash, updates refuse to move a document's routing hash), and
    documents without it cannot match an equality on it.
    """
    selected = [True] * len(info.shards)
    routed: Optional[set] = None
    for column, op, values in conjuncts:
        if (op == "=" and values and info.routing_field == column
                and info.shard_of_value is not None):
            placed = {info.shard_of_value(v) for v in values}
            if None not in placed:  # every literal routable
                routed = placed if routed is None else routed & placed
        path = info.prune_path(column)
        if path is None:
            continue
        for shard in info.shards:
            if selected[shard.index] and not shard_can_match(
                    shard.guide, path, op, values):
                selected[shard.index] = False
    if routed is not None:
        for shard in info.shards:
            if shard.index not in routed:
                selected[shard.index] = False
    return selected


# -- execution -------------------------------------------------------------


def worker_count(shards: int) -> int:
    """Worker-pool width: one thread per surviving shard, capped by the
    machine (``REPRO_SHARD_WORKERS`` overrides for benchmarks)."""
    override = os.environ.get("REPRO_SHARD_WORKERS")
    if override and override.isdigit() and int(override) > 0:
        return min(shards, int(override))
    return max(1, min(shards, os.cpu_count() or 1))


def _shard_pipeline(shard: ShardInput, predicate: Optional[Expression],
                    outputs: Optional[Sequence], morsel: bool,
                    hook: Optional[Callable[[Row], None]]
                    ) -> Iterator[Row]:
    rows: Iterator[Row] = shard.rows()
    if hook is not None:
        rows = _hooked(rows, hook)
    if predicate is not None:
        rows = (executor.filter_rows_morsel(rows, predicate) if morsel
                else executor.filter_rows(rows, predicate))
    if outputs is not None:
        rows = (executor.project_morsel(rows, outputs) if morsel
                else executor.project(rows, outputs))
    return rows


def _hooked(rows: Iterator[Row],
            hook: Callable[[Row], None]) -> Iterator[Row]:
    for row in rows:
        hook(row)
        yield row


def execute_scatter(info: ShardPlanInfo, selected: Sequence[bool],
                    predicate: Optional[Expression],
                    outputs: Optional[Sequence],
                    group: Optional[Tuple[Sequence, Sequence[Tuple[str,
                                                                   Aggregate]]]],
                    morsel: bool,
                    hook: Optional[Callable[[Row], None]] = None
                    ) -> List[Row]:
    """Run the fused scan→filter→project[→group-by] prefix over the
    surviving shards on a thread pool and gather.

    Per shard the pipeline is exactly the single-stream morsel (or row)
    executor; with a fused group-by each worker produces **partial**
    aggregate states and the gather merges them in shard-index order
    (:func:`~repro.engine.executor.gather_group_partials`) before
    finalizing — row-parity with the unsharded plan is asserted by the
    differential suite.  Cooperative-cancellation hooks run inside the
    workers (every source row), so a session deadline aborts mid-scan;
    the raising shard's exception propagates from the gather.
    """
    from repro.obs import metrics as _obs_metrics

    live = [shard for shard in info.shards if selected[shard.index]]
    _obs_metrics.counter("engine.scatter.shards_scanned").inc(len(live))
    _obs_metrics.counter("engine.scatter.shards_pruned").inc(
        len(info.shards) - len(live))

    if group is not None:
        keys, aggregates = group

        def run(shard: ShardInput) -> dict:
            return executor.partial_group_by(
                _shard_pipeline(shard, predicate, outputs, morsel, hook),
                keys, aggregates, morsel=morsel)
    else:
        def run(shard: ShardInput) -> list:
            return list(_shard_pipeline(shard, predicate, outputs,
                                        morsel, hook))

    if len(live) <= 1:
        results = [run(shard) for shard in live]
    else:
        with ThreadPoolExecutor(
                max_workers=worker_count(len(live)),
                thread_name_prefix="scatter") as pool:
            futures = [pool.submit(run, shard) for shard in live]
            # gather in shard-index order regardless of completion order
            results = [future.result() for future in futures]

    if group is not None:
        keys, aggregates = group
        gathered = executor.gather_group_partials(results, aggregates)
        return list(executor.finalize_groups(gathered, keys, aggregates))
    out: List[Row] = []
    for rows in results:
        out.extend(rows)
    return out
