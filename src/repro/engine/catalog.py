"""The database catalog: tables, views and JSON search indexes by name."""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from repro.engine.query import Query
from repro.engine.table import Column, DurableTable, Table
from repro.engine.view import View
from repro.errors import CatalogError


class Database:
    """An embedded database instance.

    Holds the catalog and provides DDL-ish factory methods.  JSON search
    indexes (which embed the persistent DataGuide) are created through
    :meth:`create_json_search_index`, mirroring the paper's
    ``CREATE SEARCH INDEX ... FOR JSON``.
    """

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._views: dict[str, View] = {}
        self._indexes: dict[str, Any] = {}

    # -- tables ------------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[Column],
                     durable: Optional[str] = None,
                     fs: Optional[Any] = None,
                     shards: Optional[int] = None,
                     routing_field: Optional[str] = None) -> Table:
        """Create a table; with ``durable=<directory>`` its rows are
        backed by a crash-safe :class:`~repro.storage.store
        .CollectionStore` in that directory.  Opening an existing
        directory restores the surviving rows through verified recovery
        (report on ``table.recovery``); ``fs`` injects a file system
        (the fault-injection harness or an in-memory one).

        ``shards=N`` partitions the durable store into N hash shards
        (:class:`~repro.storage.shard.ShardedStore`): DML fans out over
        per-shard commit pipelines and queries scatter-gather with
        partition pruning.  ``routing_field`` names the column whose
        value hashes to a document's home shard (equality predicates on
        it then prune to one shard); omitted, documents place
        round-robin.  Reopening a sharded directory with a different
        shard count or routing field is an error.
        """
        if name in self._tables or name in self._views:
            raise CatalogError(f"object {name!r} already exists")
        if shards is not None and durable is None:
            raise CatalogError("shards= requires durable= (a directory)")
        if durable is None:
            table: Table = Table(name, columns)
        elif shards is not None:
            from repro.storage.shard import ShardedStore
            store: Any = ShardedStore.open_or_create(
                durable, shards=shards, fs=fs, routing_field=routing_field)
            table = DurableTable(name, columns, store)
        else:
            # imported lazily: the engine stays usable (and importable)
            # without the storage subsystem in purely transient runs
            from repro.storage.store import CollectionStore
            store = CollectionStore.open_or_create(durable, fs=fs)
            table = DurableTable(name, columns, store)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"no table {name!r}")
        # drop dependent indexes first
        for index_name in [n for n, idx in self._indexes.items()
                           if getattr(idx, "table", None) is self._tables[name]]:
            del self._indexes[index_name]
        del self._tables[name]

    def tables(self) -> list[str]:
        return sorted(self._tables)

    # -- views ---------------------------------------------------------------

    def register_view(self, view: View) -> View:
        if view.name in self._views or view.name in self._tables:
            raise CatalogError(f"object {view.name!r} already exists")
        self._views[view.name] = view
        return view

    def view(self, name: str) -> View:
        try:
            return self._views[name]
        except KeyError:
            raise CatalogError(f"no view {name!r}") from None

    def drop_view(self, name: str) -> None:
        if name not in self._views:
            raise CatalogError(f"no view {name!r}")
        del self._views[name]

    def views(self) -> list[str]:
        return sorted(self._views)

    # -- indexes ---------------------------------------------------------------

    def create_json_search_index(self, name: str, table_name: str,
                                 column: str, dataguide: bool = True) -> Any:
        """Create a schema-agnostic JSON search index (section 3.2.1) on
        ``table.column``; with ``dataguide=True`` the persistent DataGuide
        is maintained inside it."""
        from repro.index.search_index import JsonSearchIndex
        if name in self._indexes:
            raise CatalogError(f"index {name!r} already exists")
        index = JsonSearchIndex(name, self.table(table_name), column,
                                dataguide=dataguide)
        self._indexes[name] = index
        return index

    def index(self, name: str) -> Any:
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"no index {name!r}") from None

    def drop_index(self, name: str) -> None:
        if name not in self._indexes:
            raise CatalogError(f"no index {name!r}")
        self._indexes[name].detach()
        del self._indexes[name]

    def indexes(self) -> list[str]:
        return sorted(self._indexes)

    # -- querying ----------------------------------------------------------------

    def query(self, source_name: str) -> Query:
        """Start a query over a table or view by name."""
        if source_name in self._tables:
            return Query(self._tables[source_name])
        if source_name in self._views:
            return Query(self._views[source_name])
        raise CatalogError(f"no table or view {source_name!r}")

    def scan(self, source_name: str) -> Iterator[dict[str, Any]]:
        if source_name in self._tables:
            return self._tables[source_name].scan()
        if source_name in self._views:
            return self._views[source_name].scan()
        raise CatalogError(f"no table or view {source_name!r}")
