"""Volcano-style physical operators, row-at-a-time and morsel-batched.

Each row-mode operator is a generator over dict rows, so pipelines
stream row by row wherever the semantics allow (filter, project,
hash-join probe) and materialize only where required (sort, group-by
build, window).  The hash join here is the same physical plan Oracle
picks for the REL storage variant of Figure 3's master/detail queries.

The ``*_morsel`` variants process rows in batches of
:data:`MORSEL_SIZE`.  Per batch they first try to dispatch to the
numpy kernels of :mod:`repro.imc.kernels` (building transient
:class:`~repro.imc.columns.ColumnVector` columns), and fall back to the
compiled-closure row loop whenever exact parity cannot be guaranteed —
mixed-type columns, booleans (``True == 1`` would alias in a float64
vector), integers beyond float64's exact range, NULL group keys, or a
missing column (which must raise ``QueryError`` exactly like the
row-mode plan).  The two modes are differential-tested to produce
identical outputs, including row order.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.core.counters import counters_for
from repro.obs import metrics as _metrics
from repro.engine.expressions import (
    Aggregate,
    Aliased,
    And,
    Col,
    Comparison,
    CountAgg,
    Expression,
    InList,
    IsNull,
    Literal,
    SumAgg,
    WindowFunction,
)
from repro.errors import QueryError
from repro.imc import kernels
from repro.imc.columns import NUMERIC, STRING, ColumnVector

Row = dict

#: rows per batch in the morsel-mode operators
MORSEL_SIZE = 1024


def scan(rows: Iterable[Row]) -> Iterator[Row]:
    """Trivial scan over an iterable of rows."""
    yield from rows


def filter_rows(rows: Iterable[Row], predicate: Expression) -> Iterator[Row]:
    """WHERE: keep rows whose predicate evaluates to true (not NULL)."""
    for row in rows:
        if predicate.evaluate(row) is True:
            yield row


def project(rows: Iterable[Row],
            outputs: Sequence[tuple[str, Expression]]) -> Iterator[Row]:
    """SELECT list: compute named output expressions per row."""
    for row in rows:
        yield {name: expression.evaluate(row) for name, expression in outputs}


def hash_join(left: Iterable[Row], right: Iterable[Row], left_key: str,
              right_key: str, how: str = "inner") -> Iterator[Row]:
    """Hash join: build on the right input, probe with the left.

    ``how`` is ``"inner"`` or ``"left"`` (left outer).  Column name
    collisions are resolved in the right row's favour except for the join
    key, which keeps the left value.
    """
    build, null_pad = _join_build(right, right_key, how)
    for row in left:
        yield from _join_probe(row, build, null_pad, left_key, how)


def _join_build(right: Iterable[Row], right_key: str,
                how: str) -> tuple[dict[Any, list[Row]], Row]:
    """Build phase shared by the row and morsel hash joins."""
    if how not in ("inner", "left"):
        raise QueryError(f"unsupported join type {how!r}")
    build: dict[Any, list[Row]] = {}
    right_columns: set[str] = set()
    for row in right:
        right_columns.update(row.keys())
        key = row.get(right_key)
        if key is None:
            continue  # NULL keys never join
        build.setdefault(key, []).append(row)
    return build, dict.fromkeys(right_columns)


def _join_probe(row: Row, build: dict[Any, list[Row]], null_pad: Row,
                left_key: str, how: str) -> Iterator[Row]:
    key = row.get(left_key)
    matches = build.get(key, []) if key is not None else []
    if matches:
        for match in matches:
            merged = dict(row)
            merged.update(match)
            merged[left_key] = row[left_key]
            yield merged
    elif how == "left":
        merged = dict(row)
        for name, value in null_pad.items():
            merged.setdefault(name, value)
        yield merged


def group_by(rows: Iterable[Row], keys: Sequence[tuple[str, Expression]],
             aggregates: Sequence[tuple[str, Aggregate]]) -> Iterator[Row]:
    """Hash aggregation.  With no keys, produces one global group (even
    over empty input, per SQL semantics)."""
    groups: dict[tuple, tuple[Row, list]] = {}
    for row in rows:
        key = tuple(expression.evaluate(row) for _name, expression in keys)
        entry = groups.get(key)
        if entry is None:
            states = [agg.create() for _alias, agg in aggregates]
            key_row = {name: value for (name, _e), value in zip(keys, key)}
            entry = (key_row, states)
            groups[key] = entry
        for state in entry[1]:
            state.step(row)
    if not groups and not keys:
        states = [agg.create() for _alias, agg in aggregates]
        groups[()] = ({}, states)
    for key_row, states in groups.values():
        out = dict(key_row)
        for (alias, _agg), state in zip(aggregates, states):
            out[alias] = state.final()
        yield out


def sort(rows: Iterable[Row],
         orders: Sequence[tuple[Expression, bool]]) -> list[Row]:
    """ORDER BY with NULLS LAST (Oracle's ascending default); ``orders``
    pairs each key expression with a descending flag."""
    materialized = list(rows)
    # stable sort: apply keys from the least significant to the most
    for expression, descending in reversed(orders):
        def sort_key(row: Row, e: Expression = expression,
                     d: bool = descending) -> tuple:
            value = e.evaluate(row)
            null_rank = 1 if value is None else 0
            if d:
                null_rank = -null_rank
            return (null_rank, _OrderWrap(value, d))
        materialized.sort(key=sort_key)
    return materialized


class _OrderWrap:
    """Comparison adapter that inverts ordering for DESC keys and keeps
    NULLs comparable."""

    __slots__ = ("value", "descending")

    def __init__(self, value: Any, descending: bool) -> None:
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_OrderWrap") -> bool:
        if self.value is None or other.value is None:
            return False  # null ordering handled by the null_rank component
        if self.descending:
            return other.value < self.value
        return self.value < other.value


def window(rows: Iterable[Row], alias: str, function: WindowFunction,
           orders: Sequence[tuple[Expression, bool]]) -> list[Row]:
    """Apply a window function over the whole input as one partition,
    ordered by ``orders``; the result is added as column ``alias``."""
    ordered = sort(rows, orders) if orders else list(rows)
    out = []
    for index, row in enumerate(ordered):
        merged = dict(row)
        merged[alias] = function.compute(ordered, index)
        out.append(merged)
    return out


def union_all(sources: Sequence[Iterable[Row]]) -> Iterator[Row]:
    for source in sources:
        yield from source


def limit(rows: Iterable[Row], count: int) -> Iterator[Row]:
    for index, row in enumerate(rows):
        if index >= count:
            return
        yield row


def distinct(rows: Iterable[Row]) -> Iterator[Row]:
    seen: set[tuple] = set()
    for row in rows:
        key = tuple(sorted(row.items(), key=lambda kv: kv[0]))
        try:
            if key in seen:
                continue
            seen.add(key)
        except TypeError:  # lint: ignore[silent-except] unhashable JSON values cannot be deduplicated; emit the row
            pass
        yield row


# -- morsel-batched execution --------------------------------------------------
#
# The paper's engine (section 5) is tuple-at-a-time; the optimization
# here batches rows into morsels so that vectorizable predicates and
# aggregates run as whole-column numpy kernels while everything else
# degrades gracefully to compiled closures.  Parity with the row-mode
# operators is the invariant: a morsel only takes the vector path when
# the kernel provably computes the same answer the closure would.

#: vectorization telemetry: hits = morsels dispatched to numpy kernels,
#: misses = morsels that fell back to the compiled-closure loop
_FILTER_DISPATCH = counters_for("engine.morsel_filter")
_GROUP_DISPATCH = counters_for("engine.morsel_group_by")

#: largest magnitude an int may have and still be exactly a float64
_EXACT_INT = 2 ** 53
#: SUM partials add up to MORSEL_SIZE values; capping each addend keeps
#: the float64 partial sums exactly integral (1024 * 2^31 << 2^53)
_EXACT_SUM_INT = 2 ** 31

_VECTOR_OPS = frozenset(kernels._COMPARATORS)

#: morsel shape observability: batch count plus a fixed-bucket row-count
#: distribution (EXPLAIN ANALYZE uses these to show batch vs row mode)
_MORSEL_BATCHES = _metrics.counter("engine.morsel.batches")
_MORSEL_ROWS = _metrics.histogram(
    "engine.morsel.batch_rows", boundaries=(16, 64, 256, 1024))


def _morsels(rows: Iterable[Row], size: int = MORSEL_SIZE
             ) -> Iterator[list[Row]]:
    batch: list[Row] = []
    for row in rows:
        batch.append(row)
        if len(batch) >= size:
            _MORSEL_BATCHES.inc()
            _MORSEL_ROWS.observe(len(batch))
            yield batch
            batch = []
    if batch:
        _MORSEL_BATCHES.inc()
        _MORSEL_ROWS.observe(len(batch))
        yield batch


def _column_vector(name: str, values: list, for_sum: bool = False
                   ) -> Optional[ColumnVector]:
    """Build a transient column for one morsel, or None when the values
    defeat exact vectorization: mixed kinds (the row engine compares
    them per Python semantics, a degraded-to-string vector would not),
    booleans (``True == 1`` aliases in a float64 column), ints outside
    float64's exact range, or non-JSON-scalar objects."""
    kind = None
    limit = _EXACT_SUM_INT if for_sum else _EXACT_INT
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            return None
        if isinstance(value, (int, float)):
            if isinstance(value, int) and not -limit <= value <= limit:
                return None
            value_kind = NUMERIC
        elif isinstance(value, str):
            value_kind = STRING
        else:
            return None
        if kind is None:
            kind = value_kind
        elif kind is not value_kind:
            return None
    return ColumnVector.from_values(name, values)


def _literal_matches(column: ColumnVector, literal: Any) -> bool:
    """True when the kernel compares ``literal`` against ``column`` the
    same way Python would row by row.  A kind mismatch returns an
    all-false mask from the kernel, which diverges from Python for
    ``<>`` (``5 != "a"`` is True), so mismatches force the closure path."""
    if isinstance(literal, str):
        return column.kind == STRING
    return column.kind == NUMERIC


def _filter_conjuncts(predicate: Expression) -> Optional[list[tuple]]:
    """Decompose a WHERE tree into kernel-dispatchable conjuncts.

    Returns None when any part falls outside the vectorizable subset
    (the whole filter then runs through the compiled closure).
    """
    if isinstance(predicate, And):
        out: list[tuple] = []
        for part in predicate.parts:
            sub = _filter_conjuncts(part)
            if sub is None:
                return None
            out.extend(sub)
        return out
    if (isinstance(predicate, Comparison)
            and isinstance(predicate.left, Col)
            and isinstance(predicate.right, Literal)
            and predicate.op in _VECTOR_OPS):
        literal = predicate.right.value
        if isinstance(literal, bool) or not isinstance(
                literal, (int, float, str, type(None))):
            return None
        return [("cmp", predicate.left.name, predicate.op, literal)]
    if isinstance(predicate, InList) and isinstance(predicate.operand, Col):
        values = predicate.values
        if any(isinstance(v, bool) or not isinstance(v, (int, float, str))
               for v in values):
            return None
        return [("isin", predicate.operand.name, list(values))]
    if isinstance(predicate, IsNull) and isinstance(predicate.operand, Col):
        return [("null", predicate.operand.name, predicate.expect_null)]
    return None


def _vector_mask(conjuncts: list[tuple],
                 morsel: list[Row]) -> Optional[np.ndarray]:
    """Selection mask for one morsel, or None to fall back to closures
    (missing column — which must raise like row mode — or a column whose
    values fail the exactness gates)."""
    columns: dict[str, ColumnVector] = {}
    mask: Optional[np.ndarray] = None
    for conjunct in conjuncts:
        name = conjunct[1]
        column = columns.get(name)
        if column is None:
            values = []
            for row in morsel:
                if name not in row:
                    return None
                values.append(row[name])
            column = _column_vector(name, values)
            if column is None:
                return None
            columns[name] = column
        tag = conjunct[0]
        if tag == "cmp":
            literal = conjunct[3]
            if literal is not None and not _literal_matches(column, literal):
                return None
            part = kernels.compare(column, conjunct[2], literal)
        elif tag == "isin":
            part = kernels.isin(column, conjunct[2])
        else:  # "null"
            part = ~column.valid if conjunct[2] else kernels.not_null(column)
        mask = part if mask is None else (mask & part)
    return mask


def filter_rows_morsel(rows: Iterable[Row],
                       predicate: Expression) -> Iterator[Row]:
    """Morsel-batched WHERE: vectorized mask per batch when the
    predicate and the batch's columns allow, compiled closure otherwise."""
    conjuncts = _filter_conjuncts(predicate)
    fn = predicate.compiled()
    for morsel in _morsels(rows):
        mask = _vector_mask(conjuncts, morsel) if conjuncts else None
        if mask is not None:
            _FILTER_DISPATCH.record_hit()
            for row, keep in zip(morsel, mask):
                if keep:
                    yield row
        else:
            _FILTER_DISPATCH.record_miss()
            for row in morsel:
                if fn(row) is True:
                    yield row


def project_morsel(rows: Iterable[Row],
                   outputs: Sequence[tuple[str, Expression]]) -> Iterator[Row]:
    """Morsel-batched SELECT list: every output expression compiles to a
    closure once, then runs over the batch without tree interpretation."""
    compiled = [(name, expression.compiled()) for name, expression in outputs]
    for morsel in _morsels(rows):
        for row in morsel:
            yield {name: fn(row) for name, fn in compiled}


def hash_join_morsel(left: Iterable[Row], right: Iterable[Row],
                     left_key: str, right_key: str,
                     how: str = "inner") -> Iterator[Row]:
    """Hash join with a morsel-batched probe phase (same build table and
    merge semantics as :func:`hash_join`)."""
    build, null_pad = _join_build(right, right_key, how)
    for morsel in _morsels(left):
        for row in morsel:
            yield from _join_probe(row, build, null_pad, left_key, how)


def _group_vector_plan(keys: Sequence[tuple[str, Expression]],
                       aggregates: Sequence[tuple[str, Aggregate]]
                       ) -> Optional[tuple]:
    """A kernel-dispatch plan for hash aggregation, or None.

    The vectorizable shape is at most one plain-Col grouping key with
    every aggregate a COUNT(*) / COUNT(col) / SUM(col) over plain Cols —
    the Figure 3 / Figure 9 aggregation shapes.  Everything else steps
    compiled closures per row.
    """
    if len(keys) > 1:
        return None
    key_name = None
    if keys:
        expression = keys[0][1]
        if not isinstance(expression, Col):
            return None
        key_name = expression.name
    specs: list[tuple[str, Optional[str]]] = []
    for _alias, agg in aggregates:
        operand = agg.operand
        if operand is not None and not isinstance(operand, Col):
            return None
        if type(agg) is CountAgg:
            specs.append(("count", None if operand is None else operand.name))
        elif type(agg) is SumAgg and operand is not None:
            specs.append(("sum", operand.name))
        else:
            return None
    return key_name, specs


def _morsel_column(name: str, morsel: list[Row],
                   for_sum: bool = False) -> Optional[ColumnVector]:
    values = []
    for row in morsel:
        if name not in row:
            return None  # Col.evaluate raises; the closure path must run
        values.append(row[name])
    if for_sum and any(isinstance(v, float) for v in values):
        return None  # float addition order is observable; keep row order
    return _column_vector(name, values, for_sum=for_sum)


def _group_entry(groups: dict, key: tuple, key_row: Row,
                 aggregates: Sequence[tuple[str, Aggregate]]) -> tuple:
    entry = groups.get(key)
    if entry is None:
        entry = (key_row, [agg.create() for _alias, agg in aggregates])
        groups[key] = entry
    return entry


def _fold_group_morsel(plan: tuple, morsel: list[Row], groups: dict,
                       aggregates: Sequence[tuple[str, Aggregate]],
                       key_output: Optional[str]) -> bool:
    """Vectorized partial aggregation for one morsel folded into
    ``groups``; returns False when a gate fails and the caller must step
    the morsel through closures instead."""
    key_name, specs = plan
    operand_columns: dict[str, ColumnVector] = {}
    for kind, operand in specs:
        if operand is not None and operand not in operand_columns:
            column = _morsel_column(operand, morsel, for_sum=(kind == "sum"))
            if column is None:
                return False
            operand_columns[operand] = column

    if key_name is None:
        # global aggregation: scalar kernels, one () group
        partials = []
        for kind, operand in specs:
            if operand is None:
                partials.append(len(morsel))
            elif kind == "count":
                partials.append(kernels.agg_count(operand_columns[operand]))
            else:
                total = kernels.agg_sum(operand_columns[operand])
                partials.append(None if total is None else int(total))
        entry = _group_entry(groups, (), {}, aggregates)
        fold_partials(entry[1], specs, partials, None)
        return True

    key_values = []
    for row in morsel:
        if key_name not in row:
            return False
        value = row[key_name]
        if value is None:
            return False  # kernels mask NULL keys out; SQL groups them
        key_values.append(value)
    key_column = _column_vector(key_name, key_values)
    if key_column is None:
        return False

    per_key: list[dict] = []
    for kind, operand in specs:
        if kind == "count":
            selection = (None if operand is None
                         else operand_columns[operand].valid)
            per_key.append(kernels.group_by_count(key_column, selection))
        else:
            sums = kernels.group_by_sum(key_column,
                                        operand_columns[operand])
            per_key.append({k: int(v) for k, v in sums.items()})

    # fold in first-occurrence order so group output order matches the
    # row-at-a-time plan exactly
    _uniq, first = np.unique(key_column.values, return_index=True)
    for index in sorted(first.tolist()):
        key_value = key_column.value_at(index)
        entry = _group_entry(groups, (key_value,),
                             {key_output: key_value}, aggregates)
        fold_partials(entry[1], specs, per_key, key_value)
    return True


def fold_partials(states: list, specs: list,
                  partials: list, key_value: Any) -> None:
    """Merge one batch of kernel partials into a group's aggregate states
    — the gather primitive of morsel and scatter-gather group-by.

    ``states`` are the group's :class:`~repro.engine.expressions
    .AggregateState` accumulators; ``specs`` is the kernel plan from
    :func:`_group_vector_plan` (``("count"|"sum", operand)`` pairs,
    positionally matching ``states``); ``partials`` carries one partial
    per spec — either a scalar (global aggregation) or a per-key dict
    keyed by group value, selected through ``key_value``.  A missing or
    ``None`` partial folds as "no qualifying rows", exactly like zero
    ``step`` calls.
    """
    for state, (kind, _operand), partial in zip(states, specs, partials):
        if isinstance(partial, dict):  # keyed plan: per-key partial dicts
            partial = partial.get(key_value)
        if partial is None:
            continue
        if kind == "count":
            state.count += partial
        else:
            state.total = (partial if state.total is None
                           else state.total + partial)


#: backwards-compatible private alias (pre-public-API spelling)
_fold_partials = fold_partials


def partial_group_by(rows: Iterable[Row],
                     keys: Sequence[tuple[str, Expression]],
                     aggregates: Sequence[tuple[str, Aggregate]],
                     morsel: bool = True) -> dict:
    """Aggregate one row stream into **partial** group states without
    finalizing: the per-shard half of scatter-gather group-by.

    Returns the internal groups map ``{key_tuple: (key_row, states)}``.
    Partials from several streams merge with
    :func:`gather_group_partials`; a single stream finalizes through
    :func:`finalize_groups` (and
    ``finalize_groups(partial_group_by(rows, ...))`` is row-for-row
    identical to :func:`group_by` / :func:`group_by_morsel` over the
    same input, which the parity tests assert).

    With ``morsel=True`` the accumulation runs the 1k-row morsel
    pipeline with numpy kernel dispatch; ``morsel=False`` steps rows
    through compiled closures one at a time.
    """
    groups: dict[tuple, tuple[Row, list]] = {}
    if morsel:
        _accumulate_groups_morsel(rows, keys, aggregates, groups)
    else:
        for row in rows:
            key = tuple(expression.evaluate(row)
                        for _name, expression in keys)
            key_row = {name: value
                       for (name, _e), value in zip(keys, key)}
            entry = _group_entry(groups, key, key_row, aggregates)
            for state in entry[1]:
                state.step(row)
    return groups


def _accumulate_groups_morsel(rows: Iterable[Row],
                              keys: Sequence[tuple[str, Expression]],
                              aggregates: Sequence[tuple[str, Aggregate]],
                              groups: dict) -> None:
    """Morsel-batched accumulation into ``groups`` (shared by
    :func:`group_by_morsel` and :func:`partial_group_by`)."""
    key_fns = [expression.compiled() for _name, expression in keys]
    key_names = [name for name, _expression in keys]
    key_output = key_names[0] if key_names else None
    plan = _group_vector_plan(keys, aggregates)
    for morsel in _morsels(rows):
        if plan is not None and _fold_group_morsel(plan, morsel, groups,
                                                   aggregates, key_output):
            _GROUP_DISPATCH.record_hit()
            continue
        _GROUP_DISPATCH.record_miss()
        for row in morsel:
            key = tuple(fn(row) for fn in key_fns)
            entry = _group_entry(
                groups, key, dict(zip(key_names, key)), aggregates)
            for state in entry[1]:
                state.step(row)


def gather_group_partials(partials_list: Sequence[dict],
                          aggregates: Sequence[tuple[str, Aggregate]]
                          ) -> dict:
    """Merge several :func:`partial_group_by` results into one groups
    map — the gather half of scatter-gather aggregation.

    Inputs merge **in sequence order** (shard-index order in the
    scatter executor), so group discovery order — and therefore output
    row order — is deterministic, and the one order-sensitive SQL case
    (float SUM/AVG addition) folds the same way on every run.  States
    combine via :meth:`~repro.engine.expressions.AggregateState.merge`.
    """
    gathered: dict[tuple, tuple[Row, list]] = {}
    for partials in partials_list:
        for key, (key_row, states) in partials.items():
            entry = gathered.get(key)
            if entry is None:
                gathered[key] = (key_row, states)
            else:
                for target, source in zip(entry[1], states):
                    target.merge(source)
    return gathered


def finalize_groups(groups: dict,
                    keys: Sequence[tuple[str, Expression]],
                    aggregates: Sequence[tuple[str, Aggregate]]
                    ) -> Iterator[Row]:
    """Render a groups map into result rows (SQL's empty-input global
    group included), completing the partial/gather pipeline."""
    if not groups and not keys:
        groups[()] = ({}, [agg.create() for _alias, agg in aggregates])
    for key_row, states in groups.values():
        out = dict(key_row)
        for (alias, _agg), state in zip(aggregates, states):
            out[alias] = state.final()
        yield out


def serialize_group_partials(groups: dict) -> list:
    """Flatten a groups map into picklable ``(key, key_row, partial
    dicts)`` triples — aggregate states hold compiled closures and
    cannot cross a process boundary; their partial dicts can.  The
    inverse is :func:`fold_serialized_partials`."""
    return [(key, key_row, [state.partial() for state in states])
            for key, (key_row, states) in groups.items()]


def fold_serialized_partials(groups: dict, serialized: Iterable,
                             aggregates: Sequence[tuple[str, Aggregate]]
                             ) -> dict:
    """Fold serialized partials (from a worker process) into ``groups``
    via :meth:`~repro.engine.expressions.AggregateState.fold_partial`."""
    for key, key_row, partial_dicts in serialized:
        entry = _group_entry(groups, key, key_row, aggregates)
        for state, partial in zip(entry[1], partial_dicts):
            state.fold_partial(partial)
    return groups


def group_by_morsel(rows: Iterable[Row],
                    keys: Sequence[tuple[str, Expression]],
                    aggregates: Sequence[tuple[str, Aggregate]]
                    ) -> Iterator[Row]:
    """Morsel-batched hash aggregation: numpy grouped kernels when the
    shape and the batch allow, compiled-closure stepping otherwise."""
    groups: dict[tuple, tuple[Row, list]] = {}
    _accumulate_groups_morsel(rows, keys, aggregates, groups)
    yield from finalize_groups(groups, keys, aggregates)


def normalize_output(item: Any) -> tuple[str, Expression]:
    """Turn a SELECT-list item (name, Expression, or Aliased) into a
    (output name, expression) pair."""
    if isinstance(item, str):
        return item, Col(item)
    if isinstance(item, Aliased):
        return item.alias, item.inner
    if isinstance(item, Col):
        return item.name, item
    if isinstance(item, Expression):
        return item.sql(), item
    raise QueryError(f"bad select item {item!r}")
