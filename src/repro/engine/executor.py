"""Volcano-style physical operators.

Each operator is a generator over dict rows, so pipelines stream row by
row wherever the semantics allow (filter, project, hash-join probe) and
materialize only where required (sort, group-by build, window).  The
hash join here is the same physical plan Oracle picks for the REL storage
variant of Figure 3's master/detail queries.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.engine.expressions import (
    Aggregate,
    Aliased,
    Col,
    Expression,
    WindowFunction,
)
from repro.errors import QueryError

Row = dict


def scan(rows: Iterable[Row]) -> Iterator[Row]:
    """Trivial scan over an iterable of rows."""
    yield from rows


def filter_rows(rows: Iterable[Row], predicate: Expression) -> Iterator[Row]:
    """WHERE: keep rows whose predicate evaluates to true (not NULL)."""
    for row in rows:
        if predicate.evaluate(row) is True:
            yield row


def project(rows: Iterable[Row],
            outputs: Sequence[tuple[str, Expression]]) -> Iterator[Row]:
    """SELECT list: compute named output expressions per row."""
    for row in rows:
        yield {name: expression.evaluate(row) for name, expression in outputs}


def hash_join(left: Iterable[Row], right: Iterable[Row], left_key: str,
              right_key: str, how: str = "inner") -> Iterator[Row]:
    """Hash join: build on the right input, probe with the left.

    ``how`` is ``"inner"`` or ``"left"`` (left outer).  Column name
    collisions are resolved in the right row's favour except for the join
    key, which keeps the left value.
    """
    if how not in ("inner", "left"):
        raise QueryError(f"unsupported join type {how!r}")
    build: dict[Any, list[Row]] = {}
    right_columns: set[str] = set()
    for row in right:
        right_columns.update(row.keys())
        key = row.get(right_key)
        if key is None:
            continue  # NULL keys never join
        build.setdefault(key, []).append(row)
    null_pad = dict.fromkeys(right_columns)
    for row in left:
        key = row.get(left_key)
        matches = build.get(key, []) if key is not None else []
        if matches:
            for match in matches:
                merged = dict(row)
                merged.update(match)
                merged[left_key] = row[left_key]
                yield merged
        elif how == "left":
            merged = dict(row)
            for name, value in null_pad.items():
                merged.setdefault(name, value)
            yield merged


def group_by(rows: Iterable[Row], keys: Sequence[tuple[str, Expression]],
             aggregates: Sequence[tuple[str, Aggregate]]) -> Iterator[Row]:
    """Hash aggregation.  With no keys, produces one global group (even
    over empty input, per SQL semantics)."""
    groups: dict[tuple, tuple[Row, list]] = {}
    for row in rows:
        key = tuple(expression.evaluate(row) for _name, expression in keys)
        entry = groups.get(key)
        if entry is None:
            states = [agg.create() for _alias, agg in aggregates]
            key_row = {name: value for (name, _e), value in zip(keys, key)}
            entry = (key_row, states)
            groups[key] = entry
        for state in entry[1]:
            state.step(row)
    if not groups and not keys:
        states = [agg.create() for _alias, agg in aggregates]
        groups[()] = ({}, states)
    for key_row, states in groups.values():
        out = dict(key_row)
        for (alias, _agg), state in zip(aggregates, states):
            out[alias] = state.final()
        yield out


def sort(rows: Iterable[Row],
         orders: Sequence[tuple[Expression, bool]]) -> list[Row]:
    """ORDER BY with NULLS LAST (Oracle's ascending default); ``orders``
    pairs each key expression with a descending flag."""
    materialized = list(rows)
    # stable sort: apply keys from the least significant to the most
    for expression, descending in reversed(orders):
        def sort_key(row: Row, e: Expression = expression,
                     d: bool = descending) -> tuple:
            value = e.evaluate(row)
            null_rank = 1 if value is None else 0
            if d:
                null_rank = -null_rank
            return (null_rank, _OrderWrap(value, d))
        materialized.sort(key=sort_key)
    return materialized


class _OrderWrap:
    """Comparison adapter that inverts ordering for DESC keys and keeps
    NULLs comparable."""

    __slots__ = ("value", "descending")

    def __init__(self, value: Any, descending: bool) -> None:
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_OrderWrap") -> bool:
        if self.value is None or other.value is None:
            return False  # null ordering handled by the null_rank component
        if self.descending:
            return other.value < self.value
        return self.value < other.value


def window(rows: Iterable[Row], alias: str, function: WindowFunction,
           orders: Sequence[tuple[Expression, bool]]) -> list[Row]:
    """Apply a window function over the whole input as one partition,
    ordered by ``orders``; the result is added as column ``alias``."""
    ordered = sort(rows, orders) if orders else list(rows)
    out = []
    for index, row in enumerate(ordered):
        merged = dict(row)
        merged[alias] = function.compute(ordered, index)
        out.append(merged)
    return out


def union_all(sources: Sequence[Iterable[Row]]) -> Iterator[Row]:
    for source in sources:
        yield from source


def limit(rows: Iterable[Row], count: int) -> Iterator[Row]:
    for index, row in enumerate(rows):
        if index >= count:
            return
        yield row


def distinct(rows: Iterable[Row]) -> Iterator[Row]:
    seen: set[tuple] = set()
    for row in rows:
        key = tuple(sorted(row.items(), key=lambda kv: kv[0]))
        try:
            if key in seen:
                continue
            seen.add(key)
        except TypeError:  # lint: ignore[silent-except] unhashable JSON values cannot be deduplicated; emit the row
            pass
        yield row


def normalize_output(item: Any) -> tuple[str, Expression]:
    """Turn a SELECT-list item (name, Expression, or Aliased) into a
    (output name, expression) pair."""
    if isinstance(item, str):
        return item, Col(item)
    if isinstance(item, Aliased):
        return item.alias, item.inner
    if isinstance(item, Col):
        return item.name, item
    if isinstance(item, Expression):
        return item.sql(), item
    raise QueryError(f"bad select item {item!r}")
