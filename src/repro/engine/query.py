"""Query builder over the logical plan layer.

Queries are dataflow pipelines built by chaining operations; operations
apply **in the order they are chained**, which keeps the execution model
explicit::

    (Query(po_table)
        .where(expr.Col("costcenter") == "A50")
        .group_by(["requestor"], n=expr.COUNT())
        .order_by("n", desc=True)
        .rows())

Sources may be a :class:`~repro.engine.table.Table`, a view, a list of
dict rows, another :class:`Query` (subquery), or any callable returning
an iterator of rows.  ``rows()`` executes and materializes; ``explain()``
renders the logical plan as text.

Execution goes through :mod:`repro.engine.plan`: the chained operations
build a :class:`~repro.engine.plan.LogicalPlan`, rewrite rules apply
(JSON_EXISTS predicate pushdown; scatter-gather fusion with partition
pruning over sharded sources), and the rewritten node chain executes in
the pinned mode.
"""

from __future__ import annotations

import os

from typing import Any, Callable, Iterable, Iterator, Optional, Sequence, Union

from repro.engine import executor
from repro.engine import plan as planmod
from repro.engine.expressions import (
    Aggregate,
    Col,
    Expression,
    WindowFunction,
    wrap,
)
from repro.errors import QueryError


def _cache_deltas(before: dict, after: dict) -> dict:
    """Non-zero per-cache hit/miss/eviction changes between two
    :func:`repro.core.counters.snapshot_all` snapshots."""
    deltas: dict = {}
    for name, snap in after.items():
        prior = before.get(name, {})
        changed = {key: snap.get(key, 0) - prior.get(key, 0)
                   for key in ("hits", "misses", "evictions")}
        changed = {key: value for key, value in changed.items() if value}
        if changed:
            deltas[name] = changed
    return deltas


Row = dict
Source = Union["Query", Iterable[Row], Callable[[], Iterator[Row]]]

#: execution modes: "morsel" batches rows and dispatches vectorizable
#: work to the numpy kernels; "row" is the tuple-at-a-time interpreter
_VALID_MODES = ("morsel", "row")


def _initial_mode() -> str:
    mode = os.environ.get("REPRO_EXEC_MODE", "morsel")
    return mode if mode in _VALID_MODES else "morsel"


_DEFAULT_MODE = _initial_mode()


def default_mode() -> str:
    """The session-wide execution mode used by plans without an explicit
    :meth:`Query.mode` (initialized from ``REPRO_EXEC_MODE``)."""
    return _DEFAULT_MODE


def set_default_mode(mode: str) -> str:
    """Set the session-wide execution mode; returns the previous one so
    ablation harnesses can restore it."""
    global _DEFAULT_MODE
    if mode not in _VALID_MODES:
        raise QueryError(f"unknown execution mode {mode!r}")
    previous = _DEFAULT_MODE
    _DEFAULT_MODE = mode
    return previous


#: shared with the plan layer (kept importable under its old name)
_iterate_source = planmod.iterate_source


class Query:
    """A composable query pipeline."""

    def __init__(self, source: Source) -> None:
        self._source = source
        self._ops: list[tuple[str, tuple]] = []
        self._mode: Optional[str] = None
        self._row_hook: Optional[Callable[[Row], None]] = None
        self._scatter_policy: Optional["planmod.scattermod.ScatterPolicy"] \
            = None

    # -- builder -------------------------------------------------------------

    def _with(self, op: str, *args: Any) -> "Query":
        clone = Query(self._source)
        clone._ops = self._ops + [(op, args)]
        clone._mode = self._mode
        clone._row_hook = self._row_hook
        clone._scatter_policy = self._scatter_policy
        return clone

    def mode(self, mode: str) -> "Query":
        """Pin this plan's execution mode: ``"morsel"`` (batched,
        kernel-dispatching) or ``"row"`` (tuple-at-a-time) — the ablation
        benchmarks toggle this for before/after measurements."""
        if mode not in _VALID_MODES:
            raise QueryError(f"unknown execution mode {mode!r}")
        clone = Query(self._source)
        clone._ops = list(self._ops)
        clone._mode = mode
        clone._row_hook = self._row_hook
        clone._scatter_policy = self._scatter_policy
        return clone

    def instrumented(self, hook: Callable[[Row], None]) -> "Query":
        """Clone whose execution calls ``hook(row)`` for every source
        row consumed and every result row produced.  The serving layer
        uses this for cooperative cancellation and deadline checks: the
        hook raising aborts the pipeline at the next row boundary, even
        mid-way through a long scan feeding a blocking operator."""
        clone = Query(self._source)
        clone._ops = list(self._ops)
        clone._mode = self._mode
        clone._row_hook = hook
        clone._scatter_policy = self._scatter_policy
        return clone

    def with_scatter_policy(self, policy: Any) -> "Query":
        """Clone carrying an explicit
        :class:`~repro.engine.scatter.ScatterPolicy` — the serving
        layer's hook for wiring its ``CancelToken`` and session-level
        failure policy into scatter execution."""
        clone = Query(self._source)
        clone._ops = list(self._ops)
        clone._mode = self._mode
        clone._row_hook = self._row_hook
        clone._scatter_policy = policy
        return clone

    def on_shard_failure(self, on_failure: str) -> "Query":
        """Per-query shard-failure policy: ``"fail"`` (default —
        propagate the first shard failure typed) or ``"partial"``
        (return surviving shards' rows as an explicitly-marked
        degraded result; see :meth:`rows`).  No-op over unsharded
        sources."""
        from repro.engine import scatter as scattermod
        return self.with_scatter_policy(
            scattermod.ScatterPolicy(on_failure=on_failure))

    def where(self, predicate: Expression) -> "Query":
        """Filter rows; NULL (unknown) predicates drop the row."""
        return self._with("where", predicate)

    def select(self, *items: Any) -> "Query":
        """Project the listed columns/expressions (str, Col, or ``.as_()``)."""
        outputs = [executor.normalize_output(i) for i in items]
        return self._with("select", outputs)

    def join(self, other: Source, left_key: str, right_key: str,
             how: str = "inner") -> "Query":
        """Hash-join this pipeline (probe side) with ``other`` (build side)."""
        return self._with("join", other, left_key, right_key, how)

    def group_by(self, keys: Sequence[Any] = (), **aggregates: Aggregate) -> "Query":
        """Hash aggregation: ``group_by(["k"], total=expr.SUM(...))``."""
        key_outputs = [executor.normalize_output(k) for k in keys]
        aggregate_list = list(aggregates.items())
        for alias, agg in aggregate_list:
            if not isinstance(agg, Aggregate):
                raise QueryError(f"{alias!r} is not an Aggregate")
        return self._with("group_by", key_outputs, aggregate_list)

    def having(self, predicate: Expression) -> "Query":
        """Filter groups after a ``group_by``."""
        return self._with("where", predicate)

    def window(self, alias: str, function: WindowFunction,
               order_by: Any = None, desc: bool = False) -> "Query":
        """Apply a window function over a single ordered partition."""
        orders = []
        if order_by is not None:
            orders.append((wrap(order_by) if not isinstance(order_by, str)
                           else Col(order_by), desc))
        return self._with("window", alias, function, orders)

    def order_by(self, *keys: Any, desc: Union[bool, Sequence[bool]] = False) -> "Query":
        """Sort; ``desc`` may be one flag or one per key."""
        if isinstance(desc, bool):
            flags = [desc] * len(keys)
        else:
            flags = list(desc)
            if len(flags) != len(keys):
                raise QueryError("desc flags must match order_by keys")
        orders = []
        for key, flag in zip(keys, flags):
            expression = Col(key) if isinstance(key, str) else wrap(key)
            orders.append((expression, flag))
        return self._with("order_by", orders)

    def distinct(self) -> "Query":
        return self._with("distinct")

    def limit(self, count: int) -> "Query":
        return self._with("limit", count)

    def union_all(self, other: Source) -> "Query":
        return self._with("union_all", other)

    # -- execution ------------------------------------------------------------

    def __iter__(self) -> Iterator[Row]:
        return self._execute()

    def rows(self) -> list[Row]:
        """Execute and materialize the result rows.

        Under an ``on_shard_failure="partial")`` policy a result whose
        shards partially failed comes back as
        :class:`~repro.engine.scatter.DegradedRows` — a plain list
        carrying an explicit ``.degraded`` marker
        (:class:`~repro.errors.DegradedResult`) naming the missing
        shards.  Complete results are ordinary lists, so
        ``getattr(rows, "degraded", None)`` is the uniform check.
        """
        from repro.engine import scatter as scattermod

        morsel = (self._mode or _DEFAULT_MODE) == "morsel"
        built = self._plan()
        out = list(built.execute(morsel, hook=self._row_hook,
                                 scatter_policy=self._scatter_policy))
        marker = built.degraded()
        if marker is None:
            return out
        degraded = scattermod.DegradedRows(out)
        degraded.degraded = marker
        return degraded

    def scalar(self) -> Any:
        """Execute; return the single value of a 1x1 result."""
        result = self.rows()
        if len(result) != 1 or len(result[0]) != 1:
            raise QueryError(
                f"scalar() needs a 1x1 result, got {len(result)} rows")
        return next(iter(result[0].values()))

    def count(self) -> int:
        return sum(1 for _ in self._execute())

    def _plan(self) -> "planmod.LogicalPlan":
        """Build the logical plan for the chained operations and run the
        rewrite rules (scatter-gather fusion, predicate pushdown)."""
        return planmod.rewrite(planmod.build_plan(self._source, self._ops))

    def _execute(self) -> Iterator[Row]:
        morsel = (self._mode or _DEFAULT_MODE) == "morsel"
        return self._plan().execute(morsel, hook=self._row_hook,
                                    scatter_policy=self._scatter_policy)

    def profile(self) -> dict:
        """Execute with per-operator attribution (the EXPLAIN ANALYZE
        engine).

        Runs the pipeline one stage at a time with materialized
        intermediates, so each stage's wall time, row counts, metric
        deltas, and cache hit/miss deltas are attributed exactly to the
        operator that caused them (lazy chaining would smear upstream
        work into whichever stage pulled the rows).  Tracing is
        force-enabled for the duration so the query's span tree lands in
        the ring buffer for :func:`repro.obs.trace.export_traces`.

        Returns ``{"mode", "elapsed_ms", "rows", "stages": [...]}``;
        each stage carries ``label``, ``op``, ``mode``, ``rows_in``,
        ``rows_out``, ``elapsed_ms``, ``metrics`` (non-zero metric
        deltas), and ``caches`` (non-zero cache-counter deltas).
        """
        from repro.core import counters as _cache_counters
        from repro.obs import metrics as _obs_metrics
        from repro.obs import trace as _obs_trace

        morsel = (self._mode or _DEFAULT_MODE) == "morsel"
        mode_name = "morsel" if morsel else "row"
        source_name = getattr(self._source, "name",
                              type(self._source).__name__)
        stages: list[dict] = []

        def run_stage(label: str, op: str, batched: bool,
                      produce) -> list[Row]:
            metrics_before = _obs_metrics.snapshot_metrics()
            caches_before = _cache_counters.snapshot_all()
            start = _obs_trace.monotonic()
            with _obs_trace.span("operator", op=label) as stage_span:
                out = list(produce())
                stage_span.record("rows_out", len(out))
            elapsed = (_obs_trace.monotonic() - start) * 1000.0
            stages.append({
                "label": label,
                "op": op,
                "mode": mode_name if batched else "row",
                "rows_in": stages[-1]["rows_out"] if stages else None,
                "rows_out": len(out),
                "elapsed_ms": elapsed,
                "metrics": _obs_metrics.metric_deltas(
                    metrics_before, _obs_metrics.snapshot_metrics()),
                "caches": _cache_deltas(caches_before,
                                        _cache_counters.snapshot_all()),
            })
            return out

        built = self._plan()
        if (self._scatter_policy is not None
                and isinstance(built.nodes[0], planmod.ScatterNode)):
            built.nodes[0].policy = self._scatter_policy
        previous_tracing = _obs_trace.set_tracing_enabled(True)
        start = _obs_trace.monotonic()
        try:
            with _obs_trace.span("query", mode=mode_name,
                                 source=source_name) as query_span:
                head = built.nodes[0]
                rows = run_stage(head.label(), head.op, head.batched,
                                 lambda: head.execute(iter(()), morsel))
                for node in built.nodes[1:]:
                    current = rows
                    rows = run_stage(
                        node.label(), node.op, node.batched,
                        lambda: node.execute(iter(current), morsel))
                query_span.record("rows_out", len(rows))
        finally:
            _obs_trace.set_tracing_enabled(previous_tracing)
        total = (_obs_trace.monotonic() - start) * 1000.0
        return {"mode": mode_name, "elapsed_ms": total,
                "rows": rows, "stages": stages}

    def explain(self, analyze: bool = False) -> str:
        """Human-readable plan, one operator per line.

        With ``analyze=True`` the query is executed via :meth:`profile`
        and each line carries the stage's observed rows in/out, wall
        time, and execution mode, followed by indented non-zero metric
        and cache-counter deltas.
        """
        if not analyze:
            return "\n".join(self._plan().explain_lines())
        result = self.profile()
        lines = [f"EXPLAIN ANALYZE (mode={result['mode']}, "
                 f"rows={len(result['rows'])}, "
                 f"total={result['elapsed_ms']:.3f}ms)"]
        for stage in result["stages"]:
            rows_in = ("" if stage["rows_in"] is None
                       else f"rows_in={stage['rows_in']} ")
            lines.append(
                f"{stage['label']}  "
                f"[{rows_in}rows_out={stage['rows_out']} "
                f"{stage['elapsed_ms']:.3f}ms mode={stage['mode']}]")
            for name in sorted(stage["metrics"]):
                delta = stage["metrics"][name]
                if isinstance(delta, dict):  # histogram delta
                    rendered = (f"{delta['count']} obs / "
                                f"{delta['sum']:.3f} total")
                else:
                    rendered = str(delta)
                lines.append(f"    metric {name}: {rendered}")
            for name in sorted(stage["caches"]):
                delta = stage["caches"][name]
                rendered = " ".join(f"{k}=+{v}" for k, v in
                                    sorted(delta.items()))
                lines.append(f"    cache {name}: {rendered}")
        return "\n".join(lines)
