"""Query builder over the volcano operators.

Queries are dataflow pipelines built by chaining operations; operations
apply **in the order they are chained**, which keeps the execution model
explicit::

    (Query(po_table)
        .where(expr.Col("costcenter") == "A50")
        .group_by(["requestor"], n=expr.COUNT())
        .order_by("n", desc=True)
        .rows())

Sources may be a :class:`~repro.engine.table.Table`, a view, a list of
dict rows, another :class:`Query` (subquery), or any callable returning
an iterator of rows.  ``rows()`` executes and materializes; ``explain()``
renders the logical plan as text.
"""

from __future__ import annotations

import os

from typing import Any, Callable, Iterable, Iterator, Optional, Sequence, Union

from repro.engine import executor
from repro.engine.expressions import (
    Aggregate,
    And,
    Col,
    Comparison,
    Expression,
    InList,
    Literal,
    WindowFunction,
    wrap,
)
from repro.errors import QueryError


def _pushable_conjuncts(expression: Expression) -> list[tuple[str, str, list]]:
    """Extract (column, op, literal values) conjuncts suitable for
    JSON_EXISTS pushdown; non-decomposable parts are simply not pushed."""
    if isinstance(expression, And):
        out: list[tuple[str, str, list]] = []
        for part in expression.parts:
            out.extend(_pushable_conjuncts(part))
        return out
    if (isinstance(expression, Comparison)
            and isinstance(expression.left, Col)
            and isinstance(expression.right, Literal)
            and expression.right.value is not None):
        return [(expression.left.name, expression.op,
                 [expression.right.value])]
    if isinstance(expression, InList) and isinstance(expression.operand, Col):
        return [(expression.operand.name, "=", list(expression.values))]
    return []

Row = dict
Source = Union["Query", Iterable[Row], Callable[[], Iterator[Row]]]

#: execution modes: "morsel" batches rows and dispatches vectorizable
#: work to the numpy kernels; "row" is the tuple-at-a-time interpreter
_VALID_MODES = ("morsel", "row")


def _initial_mode() -> str:
    mode = os.environ.get("REPRO_EXEC_MODE", "morsel")
    return mode if mode in _VALID_MODES else "morsel"


_DEFAULT_MODE = _initial_mode()


def default_mode() -> str:
    """The session-wide execution mode used by plans without an explicit
    :meth:`Query.mode` (initialized from ``REPRO_EXEC_MODE``)."""
    return _DEFAULT_MODE


def set_default_mode(mode: str) -> str:
    """Set the session-wide execution mode; returns the previous one so
    ablation harnesses can restore it."""
    global _DEFAULT_MODE
    if mode not in _VALID_MODES:
        raise QueryError(f"unknown execution mode {mode!r}")
    previous = _DEFAULT_MODE
    _DEFAULT_MODE = mode
    return previous


def _iterate_source(source: Any) -> Iterator[Row]:
    if isinstance(source, Query):
        return iter(source.rows())
    if hasattr(source, "scan"):  # Table and View both expose scan()
        return source.scan()
    if callable(source):
        return source()
    if isinstance(source, Iterable):
        return iter(source)
    raise QueryError(f"cannot use {type(source).__name__} as a query source")


class Query:
    """A composable query pipeline."""

    def __init__(self, source: Source) -> None:
        self._source = source
        self._ops: list[tuple[str, tuple]] = []
        self._mode: Optional[str] = None

    # -- builder -------------------------------------------------------------

    def _with(self, op: str, *args: Any) -> "Query":
        clone = Query(self._source)
        clone._ops = self._ops + [(op, args)]
        clone._mode = self._mode
        return clone

    def mode(self, mode: str) -> "Query":
        """Pin this plan's execution mode: ``"morsel"`` (batched,
        kernel-dispatching) or ``"row"`` (tuple-at-a-time) — the ablation
        benchmarks toggle this for before/after measurements."""
        if mode not in _VALID_MODES:
            raise QueryError(f"unknown execution mode {mode!r}")
        clone = Query(self._source)
        clone._ops = list(self._ops)
        clone._mode = mode
        return clone

    def where(self, predicate: Expression) -> "Query":
        """Filter rows; NULL (unknown) predicates drop the row."""
        return self._with("where", predicate)

    def select(self, *items: Any) -> "Query":
        """Project the listed columns/expressions (str, Col, or ``.as_()``)."""
        outputs = [executor.normalize_output(i) for i in items]
        return self._with("select", outputs)

    def join(self, other: Source, left_key: str, right_key: str,
             how: str = "inner") -> "Query":
        """Hash-join this pipeline (probe side) with ``other`` (build side)."""
        return self._with("join", other, left_key, right_key, how)

    def group_by(self, keys: Sequence[Any] = (), **aggregates: Aggregate) -> "Query":
        """Hash aggregation: ``group_by(["k"], total=expr.SUM(...))``."""
        key_outputs = [executor.normalize_output(k) for k in keys]
        aggregate_list = list(aggregates.items())
        for alias, agg in aggregate_list:
            if not isinstance(agg, Aggregate):
                raise QueryError(f"{alias!r} is not an Aggregate")
        return self._with("group_by", key_outputs, aggregate_list)

    def having(self, predicate: Expression) -> "Query":
        """Filter groups after a ``group_by``."""
        return self._with("where", predicate)

    def window(self, alias: str, function: WindowFunction,
               order_by: Any = None, desc: bool = False) -> "Query":
        """Apply a window function over a single ordered partition."""
        orders = []
        if order_by is not None:
            orders.append((wrap(order_by) if not isinstance(order_by, str)
                           else Col(order_by), desc))
        return self._with("window", alias, function, orders)

    def order_by(self, *keys: Any, desc: Union[bool, Sequence[bool]] = False) -> "Query":
        """Sort; ``desc`` may be one flag or one per key."""
        if isinstance(desc, bool):
            flags = [desc] * len(keys)
        else:
            flags = list(desc)
            if len(flags) != len(keys):
                raise QueryError("desc flags must match order_by keys")
        orders = []
        for key, flag in zip(keys, flags):
            expression = Col(key) if isinstance(key, str) else wrap(key)
            orders.append((expression, flag))
        return self._with("order_by", orders)

    def distinct(self) -> "Query":
        return self._with("distinct")

    def limit(self, count: int) -> "Query":
        return self._with("limit", count)

    def union_all(self, other: Source) -> "Query":
        return self._with("union_all", other)

    # -- execution ------------------------------------------------------------

    def __iter__(self) -> Iterator[Row]:
        return self._execute()

    def rows(self) -> list[Row]:
        """Execute and materialize the result rows."""
        return list(self._execute())

    def scalar(self) -> Any:
        """Execute; return the single value of a 1x1 result."""
        result = self.rows()
        if len(result) != 1 or len(result[0]) != 1:
            raise QueryError(
                f"scalar() needs a 1x1 result, got {len(result)} rows")
        return next(iter(result[0].values()))

    def count(self) -> int:
        return sum(1 for _ in self._execute())

    def _execute(self) -> Iterator[Row]:
        morsel = (self._mode or _DEFAULT_MODE) == "morsel"
        rows = self._pushdown_source()
        if rows is None:
            rows = _iterate_source(self._source)
        for op, args in self._ops:
            if op == "where":
                rows = (executor.filter_rows_morsel(rows, args[0]) if morsel
                        else executor.filter_rows(rows, args[0]))
            elif op == "select":
                rows = (executor.project_morsel(rows, args[0]) if morsel
                        else executor.project(rows, args[0]))
            elif op == "join":
                other, left_key, right_key, how = args
                join = (executor.hash_join_morsel if morsel
                        else executor.hash_join)
                rows = join(rows, _iterate_source(other),
                            left_key, right_key, how)
            elif op == "group_by":
                rows = (executor.group_by_morsel(rows, args[0], args[1])
                        if morsel else executor.group_by(rows, args[0],
                                                         args[1]))
            elif op == "window":
                rows = iter(executor.window(rows, args[0], args[1], args[2]))
            elif op == "order_by":
                rows = iter(executor.sort(rows, args[0]))
            elif op == "distinct":
                rows = executor.distinct(rows)
            elif op == "limit":
                rows = executor.limit(rows, args[0])
            elif op == "union_all":
                rows = executor.union_all([rows, _iterate_source(args[0])])
            else:
                raise QueryError(f"unknown operation {op!r}")
        return rows

    def _pushdown_source(self) -> Optional[Iterator[Row]]:
        """Predicate pushdown onto JSON_TABLE views (paper section 6.3).

        When the source is a view exposing ``pushdown_path`` /
        ``scan_pushdown`` and the leading WHERE contains Col-vs-literal
        conjuncts over JSON_TABLE columns, those conjuncts are evaluated
        as JSON_EXISTS path predicates against the raw documents before
        row expansion.  Document-level filtering passes a superset of the
        matching rows, and the original WHERE still runs afterwards, so
        the rewrite is always sound.
        """
        if not self._ops or self._ops[0][0] != "where":
            return None
        view = self._source
        if not hasattr(view, "scan_pushdown") or not hasattr(view, "pushdown_path"):
            return None
        paths = []
        for column, op, values in _pushable_conjuncts(self._ops[0][1][0]):
            rendered = view.pushdown_path(column, op, values)
            if rendered is not None:
                paths.append(rendered)
        if not paths:
            return None
        return view.scan_pushdown(paths)

    # -- introspection ----------------------------------------------------------

    def explain(self) -> str:
        """Human-readable logical plan, one operator per line."""
        source_name = getattr(self._source, "name", type(self._source).__name__)
        lines = [f"SCAN {source_name}"]
        for op, args in self._ops:
            if op == "where":
                lines.append(f"FILTER {args[0].sql()}")
            elif op == "select":
                rendered = ", ".join(f"{e.sql()} AS {n}" for n, e in args[0])
                lines.append(f"PROJECT {rendered}")
            elif op == "join":
                lines.append(f"HASH JOIN ({args[3]}) ON {args[1]} = {args[2]}")
            elif op == "group_by":
                keys = ", ".join(n for n, _e in args[0]) or "()"
                aggs = ", ".join(f"{a.sql()} AS {alias}" for alias, a in args[1])
                lines.append(f"HASH GROUP BY {keys} AGG {aggs}")
            elif op == "window":
                lines.append(f"WINDOW {args[0]}")
            elif op == "order_by":
                keys = ", ".join(
                    e.sql() + (" DESC" if d else "") for e, d in args[0])
                lines.append(f"SORT {keys}")
            elif op == "distinct":
                lines.append("DISTINCT")
            elif op == "limit":
                lines.append(f"LIMIT {args[0]}")
            elif op == "union_all":
                lines.append("UNION ALL")
        return "\n".join(lines)
