"""Tokenizer for the SQL SELECT subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Union

from repro.errors import QueryError

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$#")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")

#: reserved words recognized by the parser (case-insensitive)
KEYWORDS = frozenset({
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "ORDER", "ASC", "DESC", "LIMIT", "AS", "AND", "OR", "NOT", "IN",
    "LIKE", "BETWEEN", "IS", "NULL", "TRUE", "FALSE", "JOIN", "LEFT",
    "INNER", "OUTER", "ON", "COUNT", "SUM", "AVG", "MIN", "MAX",
    "JSON_EXISTS", "JSON_VALUE", "JSON_TEXTCONTAINS", "JSON_DATAGUIDEAGG",
    "RETURNING", "NUMBER", "VARCHAR2", "BOOLEAN", "SUBSTR", "INSTR",
    "UPPER", "LOWER", "LENGTH", "NVL", "LAG", "OVER",
})


class T(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    STAR = "*"
    COMMA = ","
    DOT = "."
    LPAREN = "("
    RPAREN = ")"
    PLUS = "+"
    MINUS = "-"
    SLASH = "/"
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    QMARK = "?"
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    type: T
    text: str
    value: Union[str, int, float, None] = None
    position: int = -1

    def is_keyword(self, word: str) -> bool:
        return self.type is T.KEYWORD and self.text == word


def tokenize_sql(text: str) -> list[Token]:
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    pos = 0
    n = len(text)
    while pos < n:
        ch = text[pos]
        if ch in " \t\n\r":
            pos += 1
            continue
        if ch == "-" and text[pos:pos + 2] == "--":
            # line comment
            end = text.find("\n", pos)
            pos = n if end == -1 else end + 1
            continue
        start = pos
        if ch in _IDENT_START:
            end = pos + 1
            while end < n and text[end] in _IDENT_CONT:
                end += 1
            word = text[pos:end]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token(T.KEYWORD, upper, word, start)
            else:
                yield Token(T.IDENT, word, word, start)
            pos = end
        elif ch in _DIGITS:
            end = pos
            while end < n and text[end] in _DIGITS:
                end += 1
            is_float = False
            if end < n and text[end] == "." and end + 1 < n \
                    and text[end + 1] in _DIGITS:
                is_float = True
                end += 1
                while end < n and text[end] in _DIGITS:
                    end += 1
            literal = text[pos:end]
            value = float(literal) if is_float else int(literal)
            yield Token(T.NUMBER, literal, value, start)
            pos = end
        elif ch == "'":
            chunks = []
            i = pos + 1
            while True:
                if i >= n:
                    raise QueryError(f"unterminated string at {pos}")
                if text[i] == "'":
                    if text[i + 1:i + 2] == "'":  # '' escape
                        chunks.append("'")
                        i += 2
                        continue
                    break
                chunks.append(text[i])
                i += 1
            yield Token(T.STRING, text[pos:i + 1], "".join(chunks), start)
            pos = i + 1
        elif ch == "<":
            if text[pos:pos + 2] == "<=":
                yield Token(T.LE, "<=", None, start)
                pos += 2
            elif text[pos:pos + 2] == "<>":
                yield Token(T.NE, "<>", None, start)
                pos += 2
            else:
                yield Token(T.LT, "<", None, start)
                pos += 1
        elif ch == ">":
            if text[pos:pos + 2] == ">=":
                yield Token(T.GE, ">=", None, start)
                pos += 2
            else:
                yield Token(T.GT, ">", None, start)
                pos += 1
        elif ch == "!":
            if text[pos:pos + 2] != "!=":
                raise QueryError(f"unexpected '!' at {pos}")
            yield Token(T.NE, "!=", None, start)
            pos += 2
        else:
            simple = {"*": T.STAR, ",": T.COMMA, ".": T.DOT, "(": T.LPAREN,
                      ")": T.RPAREN, "+": T.PLUS, "-": T.MINUS,
                      "/": T.SLASH, "=": T.EQ, "?": T.QMARK}
            token_type = simple.get(ch)
            if token_type is None:
                raise QueryError(f"unexpected character {ch!r} at {pos}")
            yield Token(token_type, ch, None, start)
            pos += 1
    yield Token(T.EOF, "", None, n)
