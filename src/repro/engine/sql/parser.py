"""Recursive-descent parser compiling SQL SELECT text onto the engine.

The parser produces a :class:`repro.engine.query.Query`; execution reuses
the volcano operators (and therefore the JSON_EXISTS predicate pushdown
when the source is a JSON_TABLE view).

Aggregates (COUNT/SUM/AVG/MIN/MAX/JSON_DATAGUIDEAGG) are accepted as
whole select-list items, matching the paper's queries; a window function
``LAG(expr[, n[, default]]) OVER (ORDER BY key [DESC])`` is supported for
the paper's Q6.  Bind parameters are ``?`` placeholders filled from the
``params`` sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.engine import expressions as expr
from repro.engine.catalog import Database
from repro.engine.query import Query
from repro.engine.sql.lexer import T, Token, tokenize_sql
from repro.errors import QueryError


def compile_sql(db: Database, sql: str,
                params: Sequence[Any] = ()) -> Query:
    """Compile a SELECT statement into an executable Query."""
    return _Parser(db, tokenize_sql(sql), params).parse_select()


def execute_sql(db: Database, sql: str,
                params: Sequence[Any] = ()) -> list[dict]:
    """Compile and run a SELECT statement; returns the result rows."""
    return compile_sql(db, sql, params).rows()


@dataclass
class _SelectItem:
    expression: Any                      # Expression | Aggregate | _Window
    alias: Optional[str]
    is_star: bool = False

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, expr.Col):
            return self.expression.name
        if isinstance(self.expression, expr.Aggregate):
            return self.expression.sql()
        return self.expression.sql()


@dataclass
class _Window:
    """A parsed ``LAG(...) OVER (ORDER BY ...)`` occurrence.

    The parser replaces the occurrence with a reference to a generated
    column (``__lag_0`` ...); the compiled query applies the window
    operator before projection, so windows compose with arithmetic the
    way the paper's Q6 needs (``quantity - LAG(quantity, ...) OVER ...``).
    """

    name: str
    function: expr.WindowFunction
    order_key: expr.Expression
    descending: bool


class _JsonTextContains(expr.Expression):
    """JSON_TEXTCONTAINS(col, 'path', 'keywords') as a row predicate."""

    def __init__(self, column: expr.Expression, path: str,
                 keywords: str) -> None:
        self.column = column
        self.path = path
        self.keywords = keywords

    def evaluate(self, row: dict) -> Any:
        from repro.sqljson.operators import json_textcontains
        data = self.column.evaluate(row)
        if data is None:
            return False
        return json_textcontains(data, self.path, self.keywords)

    def sql(self) -> str:
        return (f"JSON_TEXTCONTAINS({self.column.sql()}, '{self.path}', "
                f"'{self.keywords}')")


_SCALAR_FUNCS = {"SUBSTR", "INSTR", "UPPER", "LOWER", "LENGTH", "NVL"}
_AGG_FUNCS = {"COUNT", "SUM", "AVG", "MIN", "MAX", "JSON_DATAGUIDEAGG"}
_CMP_TOKENS = {T.EQ: "=", T.NE: "<>", T.LT: "<", T.LE: "<=", T.GT: ">",
               T.GE: ">="}


class _Parser:
    def __init__(self, db: Database, tokens: list[Token],
                 params: Sequence[Any]) -> None:
        self._db = db
        self._tokens = tokens
        self._pos = 0
        self._params = list(params)
        self._param_index = 0
        self._windows: list[_Window] = []

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not T.EOF:
            self._pos += 1
        return token

    def _expect(self, token_type: T) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise QueryError(
                f"expected {token_type.value!r}, found "
                f"{token.text or 'end of input'!r} (at {token.position})")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise QueryError(
                f"expected {word}, found {token.text or 'end of input'!r}")
        return self._advance()

    def _match_keyword(self, *words: str) -> Optional[str]:
        token = self._peek()
        for word in words:
            if token.is_keyword(word):
                self._advance()
                return word
        return None

    def _next_param(self) -> Any:
        if self._param_index >= len(self._params):
            raise QueryError("not enough bind parameters for '?' markers")
        value = self._params[self._param_index]
        self._param_index += 1
        return value

    # -- SELECT -----------------------------------------------------------------

    def parse_select(self) -> Query:
        self._expect_keyword("SELECT")
        distinct = self._match_keyword("DISTINCT") is not None
        items = self._parse_select_list()
        self._expect_keyword("FROM")
        query = self._parse_from()
        if self._match_keyword("WHERE"):
            query = query.where(self._parse_or())
        group_keys: list[Any] = []
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_keys = self._parse_expression_list()
        aggregated = any(isinstance(i.expression, expr.Aggregate)
                         for i in items) or bool(group_keys)
        output_names = [i.output_name() for i in items if not i.is_star]
        if aggregated:
            # aggregation collapses rows, so it must precede HAVING/ORDER
            query, output_names = self._apply_select(query, items, group_keys)
        if self._match_keyword("HAVING"):
            query = query.having(self._parse_or())
        orders = None
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            orders = self._parse_order_keys(output_names)
        if not aggregated:
            # ORDER BY may reference non-projected base columns (standard
            # SQL), so the sort runs before the projection unless every
            # key is an output column
            if orders is not None and not self._orders_use_outputs(
                    orders, output_names):
                query = query.order_by(*[k for k, _d in orders],
                                       desc=[d for _k, d in orders])
                orders = None
            query, output_names = self._apply_select(query, items,
                                                     group_keys)
        if orders is not None:
            query = query.order_by(*[k for k, _d in orders],
                                   desc=[d for _k, d in orders])
        if distinct:
            query = query.distinct()
        if self._match_keyword("LIMIT"):
            count = self._expect(T.NUMBER)
            query = query.limit(int(count.value))
        token = self._peek()
        if token.type is not T.EOF:
            raise QueryError(f"unexpected {token.text!r} after statement")
        if self._param_index != len(self._params):
            raise QueryError("too many bind parameters supplied")
        return query

    def _parse_select_list(self) -> list[_SelectItem]:
        items = [self._parse_select_item()]
        while self._peek().type is T.COMMA:
            self._advance()
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> _SelectItem:
        if self._peek().type is T.STAR:
            self._advance()
            return _SelectItem(None, None, is_star=True)
        expression = self._parse_additive()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect(T.IDENT).text
        elif self._peek().type is T.IDENT:
            alias = self._advance().text
        return _SelectItem(expression, alias)

    # -- FROM / JOIN ---------------------------------------------------------------

    def _parse_from(self) -> Query:
        query = self._db.query(self._expect(T.IDENT).text)
        while True:
            how = None
            if self._match_keyword("JOIN"):
                how = "inner"
            elif self._peek().is_keyword("LEFT"):
                self._advance()
                self._match_keyword("OUTER")
                self._expect_keyword("JOIN")
                how = "left"
            elif self._peek().is_keyword("INNER"):
                self._advance()
                self._expect_keyword("JOIN")
                how = "inner"
            if how is None:
                return query
            right = self._db.query(self._expect(T.IDENT).text)
            self._expect_keyword("ON")
            left_key = self._parse_column_name()
            self._expect(T.EQ)
            right_key = self._parse_column_name()
            query = query.join(right, left_key, right_key, how=how)

    def _parse_column_name(self) -> str:
        name = self._expect(T.IDENT).text
        if self._peek().type is T.DOT:
            self._advance()
            name = self._expect(T.IDENT).text  # strip the table qualifier
        return name

    # -- SELECT-list application ------------------------------------------------------

    def _apply_select(self, query: Query, items: list[_SelectItem],
                      group_keys: list[Any]) -> tuple[Query, list[str]]:
        aggregates = {i.output_name(): i.expression for i in items
                      if isinstance(i.expression, expr.Aggregate)}
        if aggregates or group_keys:
            if self._windows:
                raise QueryError(
                    "window functions cannot be mixed with GROUP BY")
            key_outputs = []
            output_names = []
            for item in items:
                if isinstance(item.expression, expr.Aggregate):
                    output_names.append(item.output_name())
                    continue
                if item.is_star:
                    raise QueryError("SELECT * is invalid with GROUP BY")
                name = item.output_name()
                key_outputs.append(item.expression.as_(name))
                output_names.append(name)
            if not key_outputs and group_keys:
                # grouping keys not projected: group by them anonymously
                key_outputs = [k.as_(k.sql()) if not isinstance(k, expr.Col)
                               else k for k in group_keys]
            query = query.group_by(key_outputs, **aggregates)
            # note: non-aggregate select items are used as the grouping
            # keys (the supported subset requires them to coincide)
            return query, output_names
        # non-aggregate query: apply pending windows before projection so
        # select expressions can reference the generated __lag_N columns
        for window in self._windows:
            query = query.window(window.name, window.function,
                                 order_by=window.order_key,
                                 desc=window.descending)
        if any(i.is_star for i in items):
            if len(items) != 1:
                raise QueryError("SELECT * cannot be combined with columns")
            return query, []
        outputs = [i.expression.as_(i.output_name()) for i in items]
        return query.select(*outputs), [i.output_name() for i in items]

    @staticmethod
    def _normalize(item: Any) -> tuple[str, Any]:
        from repro.engine.executor import normalize_output
        return normalize_output(item)

    def _parse_order_keys(self, output_names: list[str]
                          ) -> list[tuple[Any, bool]]:
        orders: list[tuple[Any, bool]] = []
        while True:
            token = self._peek()
            if token.type is T.NUMBER:
                self._advance()
                ordinal = int(token.value)
                if not 1 <= ordinal <= len(output_names):
                    raise QueryError(
                        f"ORDER BY position {ordinal} out of range")
                key: Any = output_names[ordinal - 1]
            else:
                key = self._parse_additive()
            descending = self._match_keyword("DESC") is not None
            if not descending:
                self._match_keyword("ASC")
            orders.append((key, descending))
            if self._peek().type is T.COMMA:
                self._advance()
                continue
            return orders

    @staticmethod
    def _orders_use_outputs(orders: list[tuple[Any, bool]],
                            output_names: list[str]) -> bool:
        for key, _descending in orders:
            if isinstance(key, str):
                if key not in output_names:
                    return False
            elif isinstance(key, expr.Col):
                if key.name not in output_names:
                    return False
            else:
                return False  # expression keys sort before projection
        return True

    def _parse_expression_list(self) -> list[Any]:
        out = [self._parse_additive()]
        while self._peek().type is T.COMMA:
            self._advance()
            out.append(self._parse_additive())
        return out

    # -- boolean expressions --------------------------------------------------------------

    def _parse_or(self) -> expr.Expression:
        parts = [self._parse_and()]
        while self._match_keyword("OR"):
            parts.append(self._parse_and())
        return parts[0] if len(parts) == 1 else expr.Or(*parts)

    def _parse_and(self) -> expr.Expression:
        parts = [self._parse_not()]
        while self._match_keyword("AND"):
            parts.append(self._parse_not())
        return parts[0] if len(parts) == 1 else expr.And(*parts)

    def _parse_not(self) -> expr.Expression:
        if self._match_keyword("NOT"):
            return expr.Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> expr.Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.type in _CMP_TOKENS:
            self._advance()
            right = self._parse_additive()
            return expr.Comparison(_CMP_TOKENS[token.type], left, right)
        if token.is_keyword("IS"):
            self._advance()
            negate = self._match_keyword("NOT") is not None
            self._expect_keyword("NULL")
            return left.is_not_null() if negate else left.is_null()
        negate = self._match_keyword("NOT") is not None
        if self._match_keyword("IN"):
            self._expect(T.LPAREN)
            values = [self._parse_literal_value()]
            while self._peek().type is T.COMMA:
                self._advance()
                values.append(self._parse_literal_value())
            self._expect(T.RPAREN)
            predicate: expr.Expression = left.in_(values)
            return expr.Not(predicate) if negate else predicate
        if self._match_keyword("LIKE"):
            pattern = self._expect(T.STRING)
            predicate = left.like(pattern.value)
            return expr.Not(predicate) if negate else predicate
        if self._match_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            predicate = expr.And(expr.Comparison(">=", left, low),
                                 expr.Comparison("<=", left, high))
            return expr.Not(predicate) if negate else predicate
        if negate:
            raise QueryError("expected IN, LIKE or BETWEEN after NOT")
        # bare boolean expression (e.g. JSON_EXISTS(...))
        return left

    def _parse_literal_value(self) -> Any:
        token = self._peek()
        if token.type is T.QMARK:
            self._advance()
            return self._next_param()
        if token.type is T.STRING or token.type is T.NUMBER:
            self._advance()
            return token.value
        if token.type is T.MINUS:
            self._advance()
            number = self._expect(T.NUMBER)
            return -number.value
        raise QueryError(f"expected literal, found {token.text!r}")

    # -- scalar expressions ------------------------------------------------------------------

    @staticmethod
    def _no_aggregate_arithmetic(value: Any) -> Any:
        if isinstance(value, expr.Aggregate):
            raise QueryError(
                "aggregates cannot appear inside arithmetic; aggregate the "
                "whole expression instead (e.g. SUM(a * b))")
        return value

    def _parse_additive(self) -> expr.Expression:
        left = self._parse_term()
        while True:
            token = self._peek()
            if token.type is T.PLUS:
                self._advance()
                left = (self._no_aggregate_arithmetic(left)
                        + self._no_aggregate_arithmetic(self._parse_term()))
            elif token.type is T.MINUS:
                self._advance()
                left = (self._no_aggregate_arithmetic(left)
                        - self._no_aggregate_arithmetic(self._parse_term()))
            else:
                return left

    def _parse_term(self) -> expr.Expression:
        left = self._parse_value()
        while True:
            token = self._peek()
            if token.type is T.STAR:
                self._advance()
                left = (self._no_aggregate_arithmetic(left)
                        * self._no_aggregate_arithmetic(self._parse_value()))
            elif token.type is T.SLASH:
                self._advance()
                left = (self._no_aggregate_arithmetic(left)
                        / self._no_aggregate_arithmetic(self._parse_value()))
            else:
                return left

    def _parse_value(self) -> Any:
        token = self._peek()
        if token.type is T.NUMBER or token.type is T.STRING:
            self._advance()
            return expr.Literal(token.value)
        if token.type is T.QMARK:
            self._advance()
            return expr.Literal(self._next_param())
        if token.type is T.MINUS:
            self._advance()
            return expr.Literal(0) - self._parse_value()
        if token.type is T.LPAREN:
            self._advance()
            inner = self._parse_or()
            self._expect(T.RPAREN)
            return inner
        if token.is_keyword("NULL"):
            self._advance()
            return expr.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return expr.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return expr.Literal(False)
        if token.type is T.KEYWORD:
            return self._parse_function(token)
        if token.type is T.IDENT:
            name = self._parse_column_name()
            return expr.Col(name)
        raise QueryError(f"unexpected {token.text or 'end of input'!r} "
                         f"in expression")

    def _parse_function(self, token: Token) -> Any:
        word = token.text
        if word in _AGG_FUNCS:
            return self._parse_aggregate(word)
        if word in _SCALAR_FUNCS:
            self._advance()
            self._expect(T.LPAREN)
            args = [self._parse_additive()]
            while self._peek().type is T.COMMA:
                self._advance()
                args.append(self._parse_additive())
            self._expect(T.RPAREN)
            factory = {"SUBSTR": expr.SUBSTR, "INSTR": expr.INSTR,
                       "UPPER": expr.UPPER, "LOWER": expr.LOWER,
                       "LENGTH": expr.LENGTH, "NVL": expr.NVL}[word]
            return factory(*args)
        if word == "JSON_VALUE":
            self._advance()
            self._expect(T.LPAREN)
            column = self._parse_additive()
            self._expect(T.COMMA)
            path = self._expect(T.STRING).value
            returning = None
            if self._match_keyword("RETURNING"):
                returning = self._parse_returning_type()
            self._expect(T.RPAREN)
            return expr.JsonValueExpr(column, path, returning=returning)
        if word == "JSON_EXISTS":
            self._advance()
            self._expect(T.LPAREN)
            column = self._parse_additive()
            self._expect(T.COMMA)
            path = self._expect(T.STRING).value
            self._expect(T.RPAREN)
            return expr.JsonExistsExpr(column, path)
        if word == "JSON_TEXTCONTAINS":
            self._advance()
            self._expect(T.LPAREN)
            column = self._parse_additive()
            self._expect(T.COMMA)
            path = self._expect(T.STRING).value
            self._expect(T.COMMA)
            keywords = self._expect(T.STRING).value
            self._expect(T.RPAREN)
            return _JsonTextContains(column, path, keywords)
        if word == "LAG":
            self._advance()
            self._expect(T.LPAREN)
            operand = self._parse_additive()
            offset = 1
            default = None
            if self._peek().type is T.COMMA:
                self._advance()
                offset = int(self._expect(T.NUMBER).value)
                if self._peek().type is T.COMMA:
                    self._advance()
                    default = self._parse_additive()
            self._expect(T.RPAREN)
            self._expect_keyword("OVER")
            self._expect(T.LPAREN)
            self._expect_keyword("ORDER")
            self._expect_keyword("BY")
            order_key = self._parse_additive()
            descending = self._match_keyword("DESC") is not None
            if not descending:
                self._match_keyword("ASC")
            self._expect(T.RPAREN)
            name = f"__lag_{len(self._windows)}"
            self._windows.append(_Window(name, expr.LAG(operand, offset,
                                                        default),
                                         order_key, descending))
            return expr.Col(name)
        raise QueryError(f"unexpected keyword {word} in expression")

    def _parse_aggregate(self, word: str) -> expr.Aggregate:
        self._advance()
        self._expect(T.LPAREN)
        if word == "COUNT" and self._peek().type is T.STAR:
            self._advance()
            self._expect(T.RPAREN)
            return expr.COUNT()
        operand = self._parse_additive()
        self._expect(T.RPAREN)
        if word == "JSON_DATAGUIDEAGG":
            from repro.core.dataguide import JsonDataGuideAgg
            return JsonDataGuideAgg(operand)
        factory = {"COUNT": expr.COUNT, "SUM": expr.SUM, "AVG": expr.AVG,
                   "MIN": expr.MIN, "MAX": expr.MAX}[word]
        return factory(operand)

    def _parse_returning_type(self) -> str:
        token = self._peek()
        if token.is_keyword("NUMBER"):
            self._advance()
            return "number"
        if token.is_keyword("BOOLEAN"):
            self._advance()
            return "boolean"
        if token.is_keyword("VARCHAR2"):
            self._advance()
            self._expect(T.LPAREN)
            size = self._expect(T.NUMBER)
            self._expect(T.RPAREN)
            return f"varchar2({int(size.value)})"
        raise QueryError(f"unsupported RETURNING type {token.text!r}")
