"""A SQL SELECT front-end for the engine.

The paper's position is that SQL stays the inter-document query language
(section 1, third principle).  This package provides a textual SQL layer
over the query builder so the paper's queries can be written verbatim::

    from repro.engine.sql import execute_sql

    rows = execute_sql(db, '''
        SELECT costcenter, COUNT(*) AS n
        FROM po_item_dmdv
        WHERE partno = '97361551647'
        GROUP BY costcenter
        ORDER BY n DESC
    ''')

Supported grammar (a deliberate subset — see :mod:`.parser`):
SELECT [DISTINCT] select-list, FROM table/view [JOIN ... ON a = b],
WHERE with AND/OR/NOT/comparisons/IN/LIKE/BETWEEN/IS NULL and the
SQL/JSON predicates JSON_EXISTS / JSON_VALUE / JSON_TEXTCONTAINS,
GROUP BY, HAVING, ORDER BY ... [ASC|DESC], LIMIT, and the aggregate
functions COUNT/SUM/AVG/MIN/MAX plus JSON_DATAGUIDEAGG.
"""

from repro.engine.sql.parser import compile_sql, execute_sql

__all__ = ["compile_sql", "execute_sql"]
