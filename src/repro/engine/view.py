"""Views: named relational windows over tables or queries.

Two flavours are used in the reproduction:

* :class:`QueryView` — a stored :class:`~repro.engine.query.Query`
  (the REL storage's ``po_item_dmdv`` join view in Figure 3);
* :class:`JsonTableView` — a JSON_TABLE() expansion over a table's JSON
  column, the physical form of the DataGuide-generated DMDV views of
  section 3.3.2.  Its ``scan()`` computes rows from the base documents —
  this is where the per-format decode cost is paid — except that
  expansions of immutable OSON images are memoized in the bounded DMDV
  row cache (``sqljson.jsontable_rows``), the reproduction's stand-in
  for the paper's in-memory materialized DMDVs; TEXT documents re-parse
  on every execution, which is exactly the TEXT-mode cost model.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from repro.engine.query import Query
from repro.engine.table import Table
from repro.errors import PathEvaluationError
from repro.sqljson.adapters import adapter_for
from repro.sqljson.json_table import JsonTable
from repro.sqljson.operators import json_exists
from repro.sqljson.path.evaluator import evaluator_for
from repro.sqljson.path.parser import compile_path

#: comparison-operator spellings accepted in pushdown conjuncts
_PUSHDOWN_OPS = {"=": "==", "<>": "!=", "<": "<", "<=": "<=",
                 ">": ">", ">=": ">="}


def _render_json_literal(value: Any) -> Optional[str]:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return None


def render_pushdown_path(absolute_path: str, op: str,
                         values: Sequence[Any]) -> Optional[str]:
    """Render ``column op value`` as a JSON_EXISTS path predicate, e.g.
    ``$.purchaseOrder.items[*].partno?(@ == "97361551647")``.

    Returns None when the operator or literal cannot be expressed (the
    engine then falls back to plain row filtering).
    """
    path_op = _PUSHDOWN_OPS.get(op)
    if path_op is None or not values:
        return None
    clauses = []
    for value in values:
        literal = _render_json_literal(value)
        if literal is None:
            return None
        clauses.append(f"@ {path_op} {literal}")
    return f"{absolute_path}?({' || '.join(clauses)})"


def _exists_quiet(evaluator: Any, adapter: Any) -> bool:
    """JSON_EXISTS semantics over a prebuilt adapter: evaluation errors
    mean "does not exist", matching :func:`json_exists`."""
    try:
        return evaluator.exists(adapter)
    except PathEvaluationError:
        return False


class View:
    """Base class so Query sources can treat views like tables."""

    name: str

    def scan(self) -> Iterator[dict[str, Any]]:
        raise NotImplementedError

    def query(self) -> Query:
        return Query(self)


class QueryView(View):
    """A view defined by a stored query."""

    def __init__(self, name: str, query: Query) -> None:
        self.name = name
        self._query = query

    def scan(self) -> Iterator[dict[str, Any]]:
        return iter(self._query.rows())


class JsonTableView(View):
    """A view computed by expanding a JSON column through JSON_TABLE.

    ``include_columns`` lists base-table columns carried alongside the
    JSON_TABLE outputs (e.g. the DID primary key in the paper's PO_RV
    view of Table 8).
    """

    def __init__(self, name: str, table: Table, json_column: str,
                 json_table: JsonTable,
                 include_columns: Optional[list[str]] = None) -> None:
        self.name = name
        self.table = table
        self.json_column = json_column
        self.json_table = json_table
        self.include_columns = list(include_columns or [])

    @property
    def column_names(self) -> list[str]:
        return self.include_columns + list(self.json_table.column_names)

    def scan(self) -> Iterator[dict[str, Any]]:
        return self.scan_pushdown(None)

    def pushdown_path(self, column: str, op: str,
                      values: Sequence[Any]) -> Optional[str]:
        """Translate one WHERE conjunct (column, op, literal values) into
        a JSON_EXISTS path predicate, or None if it cannot be pushed
        (unknown column, unsupported operator or literal)."""
        absolute = self.json_table.absolute_paths.get(column)
        if absolute is None:
            return None
        return render_pushdown_path(absolute, op, values)

    def scan_pushdown(self, exists_paths: Optional[Sequence[str]]
                      ) -> Iterator[dict[str, Any]]:
        """Scan with document-level JSON_EXISTS pre-filtering.

        This is the paper's pushdown (section 6.3): predicates run as
        path filters against the raw document *before* the JSON_TABLE
        expansion, so non-matching documents never pay the row-generation
        cost.  Document-level filtering is a superset of the row-level
        predicate (a document passes if *any* nested row matches), so the
        engine still applies the original WHERE afterwards.

        The pushdown paths compile once per scan and each non-text
        document's adapter is built once and shared by every predicate
        probe plus the JSON_TABLE expansion; textual documents keep
        paying the per-operator parse, which is exactly the TEXT-mode
        cost the paper charges.
        """
        return self._expand_rows(self.table.scan(), exists_paths)

    def _expand_rows(self, base_rows: Iterator[dict[str, Any]],
                     exists_paths: Optional[Sequence[str]] = None
                     ) -> Iterator[dict[str, Any]]:
        """JSON_TABLE-expand a stream of base-table rows (the body of
        :meth:`scan_pushdown`, shared with per-shard scatter streams)."""
        evaluators = None
        if exists_paths is not None:
            evaluators = [evaluator_for(compile_path(p))
                          for p in exists_paths]
        include_columns = self.include_columns
        json_table = self.json_table
        for base_row in base_rows:
            data = base_row.get(self.json_column)
            if data is None:
                continue
            if isinstance(data, str):
                # TEXT storage: per-operator re-parse, by design
                if exists_paths is not None:
                    if not all(json_exists(data, p) for p in exists_paths):
                        continue
                json_rows = json_table.rows(data)
            else:
                adapter = adapter_for(data)
                # a memoized DMDV expansion beats even the pushdown
                # probe; the engine's residual WHERE keeps results exact
                json_rows = json_table.cached_rows(adapter)
                if json_rows is None:
                    if evaluators is not None and not all(
                            _exists_quiet(e, adapter) for e in evaluators):
                        continue
                    json_rows = json_table.rows_with_adapter(adapter)
            for json_row in json_rows:
                out = {name: base_row[name] for name in include_columns}
                out.update(json_row)
                yield out

    # -- scatter-gather (sharded base tables) -------------------------------

    def shard_plan(self) -> Optional[Any]:
        """Scatter plan over the base table's shards: each shard's
        stream is that shard's base rows pushed through the same
        JSON_TABLE expansion as :meth:`scan`, so the fused per-shard
        pipeline computes exactly what the single-stream scan would.

        Pruning paths nest the JSON_TABLE column mapping under the JSON
        column (``$.jdoc.purchaseOrder.items.partno``) with ``[*]``
        steps dropped — DataGuide paths do not spell array traversal.
        That only works when the shard guides can actually see inside
        the documents: a column stored as OSON bytes (``{"$raw": ...}``
        wrapper) or TEXT is opaque to the base store's guide, and
        pruning on "path absent" there would wrongly skip every shard —
        so pruning is offered only when every non-empty shard indexes
        the column as a JSON object.  Routing-equality pruning is not
        offered: a view column's values are nested projections, not the
        base routing field.
        """
        base_fn = getattr(self.table, "shard_plan", None)
        if base_fn is None:
            return None
        base = base_fn()
        if base is None:
            return None
        from repro.core.dataguide.model import child_path
        from repro.engine.scatter import ShardInput, ShardPlanInfo
        shards = [ShardInput(shard.index,
                             lambda shard=shard: self._expand_rows(
                                 shard.rows()),
                             shard.guide)
                  for shard in base.shards]
        column_root = child_path("$", self.json_column)
        opaque = any(
            entry.path == column_root and entry.kind != "object"
            for shard in base.shards for entry in shard.guide.entries())
        if opaque:
            return ShardPlanInfo(self.name, shards, lambda column: None,
                                 health=base.health)
        return ShardPlanInfo(
            self.name, shards,
            lambda column: self._prune_path(column_root, column),
            health=base.health)

    def _prune_path(self, column_root: str,
                    column: str) -> Optional[str]:
        absolute = self.json_table.absolute_paths.get(column)
        if absolute is None or not absolute.startswith("$"):
            return None
        return column_root + absolute[1:].replace("[*]", "")
