"""CreateViewOnPath: generate De-normalized Master-Detail Views (section 3.3.2).

Given a computed DataGuide, build the JSON_TABLE() specification that
projects the whole document hierarchy relationally:

* singleton scalar paths become plain columns;
* arrays become NESTED PATH clauses (left-outer-join to the parent);
* sibling arrays become sibling NESTED PATHs (union join);
* a frequency threshold can drop sparse/outlier fields, and DataGuide
  annotations (renames, exclusions, length overrides) are honoured.

``create_view_on_path`` registers the resulting
:class:`~repro.engine.view.JsonTableView` in a catalog; ``build_json_table``
returns just the :class:`~repro.sqljson.json_table.JsonTable` for callers
that manage views themselves.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.dataguide import model
from repro.core.dataguide.guide import DataGuide, _split_path
from repro.core.dataguide.model import PathEntry
from repro.engine.catalog import Database
from repro.engine.table import Table
from repro.engine.view import JsonTableView
from repro.errors import DataGuideError
from repro.sqljson.json_table import ColumnDef, JsonTable, NestedPath


class _Node:
    """Path-tree node assembled from DataGuide entries."""

    __slots__ = ("name", "children", "kinds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.children: dict[str, "_Node"] = {}
        self.kinds: dict[str, PathEntry] = {}  # kind -> entry

    def child(self, name: str) -> "_Node":
        node = self.children.get(name)
        if node is None:
            node = _Node(name)
            self.children[name] = node
        return node


def _build_tree(guide: DataGuide) -> _Node:
    root = _Node("$")
    for entry in guide.entries():
        node = root
        for step in _split_path(entry.path):
            node = node.child(step)
        node.kinds[entry.kind] = entry
    return root


def _locate(root: _Node, path: str) -> _Node:
    node = root
    for step in _split_path(path):
        if step not in node.children:
            raise DataGuideError(f"path {path!r} not present in the DataGuide")
        node = node.children[step]
    return node


def _varchar_size(entry: PathEntry, override: Optional[int]) -> int:
    if override is not None:
        return override
    # round the observed maximum up to a comfortable bucket
    length = max(entry.max_length, 1)
    for bucket in (8, 16, 32, 64, 128, 256, 1024, 4000):
        if length <= bucket:
            return bucket
    return 32767


def _sql_type_for(entry: PathEntry, override_length: Optional[int]) -> str:
    if entry.scalar_type == model.NUMBER:
        return "number"
    if entry.scalar_type == model.BOOLEAN:
        return "boolean"
    return f"varchar2({_varchar_size(entry, override_length)})"


class _ViewSpecBuilder:
    """Walks the path tree emitting ColumnDefs and NestedPaths."""

    def __init__(self, guide: DataGuide, column_prefix: str,
                 frequency_threshold: Optional[float]) -> None:
        self.guide = guide
        self.prefix = column_prefix
        self.threshold = frequency_threshold
        self.used_names: set[str] = set()

    def _keep(self, entry: PathEntry) -> bool:
        if entry.path in self.guide.annotations.excluded:
            return False
        if self.threshold is None or self.guide.document_count == 0:
            return True
        return (100.0 * entry.frequency / self.guide.document_count
                >= self.threshold)

    def _column_name(self, entry: PathEntry, steps: Sequence[str]) -> str:
        rename = self.guide.annotations.renames.get(entry.path)
        if rename is not None:
            name = rename
        else:
            name = f"{self.prefix}${steps[-1]}" if steps else f"{self.prefix}$value"
        # disambiguate collisions by prepending ancestor steps
        if name in self.used_names:
            qualified = "$".join(steps) or "value"
            name = f"{self.prefix}${qualified}"
        suffix = 2
        base = name
        while name in self.used_names:
            name = f"{base}_{suffix}"
            suffix += 1
        self.used_names.add(name)
        return name

    def build(self, node: _Node, steps: tuple[str, ...] = (),
              relative_to: tuple[str, ...] = ()) -> list[Union[ColumnDef, NestedPath]]:
        """Emit the column list for the context ``node``.

        ``steps`` is the absolute step list (for naming); ``relative_to``
        is the prefix already consumed by enclosing NESTED PATHs, so
        column paths are relative to the current row context.
        """
        items: list[Union[ColumnDef, NestedPath]] = []
        # scalar entry directly on the context node (array-of-scalar case)
        scalar_here = node.kinds.get(model.SCALAR)
        if scalar_here is not None and steps == relative_to and self._keep(scalar_here):
            override = self.guide.annotations.length_overrides.get(scalar_here.path)
            items.append(ColumnDef(
                self._column_name(scalar_here, steps),
                _sql_type_for(scalar_here, override),
                "$"))
        for name, child in sorted(node.children.items()):
            child_steps = steps + (name,)
            relative_path = "$" + "".join(
                _render_step(s) for s in child_steps[len(relative_to):])
            scalar = child.kinds.get(model.SCALAR)
            if (scalar is not None and scalar.in_array
                    and model.ARRAY in child.kinds):
                # array-of-scalar: the element column is emitted inside the
                # NESTED PATH below, not at this level
                scalar = None
            if scalar is not None and self._keep(scalar):
                override = self.guide.annotations.length_overrides.get(scalar.path)
                items.append(ColumnDef(
                    self._column_name(scalar, child_steps),
                    _sql_type_for(scalar, override),
                    relative_path))
            if model.ARRAY in child.kinds and self._keep(child.kinds[model.ARRAY]):
                nested_columns = self.build(child, child_steps, child_steps)
                items.append(NestedPath(f"{relative_path}[*]", nested_columns))
            elif model.OBJECT in child.kinds:
                items.extend(self.build(child, child_steps, relative_to))
        return items


def _render_step(name: str) -> str:
    if name.isidentifier():
        return f".{name}"
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    return f'."{escaped}"'


def build_json_table(guide: DataGuide, path: str = "$",
                     column_prefix: str = "JCOL",
                     frequency_threshold: Optional[float] = None) -> JsonTable:
    """Build the DMDV JSON_TABLE spec for the subtree at ``path``."""
    root = _build_tree(guide)
    context = _locate(root, path) if path != "$" else root
    builder = _ViewSpecBuilder(guide, column_prefix, frequency_threshold)
    context_steps = tuple(_split_path(path)) if path != "$" else ()
    # when targeting an array path directly (e.g. '$.purchaseOrder.items'),
    # the row path un-nests it; otherwise rows are whole documents
    row_path = f"{path}[*]" if model.ARRAY in context.kinds else path
    columns = builder.build(context, context_steps, context_steps)
    if not columns:
        raise DataGuideError(f"no projectable fields under {path!r}")
    return JsonTable(row_path, columns)


def create_view_on_path(db: Database, table: Table, json_column: str,
                        guide: DataGuide, path: str = "$",
                        view_name: Optional[str] = None,
                        include_columns: Optional[list[str]] = None,
                        frequency_threshold: Optional[float] = None) -> JsonTableView:
    """``CreateViewOnPath``: register a DMDV view over ``table.json_column``.

    ``include_columns`` carries base-table columns (e.g. the primary key)
    into the view, as the paper's PO_RV view does with DID.
    """
    if not table.has_column(json_column):
        raise DataGuideError(
            f"table {table.name} has no column {json_column!r}")
    name = view_name or f"{table.name}_RV"
    json_table = build_json_table(guide, path,
                                  column_prefix=json_column,
                                  frequency_threshold=frequency_threshold)
    view = JsonTableView(name, table, json_column, json_table,
                         include_columns=include_columns)
    db.register_view(view)
    return view
