"""The persistent DataGuide (section 3.2).

Maintained as a component of the JSON search index: every inserted
document's skeleton is merged into the in-memory builder, and *only new
or structurally changed* (path, kind) entries are written to the ``$DG``
table.  On structurally homogeneous collections the per-document work is
one skeleton extraction plus set lookups — the cheap no-change path whose
cost Figure 7 isolates.

The persistent DataGuide is **additive**: deletes do not remove paths
(section 3.4's opening note); a fresh transient aggregation is the way to
get a shrunken view.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.core.dataguide.builder import instance_entries
from repro.core.dataguide.guide import DataGuide
from repro.core.dataguide.model import PathEntry


class PersistentDataGuide:
    """Incremental DataGuide state embedded in a JSON search index."""

    def __init__(self, dg_table: Optional["DgTable"] = None,  # noqa: F821
                 index_name: str = "JSIDX") -> None:
        # imported lazily: repro.index.dg_table imports this package's
        # model module, so a top-level import would be circular whichever
        # package loads first
        from repro.index.dg_table import DgTable
        self._entries: dict[tuple[str, str], PathEntry] = {}
        self.dg_table = dg_table if dg_table is not None else DgTable(index_name)
        self.documents_seen = 0

    # -- maintenance --------------------------------------------------------

    def on_document(self, value: Any) -> int:
        """Merge one (already parsed) document; returns the number of
        ``$DG`` rows written (0 on the homogeneous fast path)."""
        self.documents_seen += 1
        writes = 0
        for key, entry in instance_entries(value).items():
            existing = self._entries.get(key)
            if existing is None:
                self._entries[key] = entry
                self.dg_table.record_new(entry)
                writes += 1
            else:
                structural_change = existing.merge_in_place(entry)
                if structural_change:
                    self.dg_table.refresh(existing)
                    writes += 1
        return writes

    def rebuild(self, documents: Iterable[Any]) -> int:
        """Build from scratch over an existing collection (index creation)."""
        count = 0
        for document in documents:
            self.on_document(document)
            count += 1
        return count

    def compute_statistics(self) -> int:
        """Flush accumulated statistics into the ``$DG`` stats columns."""
        return self.dg_table.write_statistics(list(self._entries.values()))

    # -- access ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def get_dataguide(self) -> DataGuide:
        """``getDataGuide()``: snapshot as a queryable/annotatable guide."""
        return DataGuide(list(self._entries.values()), self.documents_seen)

    def as_flat(self) -> list[dict[str, Any]]:
        return self.get_dataguide().as_flat()

    def as_hierarchical(self) -> dict[str, Any]:
        return self.get_dataguide().as_hierarchical()


def attach_dataguide(table: Any, column: str,
                     index_name: str = "DG") -> PersistentDataGuide:
    """Fuse DataGuide maintenance directly into a table's IS JSON
    constraint, without a full JSON search index.

    This is the exact integration Figure 7/8 measures: the constraint
    already parses the document, and the DataGuide's structural check
    rides on that parse.  The table must carry an
    :class:`~repro.engine.constraints.IsJsonConstraint` on ``column``.
    """
    constraint = table.is_json_constraint(column)
    if constraint is None:
        from repro.errors import DataGuideError
        raise DataGuideError(
            f"table {table.name} has no IS JSON constraint on {column!r}")
    pdg = PersistentDataGuide(index_name=index_name)

    def hook(_row: dict, parsed: Any) -> None:
        pdg.on_document(parsed)

    constraint.add_hook(hook)
    return pdg
