"""JSON DataGuide: the auto-computed dynamic soft schema (paper section 3).

* :mod:`~repro.core.dataguide.model` — path entries and the scalar type
  lattice used when merging instance skeletons;
* :mod:`~repro.core.dataguide.builder` — per-instance skeleton extraction
  and the collection-merge builder;
* :mod:`~repro.core.dataguide.guide` — the DataGuide object with its flat
  and hierarchical JSON representations;
* :mod:`~repro.core.dataguide.aggregate` — JSON_DATAGUIDEAGG, the
  transient DataGuide as a SQL aggregate (section 3.4);
* :mod:`~repro.core.dataguide.persistent` — the persistent DataGuide
  maintained with the JSON search index (section 3.2);
* :mod:`~repro.core.dataguide.views` — ``CreateViewOnPath``: DMDV view
  generation via JSON_TABLE (section 3.3.2);
* :mod:`~repro.core.dataguide.virtual_columns` — ``AddVC``: JSON_VALUE
  virtual columns (section 3.3.1).
"""

from repro.core.dataguide.aggregate import JsonDataGuideAgg, json_dataguide_agg
from repro.core.dataguide.builder import DataGuideBuilder, instance_entries
from repro.core.dataguide.guide import DataGuide
from repro.core.dataguide.model import PathEntry, generalize_scalar_type
from repro.core.dataguide.persistent import PersistentDataGuide
from repro.core.dataguide.views import create_view_on_path
from repro.core.dataguide.virtual_columns import add_vc

__all__ = [
    "DataGuide",
    "DataGuideBuilder",
    "PathEntry",
    "PersistentDataGuide",
    "JsonDataGuideAgg",
    "json_dataguide_agg",
    "instance_entries",
    "generalize_scalar_type",
    "create_view_on_path",
    "add_vc",
]
