"""JSON_DATAGUIDEAGG: the transient DataGuide as a SQL aggregate (section 3.4).

Two entry points:

* :func:`json_dataguide_agg` — the functional form: aggregate any
  iterable of JSON documents (text, OSON/BSON bytes or Python values),
  with optional Bernoulli sampling matching ``FROM po SAMPLE (50)``;
* :class:`JsonDataGuideAgg` — the engine aggregate, usable inside
  ``Query.group_by`` exactly like the paper's Q2
  (``select json_dataguideagg(jcol) from po group by insertion_date``).

Because the transient DataGuide is computed by a plain aggregation over a
query result, it works over filtered subsets (Q3) and over external row
sources — no index, no stored schema.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Optional

from repro.core.dataguide.builder import DataGuideBuilder
from repro.core.dataguide.guide import DataGuide
from repro.engine.expressions import Aggregate, AggregateState, Col, Expression


def _parse_any(data: Any) -> Any:
    """Accept a JSON document in any physical form."""
    if isinstance(data, str):
        from repro.jsontext import loads
        return loads(data)
    if isinstance(data, (bytes, bytearray)):
        raw = bytes(data)
        if raw[:4] == b"OSON":
            from repro.core.oson import decode
            return decode(raw)
        from repro.bson import decode as bson_decode
        return bson_decode(raw)
    return data


def json_dataguide_agg(documents: Iterable[Any],
                       sample_percent: Optional[float] = None,
                       seed: Optional[int] = None) -> DataGuide:
    """Aggregate a DataGuide over ``documents``.

    ``sample_percent`` applies Bernoulli sampling (each document kept with
    probability p/100), the semantics of Oracle's ``SAMPLE (p)`` clause in
    the paper's Q1.  ``seed`` makes sampling reproducible.
    """
    if sample_percent is not None and not 0 < sample_percent <= 100:
        raise ValueError("sample_percent must be in (0, 100]")
    rng = random.Random(seed)
    builder = DataGuideBuilder()
    for document in documents:
        if sample_percent is not None and rng.uniform(0, 100) >= sample_percent:
            continue
        builder.add(_parse_any(document))
    return builder.guide()


class JsonDataGuideAgg(Aggregate):
    """``JSON_DATAGUIDEAGG(col)`` for the engine's group-by operator.

    The aggregate value is a :class:`DataGuide`; call ``as_flat()`` /
    ``as_hierarchical()`` on it for the JSON forms of section 3.2.2.
    """

    name = "JSON_DATAGUIDEAGG"

    class _State(AggregateState):
        def __init__(self, operand: Expression) -> None:
            self.operand = operand
            self.builder = DataGuideBuilder()

        def step(self, row: dict) -> None:
            value = self.operand.evaluate(row)
            if value is None:
                return
            self.builder.add(_parse_any(value))

        def final(self) -> DataGuide:
            return self.builder.guide()

    def __init__(self, operand: Any) -> None:
        if isinstance(operand, str):
            operand = Col(operand)
        super().__init__(operand)

    def create(self) -> AggregateState:
        return self._State(self.operand)
