"""DataGuide path entries and the scalar type lattice.

A DataGuide row corresponds to one distinct ``(path, node kind)`` pair in
a JSON collection (section 3.1): paths whose node kinds differ are kept
as *separate* entries (the paper's ``$.a.b``-as-scalar vs
``$.a.b``-as-object example), while scalar entries at the same path merge
their leaf data types to the most general type and keep the maximum
length.

Paths are written in SQL/JSON notation (``$.purchaseOrder.items.name``);
array traversal does not add a path step but sets the entry's
``in_array`` flag, which renders the paper's ``array of string`` /
``array of array`` type labels.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

OBJECT = "object"
ARRAY = "array"
SCALAR = "scalar"

STRING = "string"
NUMBER = "number"
BOOLEAN = "boolean"
NULL = "null"

#: scalar generality ranks; merging picks the more general (higher) type
_GENERALITY = {NULL: 0, BOOLEAN: 1, NUMBER: 1, STRING: 2}


def generalize_scalar_type(left: Optional[str], right: Optional[str]) -> Optional[str]:
    """Merge two leaf scalar types to the most general one.

    ``null`` is absorbed by anything; differing non-null types generalize
    to ``string`` (the paper's number-vs-string example merges to
    string).
    """
    if left is None:
        return right
    if right is None:
        return left
    if left == right:
        return left
    if left == NULL:
        return right
    if right == NULL:
        return left
    return STRING


def scalar_type_of(value: Any) -> str:
    """Classify a Python scalar into the DataGuide leaf taxonomy."""
    if value is None:
        return NULL
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, str):
        return STRING
    return NUMBER


@dataclass
class PathEntry:
    """One row of the DataGuide (one row of the ``$DG`` table).

    Statistics columns (``frequency``, ``min_value``, ``max_value``,
    ``null_count``) are populated by a statistics pass, matching the
    paper's "populated when the JSON search index statistics are
    computed".
    """

    path: str
    kind: str                                # object | array | scalar
    scalar_type: Optional[str] = None        # for kind == scalar
    in_array: bool = False
    max_length: int = 0                      # max string length seen
    frequency: int = 0                       # documents containing the path
    null_count: int = 0
    min_value: Any = None
    max_value: Any = None

    @property
    def key(self) -> tuple[str, str]:
        """Identity for merge purposes: same path + same node kind."""
        return (self.path, self.kind)

    @property
    def type_label(self) -> str:
        """The human-readable type of the paper's Table 2/4/6."""
        base = self.scalar_type if self.kind == SCALAR else self.kind
        if self.in_array and self.kind != OBJECT:
            return f"array of {base}"
        return base

    def merged_with(self, other: "PathEntry") -> "PathEntry":
        """Pure merge of two entries with the same key."""
        if self.key != other.key:
            raise ValueError(f"cannot merge {self.key} with {other.key}")
        return replace(
            self,
            scalar_type=generalize_scalar_type(self.scalar_type, other.scalar_type),
            in_array=self.in_array or other.in_array,
            max_length=max(self.max_length, other.max_length),
            frequency=self.frequency + other.frequency,
            null_count=self.null_count + other.null_count,
            min_value=_merge_extreme(self.min_value, other.min_value, min),
            max_value=_merge_extreme(self.max_value, other.max_value, max),
        )

    def merge_in_place(self, other: "PathEntry") -> bool:
        """Destructive merge; returns True if anything changed (used by the
        persistent DataGuide's fast no-change path)."""
        if self.key != other.key:
            raise ValueError(f"cannot merge {self.key} with {other.key}")
        changed = False
        merged_type = generalize_scalar_type(self.scalar_type, other.scalar_type)
        if merged_type != self.scalar_type:
            self.scalar_type = merged_type
            changed = True
        if other.in_array and not self.in_array:
            self.in_array = True
            changed = True
        if other.max_length > self.max_length:
            self.max_length = other.max_length
            changed = True
        # statistics are additive and do not count as structural change
        self.frequency += other.frequency
        self.null_count += other.null_count
        self.min_value = _merge_extreme(self.min_value, other.min_value, min)
        self.max_value = _merge_extreme(self.max_value, other.max_value, max)
        return changed

    def as_row(self) -> dict[str, Any]:
        """Render as a ``$DG`` relational row (Table 2's shape + stats)."""
        return {
            "PATH": self.path,
            "TYPE": self.type_label,
            "SCALAR_TYPE": self.scalar_type,
            "IN_ARRAY": self.in_array,
            "MAX_LENGTH": self.max_length,
            "FREQUENCY": self.frequency,
            "NULL_COUNT": self.null_count,
            "MIN_VALUE": _stringify(self.min_value),
            "MAX_VALUE": _stringify(self.max_value),
        }


def _merge_extreme(left: Any, right: Any, pick: Any) -> Any:
    if left is None:
        return right
    if right is None:
        return left
    try:
        return pick(left, right)
    except TypeError:
        # heterogeneous values (number vs string): compare as strings
        return pick(str(left), str(right))


def _stringify(value: Any) -> Optional[str]:
    return None if value is None else str(value)


def child_path(parent: str, name: str) -> str:
    """Append a member step, quoting names that are not identifiers."""
    if name.isidentifier():
        return f"{parent}.{name}"
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    return f'{parent}."{escaped}"'
