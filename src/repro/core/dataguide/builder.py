"""Instance skeleton extraction and collection merge (section 3.1).

``instance_entries`` computes the DataGuide of a *single* document: the
container-node skeleton of its DOM tree with leaf scalars replaced by
type and length.  :class:`DataGuideBuilder` merges instance skeletons
across a collection, removing duplicate tree paths with matching node
kinds and generalizing conflicting leaf types.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.core.dataguide import model
from repro.core.dataguide.guide import DataGuide
from repro.core.dataguide.model import PathEntry, child_path, scalar_type_of


def instance_entries(value: Any, root: str = "$") -> dict[tuple[str, str], PathEntry]:
    """Extract the per-instance DataGuide skeleton of one JSON value.

    Returns entries keyed by ``(path, kind)``.  Within a single document
    a path can be hit repeatedly (array elements); hits merge immediately,
    but ``frequency`` stays per-document (0/1) so collection counts mean
    "documents containing the path", as in the paper's ``$DG`` stats.
    """
    entries: dict[tuple[str, str], PathEntry] = {}
    _walk(value, root, False, entries)
    for entry in entries.values():
        entry.frequency = 1
    return entries


def _walk(value: Any, path: str, in_array: bool,
          entries: dict[tuple[str, str], PathEntry]) -> None:
    if isinstance(value, dict):
        _record(entries, PathEntry(path, model.OBJECT, in_array=in_array))
        for name, item in value.items():
            _walk(item, child_path(path, name), in_array, entries)
    elif isinstance(value, (list, tuple)):
        _record(entries, PathEntry(path, model.ARRAY, in_array=in_array))
        for item in value:
            if isinstance(item, dict):
                # element objects do not add their own entry; their named
                # fields descend with the array flag set
                for name, sub in item.items():
                    _walk(sub, child_path(path, name), True, entries)
            elif isinstance(item, (list, tuple)):
                _walk(item, path, True, entries)
            else:
                _record(entries, _scalar_entry(path, item, True))
    else:
        _record(entries, _scalar_entry(path, value, in_array))


def _scalar_entry(path: str, value: Any, in_array: bool) -> PathEntry:
    scalar_type = scalar_type_of(value)
    entry = PathEntry(path, model.SCALAR, scalar_type=scalar_type,
                      in_array=in_array)
    if isinstance(value, str):
        entry.max_length = len(value)
    if value is None:
        entry.null_count = 1
    elif not isinstance(value, bool):
        entry.min_value = value
        entry.max_value = value
    return entry


def _record(entries: dict[tuple[str, str], PathEntry], entry: PathEntry) -> None:
    existing = entries.get(entry.key)
    if existing is None:
        entries[entry.key] = entry
    else:
        existing.merge_in_place(entry)


class DataGuideBuilder:
    """Merges instance skeletons into a collection DataGuide.

    ``add`` returns the list of *newly discovered* entry keys, which is
    what the persistent DataGuide writes to the ``$DG`` table (and the
    empty-list fast path is the paper's "terminates without calling any
    persistent DataGuide processing module").
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], PathEntry] = {}
        self.documents_seen = 0

    def add(self, value: Any) -> list[tuple[str, str]]:
        """Merge one document; returns keys of paths not seen before."""
        self.documents_seen += 1
        new_keys: list[tuple[str, str]] = []
        for key, entry in instance_entries(value).items():
            existing = self._entries.get(key)
            if existing is None:
                self._entries[key] = entry
                new_keys.append(key)
            else:
                existing.merge_in_place(entry)
        return new_keys

    def add_many(self, values: Iterable[Any]) -> int:
        count = 0
        for value in values:
            self.add(value)
            count += 1
        return count

    def merge_builder(self, other: "DataGuideBuilder") -> None:
        """Merge another builder's state (parallel aggregation combine)."""
        for key, entry in other._entries.items():
            existing = self._entries.get(key)
            if existing is None:
                self._entries[key] = entry
            else:
                existing.merge_in_place(entry)
        self.documents_seen += other.documents_seen

    def entry(self, key: tuple[str, str]) -> Optional[PathEntry]:
        return self._entries.get(key)

    def entries(self) -> list[PathEntry]:
        return list(self._entries.values())

    def guide(self) -> DataGuide:
        """Snapshot the merged state as an immutable :class:`DataGuide`."""
        return DataGuide(self.entries(), self.documents_seen)
