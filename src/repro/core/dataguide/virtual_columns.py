"""AddVC: project singleton scalars as virtual columns (section 3.3.1).

For every singleton scalar path in the DataGuide (one-to-one with
document instances, i.e. not inside any array) a virtual column is added
to the base table, defined by ``JSON_VALUE(json_column, path RETURNING
type)`` exactly like the paper's Table 7.  Virtual columns are computed
on read, occupy no heap storage, and are IMC-loadable (section 5.2.1).
"""

from __future__ import annotations

from typing import Optional

from repro.core.dataguide.guide import DataGuide, _split_path
from repro.core.dataguide.views import _sql_type_for
from repro.engine.expressions import JsonValueExpr
from repro.engine.table import Column, Table
from repro.engine.types import parse_type
from repro.errors import DataGuideError


def add_vc(table: Table, json_column: str, guide: DataGuide,
           frequency_threshold: Optional[float] = None,
           column_prefix: Optional[str] = None) -> list[Column]:
    """Add JSON_VALUE virtual columns for every singleton scalar path.

    Returns the columns added.  Naming follows the paper's Table 7:
    ``<json_column>$<leaf name>`` (``JCOL$id``), disambiguated with the
    full path when leaf names collide.  Annotations on the guide
    (renames, exclusions, length overrides) are honoured.
    """
    if not table.has_column(json_column):
        raise DataGuideError(
            f"table {table.name} has no column {json_column!r}")
    prefix = column_prefix if column_prefix is not None else json_column
    added: list[Column] = []
    for entry in guide.singleton_scalar_entries():
        if entry.path in guide.annotations.excluded:
            continue
        if (frequency_threshold is not None and guide.document_count
                and 100.0 * entry.frequency / guide.document_count
                < frequency_threshold):
            continue
        name = _vc_name(table, prefix, entry.path, guide)
        type_spec = _sql_type_for(
            entry, guide.annotations.length_overrides.get(entry.path))
        column = Column(
            name=name,
            sql_type=parse_type(type_spec),
            expression=JsonValueExpr(json_column, entry.path,
                                     returning=type_spec),
        )
        table.add_column(column)
        added.append(column)
    return added


def _vc_name(table: Table, prefix: str, path: str, guide: DataGuide) -> str:
    rename = guide.annotations.renames.get(path)
    if rename is not None:
        name = rename
    else:
        steps = _split_path(path)
        name = f"{prefix}${steps[-1]}" if steps else f"{prefix}$value"
        if table.has_column(name):
            name = f"{prefix}$" + "$".join(steps)
    suffix = 2
    base = name
    while table.has_column(name):
        name = f"{base}_{suffix}"
        suffix += 1
    return name
