"""The DataGuide object and its two JSON representations (section 3.2.2).

* **flat form** — the ``$DG`` relational shape: one row per distinct
  (path, node kind) with type label and statistics;
* **hierarchical form** — a single nested JSON document in a
  JSON-Schema-like dialect (``type`` / ``properties`` / ``items``), the
  form ``getDataGuide()`` returns for users to annotate and feed to
  ``CreateViewOnPath``.

Annotation support: ``annotate`` returns a copy with per-path column
renames, exclusions, or length overrides recorded; the view and
virtual-column generators honour them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.core.dataguide import model
from repro.core.dataguide.model import PathEntry
from repro.errors import DataGuideError


@dataclass(frozen=True)
class Annotations:
    """User annotations applied to a computed DataGuide."""

    renames: dict[str, str] = field(default_factory=dict)       # path -> column name
    excluded: frozenset = frozenset()                            # paths to drop
    length_overrides: dict[str, int] = field(default_factory=dict)  # path -> chars


class DataGuide:
    """An immutable snapshot of a collection's merged DataGuide."""

    def __init__(self, entries: Iterable[PathEntry], document_count: int = 0,
                 annotations: Optional[Annotations] = None) -> None:
        self._entries: dict[tuple[str, str], PathEntry] = {
            e.key: e for e in entries}
        self.document_count = document_count
        self.annotations = annotations or Annotations()

    # -- basic access -----------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct (path, kind) rows — Table 12's
        "Number of Distinct Paths"."""
        return len(self._entries)

    def entries(self) -> list[PathEntry]:
        return sorted(self._entries.values(), key=lambda e: (e.path, e.kind))

    def get(self, path: str, kind: Optional[str] = None) -> Optional[PathEntry]:
        """Look up an entry by path (and kind, if the path is heterogeneous)."""
        if kind is not None:
            return self._entries.get((path, kind))
        matches = [e for e in self._entries.values() if e.path == path]
        if not matches:
            return None
        if len(matches) > 1:
            raise DataGuideError(
                f"path {path} is heterogeneous; specify kind= one of "
                f"{sorted(e.kind for e in matches)}")
        return matches[0]

    def paths(self) -> list[str]:
        return sorted({e.path for e in self._entries.values()})

    def scalar_entries(self) -> list[PathEntry]:
        """Root-to-leaf scalar rows — the DMDV column candidates."""
        return [e for e in self.entries() if e.kind == model.SCALAR]

    def singleton_scalar_entries(self) -> list[PathEntry]:
        """Scalar paths with a one-to-one relationship to documents —
        the AddVC virtual-column candidates (section 3.3.1)."""
        return [e for e in self.scalar_entries() if not e.in_array]

    def array_entries(self) -> list[PathEntry]:
        return [e for e in self.entries() if e.kind == model.ARRAY]

    # -- merge (parallel aggregation combine) --------------------------------

    def merge(self, other: "DataGuide") -> "DataGuide":
        """Combine two DataGuides into one, as a pure operation.

        This is the associative combine of DataGuide-as-aggregate (the
        "Schema Inference as a Scalable SQL Function" shape): per-shard
        or per-segment guides computed independently merge into the
        collection guide.  Entries with the same ``(path, kind)`` key
        merge via :meth:`~repro.core.dataguide.model.PathEntry
        .merged_with` (type generalization, max length, additive
        statistics, widened extremes); document counts add.

        Algebraic properties (property-tested):

        * **commutative** — ``a.merge(b)`` equals ``b.merge(a)``;
        * **associative** — ``(a.merge(b)).merge(c)`` equals
          ``a.merge(b.merge(c))``;
        * **exact on disjoint inserts** — guides built over disjoint
          document sets merge into exactly the guide of the union, and
          merging with an empty guide is the identity.

        Statistics are additive, so ``g.merge(g)`` doubles frequencies;
        the *structural* projection (paths, kinds, types, lengths) is
        idempotent.  Annotations merge left-biased (``self`` wins on a
        rename/override conflict).
        """
        merged: dict[tuple[str, str], PathEntry] = dict(self._entries)
        for key, entry in other._entries.items():
            existing = merged.get(key)
            merged[key] = (entry if existing is None
                           else existing.merged_with(entry))
        annotations = Annotations(
            renames={**other.annotations.renames, **self.annotations.renames},
            excluded=self.annotations.excluded | other.annotations.excluded,
            length_overrides={**other.annotations.length_overrides,
                              **self.annotations.length_overrides},
        )
        return DataGuide(merged.values(),
                         self.document_count + other.document_count,
                         annotations)

    @classmethod
    def merge_all(cls, guides: Iterable["DataGuide"]) -> "DataGuide":
        """Fold :meth:`merge` over any number of guides (empty -> empty
        guide).  Shard order does not matter — merge is commutative."""
        result = cls(())
        for guide in guides:
            result = result.merge(guide)
        return result

    # -- annotation ----------------------------------------------------------

    def annotate(self, renames: Optional[dict[str, str]] = None,
                 exclude: Sequence[str] = (),
                 length_overrides: Optional[dict[str, int]] = None) -> "DataGuide":
        """Return a copy carrying user annotations (section 3.2.2)."""
        merged = Annotations(
            renames={**self.annotations.renames, **(renames or {})},
            excluded=self.annotations.excluded | frozenset(exclude),
            length_overrides={**self.annotations.length_overrides,
                              **(length_overrides or {})},
        )
        return DataGuide(self._entries.values(), self.document_count, merged)

    # -- flat form --------------------------------------------------------------

    def as_flat(self) -> list[dict[str, Any]]:
        """The flat JSON form: a list of ``$DG`` rows."""
        return [e.as_row() for e in self.entries()]

    # -- hierarchical form ---------------------------------------------------------

    def as_hierarchical(self) -> dict[str, Any]:
        """The hierarchical JSON form: one nested schema document."""
        root = _TreeNode("$")
        for entry in self.entries():
            steps = _split_path(entry.path)
            node = root
            for step in steps:
                node = node.child(step)
            node.entries.append(entry)
        return root.render()

    # -- statistics (Table 12) ---------------------------------------------------------

    def dmdv_column_count(self) -> int:
        """Distinct root-to-leaf paths — Table 12's "DMDV number of columns"."""
        return len({e.path for e in self.scalar_entries()})


class _TreeNode:
    """Helper for assembling the hierarchical form."""

    __slots__ = ("name", "children", "entries")

    def __init__(self, name: str) -> None:
        self.name = name
        self.children: dict[str, _TreeNode] = {}
        self.entries: list[PathEntry] = []

    def child(self, name: str) -> "_TreeNode":
        node = self.children.get(name)
        if node is None:
            node = _TreeNode(name)
            self.children[name] = node
        return node

    def render(self) -> dict[str, Any]:
        variants: list[dict[str, Any]] = []
        for entry in sorted(self.entries, key=lambda e: e.kind):
            variant: dict[str, Any] = {"type": entry.type_label}
            if entry.kind == model.SCALAR:
                if entry.max_length:
                    variant["o:length"] = entry.max_length
                if entry.frequency:
                    variant["o:frequency"] = entry.frequency
                if entry.min_value is not None:
                    variant["o:low_value"] = str(entry.min_value)
                if entry.max_value is not None:
                    variant["o:high_value"] = str(entry.max_value)
            elif entry.kind == model.OBJECT and self.children:
                variant["properties"] = {
                    name: child.render()
                    for name, child in sorted(self.children.items())}
            elif entry.kind == model.ARRAY and self.children:
                # element objects of the array: their named fields live in
                # this node's children
                variant["items"] = {
                    "type": "object",
                    "properties": {
                        name: child.render()
                        for name, child in sorted(self.children.items())}}
            variants.append(variant)
        if not variants:
            # intermediate name with no recorded entry (should not happen,
            # but render children anyway)
            return {"type": "object", "properties": {
                name: child.render()
                for name, child in sorted(self.children.items())}}
        if len(variants) == 1:
            return variants[0]
        return {"oneOf": variants}


def _split_path(path: str) -> list[str]:
    """Split ``$.a."b c".d`` into member names, honouring quoted steps."""
    if not path.startswith("$"):
        raise DataGuideError(f"path must start with $: {path!r}")
    steps: list[str] = []
    i = 1
    n = len(path)
    while i < n:
        if path[i] != ".":
            raise DataGuideError(f"bad path syntax at {i} in {path!r}")
        i += 1
        if i < n and path[i] == '"':
            i += 1
            out: list[str] = []
            while i < n and path[i] != '"':
                if path[i] == "\\" and i + 1 < n:
                    i += 1
                out.append(path[i])
                i += 1
            if i >= n:
                raise DataGuideError(f"unterminated quoted step in {path!r}")
            i += 1  # closing quote
            steps.append("".join(out))
        else:
            start = i
            while i < n and path[i] != ".":
                i += 1
            steps.append(path[start:i])
    return steps
