"""The paper's primary contribution: OSON and the JSON DataGuide."""
