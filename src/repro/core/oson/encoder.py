"""OSON encoder: Python JSON values -> OSON bytes.

Encoding is a single post-order walk: each node's children are written to
the tree segment first, so the parent can reference them through
parent-relative *deltas* (child address = parent address - delta).
Because children are emitted immediately before their parent, deltas are
small and each container chooses the narrowest per-node width that fits —
this, plus binary numbers and single-byte scalar headers, keeps OSON near
JSON-text size for small documents and well below it for large repetitive
ones (Table 10's shape).

Scalar bytes go to the leaf-scalar-value segment as they are visited
(section 4.2.3); numbers use the packed-decimal "Oracle binary number"
of :mod:`repro.core.oson.numbers`, falling back to raw IEEE or ASCII
decimal when they do not fit.
"""

from __future__ import annotations

import math
import struct
from decimal import Decimal
from typing import Any, Iterator

from repro.core.oson import constants as c
from repro.core.oson.dictionary import FieldDictionary
from repro.core.oson.numbers import pack_decimal, pack_int, write_leb128
from repro.errors import OsonError

_pack_u16 = struct.Struct("<H").pack
_pack_u32 = struct.Struct("<I").pack
_pack_f64 = struct.Struct("<d").pack


def iter_field_names(value: Any) -> Iterator[str]:
    """Yield every field name in ``value`` (with repetitions)."""
    stack = [value]
    while stack:
        node = stack.pop()
        if isinstance(node, dict):
            for key, item in node.items():
                if not isinstance(key, str):
                    raise OsonError(
                        f"object keys must be strings, got {type(key).__name__}")
                yield key
                stack.append(item)
        elif isinstance(node, (list, tuple)):
            stack.extend(node)


def encode(value: Any) -> bytes:
    """Encode any JSON-compatible Python value to OSON bytes."""
    dictionary = FieldDictionary.build(iter_field_names(value))
    encoder = _SegmentEncoder(dictionary)
    root_offset = encoder.encode_node(value)
    return assemble(dictionary, bytes(encoder.tree), bytes(encoder.values),
                    root_offset)


def assemble(dictionary: FieldDictionary, tree: bytes, values: bytes,
             root_offset: int) -> bytes:
    """Frame the three segments with the OSON header."""
    dict_bytes = dictionary.to_bytes()
    tree_start = c.HEADER_SIZE + len(dict_bytes)
    value_start = tree_start + len(tree)
    header = (
        c.MAGIC
        + bytes([c.VERSION, 0, 0, 0])
        + _pack_u32(tree_start)
        + _pack_u32(value_start)
        + _pack_u32(root_offset)
    )
    return header + dict_bytes + tree + values


def _width_for(delta: int) -> int:
    if delta <= 0xFF:
        return 1
    if delta <= 0xFFFF:
        return 2
    if delta <= 0xFFFFFF:
        return 3
    if delta <= 0xFFFFFFFF:
        return 4
    raise OsonError("tree segment larger than 4 GiB")


class _SegmentEncoder:
    """Accumulates the tree-node and leaf-scalar-value segments."""

    __slots__ = ("dictionary", "tree", "values")

    def __init__(self, dictionary: FieldDictionary) -> None:
        self.dictionary = dictionary
        self.tree = bytearray()
        self.values = bytearray()

    # -- nodes -------------------------------------------------------------

    def encode_node(self, value: Any) -> int:
        """Encode ``value`` (children first) and return its tree offset."""
        if isinstance(value, dict):
            return self._encode_object(value)
        if isinstance(value, (list, tuple)):
            return self._encode_array(value)
        return self._encode_scalar(value)

    def _encode_object(self, obj: dict[str, Any]) -> int:
        if len(obj) > 0xFFFF:
            raise OsonError("object has more than 65535 fields")
        pairs: list[tuple[int, int]] = []  # (field_id, child offset)
        for key, item in obj.items():
            if not isinstance(key, str):
                raise OsonError(
                    f"object keys must be strings, got {type(key).__name__}")
            field_id = self.dictionary.field_id_fast(key)
            if field_id is None:
                raise OsonError(f"field {key!r} missing from dictionary")
            pairs.append((field_id, self.encode_node(item)))
        pairs.sort(key=lambda p: p[0])  # sorted field ids enable binary search
        node_pos = len(self.tree)
        deltas = [node_pos - child for _fid, child in pairs]
        width = max((_width_for(d) for d in deltas), default=1)
        header = (c.NODE_OBJECT
                  | ((width - 1) << c.CONTAINER_WIDTH_SHIFT))
        self.tree.append(header)
        self.tree += _pack_u16(len(pairs))
        for field_id, _child in pairs:
            self.tree += _pack_u16(field_id)
        for delta in deltas:
            self.tree += delta.to_bytes(width, "little")
        return node_pos

    def _encode_array(self, items: Any) -> int:
        if len(items) > 0xFFFF:
            raise OsonError("array has more than 65535 elements")
        children = [self.encode_node(item) for item in items]
        node_pos = len(self.tree)
        deltas = [node_pos - child for child in children]
        width = max((_width_for(d) for d in deltas), default=1)
        header = (c.NODE_ARRAY
                  | ((width - 1) << c.CONTAINER_WIDTH_SHIFT))
        self.tree.append(header)
        self.tree += _pack_u16(len(children))
        for delta in deltas:
            self.tree += delta.to_bytes(width, "little")
        return node_pos

    def _encode_scalar(self, value: Any) -> int:
        scalar_type, payload = encode_scalar_payload(value)
        node_pos = len(self.tree)
        if scalar_type in c.INLINE_SCALARS:
            self.tree.append(
                c.NODE_SCALAR | (scalar_type << c.SCALAR_TYPE_SHIFT))
            return node_pos
        value_offset = len(self.values)
        if scalar_type in c.PREFIXED_SCALARS:
            write_leb128(self.values, len(payload))
        self.values += payload
        width = max(_width_for(value_offset), 1) if value_offset else 1
        header = (c.NODE_SCALAR
                  | (scalar_type << c.SCALAR_TYPE_SHIFT)
                  | ((width - 1) << c.SCALAR_WIDTH_SHIFT))
        self.tree.append(header)
        self.tree += value_offset.to_bytes(width, "little")
        return node_pos


def encode_scalar_payload(value: Any) -> tuple[int, bytes]:
    """Classify a Python scalar and produce its value-segment payload
    (excluding any length prefix).  Shared with the partial-update module
    so in-place updates use identical byte encodings."""
    if value is None:
        return c.SCALAR_NULL, b""
    if value is True:
        return c.SCALAR_TRUE, b""
    if value is False:
        return c.SCALAR_FALSE, b""
    if isinstance(value, int):
        if value.bit_length() <= 71:  # fits 9 two's-complement bytes
            return c.SCALAR_INT, pack_int(value)
        return c.SCALAR_NUMSTR, str(value).encode("ascii")
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise OsonError("JSON cannot represent NaN or Infinity")
        packed = pack_decimal(value)
        if packed is not None and len(packed) < 8:
            return c.SCALAR_NUMBER, packed
        return c.SCALAR_FLOAT, _pack_f64(value)
    if isinstance(value, Decimal):
        packed = pack_decimal(value)
        if packed is not None:
            return c.SCALAR_NUMBER, packed
        return c.SCALAR_NUMSTR, str(value).encode("ascii")
    if isinstance(value, str):
        return c.SCALAR_STRING, value.encode("utf-8")
    raise OsonError(f"cannot encode {type(value).__name__} to OSON")
