"""Field-name hashing for the OSON field-id-name dictionary.

The paper assigns field name identifiers "arbitrarily using a hash
function" (section 4.2.1).  We use FNV-1a 32-bit over the UTF-8 bytes of
the field name: deterministic across processes (unlike Python's builtin
``hash`` under PYTHONHASHSEED), cheap, and with a small enough range that
collisions actually occur on large vocabularies — which exercises the
collision-resolution string compare the paper describes.
"""

from __future__ import annotations

_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193
_MASK32 = 0xFFFFFFFF


def field_name_hash(name: str) -> int:
    """Return the 32-bit FNV-1a hash of a field name."""
    value = _FNV_OFFSET
    for byte in name.encode("utf-8"):
        value = ((value ^ byte) * _FNV_PRIME) & _MASK32
    return value
