"""Field-id resolution caching (section 4.2.1's three optimizations).

1. *Compile-time hashing*: :class:`CompiledFieldName` computes the field
   name's hash once when a SQL/JSON path is compiled and stores it in the
   "execution plan" (the compiled path object).
2. *Per-instance resolution*: the first lookup against a document resolves
   the name to that document's field id using the precomputed hash.
3. *Single-row look-back*: :class:`FieldIdResolver` remembers the field id
   resolved on the previous document; before re-searching the dictionary it
   checks whether the cached id still denotes the same (hash, name) in the
   next document — on structurally homogeneous collections this check
   almost always succeeds, skipping the binary search entirely.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.counters import IdentityCache
from repro.core.oson.decoder import OsonDocument
from repro.core.oson.hashing import field_name_hash
from repro.obs import metrics as _metrics

#: sentinel distinguishing "not cached" from "cached as absent"
_UNRESOLVED = -2
_ABSENT = -1


class CompiledFieldName:
    """A field name with its hash precomputed at path-compile time."""

    __slots__ = ("name", "hash", "_cached_id", "_cached_generation")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hash = field_name_hash(name)
        self._cached_id = _UNRESOLVED
        self._cached_generation = 0  # dictionary generations start at 1

    def __repr__(self) -> str:
        return f"CompiledFieldName({self.name!r}, hash=0x{self.hash:08x})"


class FieldIdResolver:
    """Resolves compiled field names against successive OSON documents.

    One resolver is held per query execution; it implements the
    single-row look-back across the document stream.  Statistics counters
    (`lookups`, `lookback_hits`) let tests and the ablation bench verify
    the optimization actually fires.
    """

    __slots__ = ("lookups", "lookback_hits")

    def __init__(self) -> None:
        self.lookups = 0
        self.lookback_hits = 0

    def resolve(self, doc: OsonDocument, compiled: CompiledFieldName) -> Optional[int]:
        """Return ``compiled``'s field id in ``doc``, or None if absent."""
        self.lookups += 1
        dictionary = doc.dictionary
        cached = compiled._cached_id
        if compiled._cached_generation == dictionary.generation:
            # generation fast path: interned dictionaries share one object
            # per distinct segment, so a matching generation proves the
            # cached resolution — including a cached *absence*, which the
            # (hash, name) look-back below can never validate
            self.lookback_hits += 1
            return None if cached < 0 else cached
        if cached >= 0:
            # look-back validation: same id, same hash, same name?
            # (reads the dictionary arrays directly — this check runs once
            # per field reference per document and must stay cheap)
            hashes = dictionary.hashes
            if (cached < len(hashes)
                    and hashes[cached] == compiled.hash
                    and dictionary.names[cached] == compiled.name):
                self.lookback_hits += 1
                compiled._cached_generation = dictionary.generation
                return cached
        # cache miss (or cached-as-absent, which cannot be validated cheaply):
        # fall back to the binary search over the sorted hash-id array
        field_id = doc.field_id(compiled.name, compiled.hash)
        compiled._cached_id = _ABSENT if field_id is None else field_id
        compiled._cached_generation = dictionary.generation
        return field_id


#: decoded documents keyed by buffer identity: OLAP queries walk the same
#: OSON images over and over (json_exists pushdown + json_table expansion
#: per query), and header+dictionary parsing per touch used to dominate
_DOCUMENTS = IdentityCache("oson.document", maxsize=1024)

#: header+dictionary parses actually performed (the cost the document
#: cache exists to avoid); EXPLAIN ANALYZE reports this per operator
_DECODES = _metrics.counter("oson.document.decodes")


def cached_document(data: Union[bytes, "OsonDocument"]) -> OsonDocument:
    """An :class:`OsonDocument` over ``data``, cached by buffer identity.

    Only immutable ``bytes`` are cached (a ``bytearray`` could be mutated
    behind the cache's back); the cache holds strong references, bounded
    by LRU eviction.
    """
    if isinstance(data, OsonDocument):
        return data
    if type(data) is not bytes:
        _DECODES.inc()
        return OsonDocument(bytes(data))
    doc = _DOCUMENTS.get(data)
    if doc is None:
        _DECODES.inc()
        doc = OsonDocument(data)
        _DOCUMENTS.put(data, doc)
    return doc
