"""OSON *set encoding* prototype (section 7, future work).

For a collection of structurally similar documents the per-document
field-id-name dictionaries are nearly identical.  The paper's future-work
proposal is to merge them into one shared dictionary held by the in-memory
store, shrinking memory and letting field-name -> id mapping happen once
per store instead of once per document.

:class:`SharedDictionaryStore` implements that idea: documents are encoded
against a collection-wide :class:`~repro.core.oson.dictionary.FieldDictionary`
(grown on demand), and each stored entry keeps only the tree + value
segments.  Unlike Dremel, heterogeneity is fully supported — a field may be
a string in one instance and an object in another, because each instance
still carries its own tree.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.core.oson.decoder import OsonDocument
from repro.core.oson.dictionary import FieldDictionary
from repro.core.oson.encoder import _SegmentEncoder, assemble, iter_field_names
from repro.core.oson.hashing import field_name_hash


class SharedDictionaryStore:
    """An in-memory OSON collection with one merged field dictionary.

    Entries are raw ``(tree, values, root, wide)`` tuples; ``as_document``
    reassembles a standard self-contained :class:`OsonDocument` view on
    demand (used by the generic path engine), while ``memory_bytes``
    exposes the savings measured by the set-encoding ablation bench.
    """

    def __init__(self) -> None:
        self._names: list[str] = []
        self._dictionary = FieldDictionary([], [])
        self._entries: list[tuple[bytes, bytes, int]] = []

    # -- dictionary management ------------------------------------------------

    def _ensure_fields(self, value: Any) -> None:
        """Grow the shared dictionary to cover ``value``'s field names.

        Rebuilding keeps the sorted-by-hash invariant but renumbers field
        ids, so existing entries (encoded against the old numbering) must
        be re-encoded: we materialize them with the old dictionary first,
        then swap in the new one.
        """
        known = set(self._names)
        new_names = [n for n in set(iter_field_names(value)) if n not in known]
        if not new_names:
            return
        old_values = [self.materialize(i) for i in range(len(self._entries))]
        self._names.extend(new_names)
        self._dictionary = FieldDictionary.build(self._names)
        self._entries = [self._encode_entry(v) for v in old_values]

    @property
    def dictionary(self) -> FieldDictionary:
        return self._dictionary

    def field_id(self, name: str) -> Optional[int]:
        return self._dictionary.field_id(name, field_name_hash(name))

    # -- population ----------------------------------------------------------------

    def add(self, value: Any) -> int:
        """Encode ``value`` against the shared dictionary; returns its slot.

        If the document introduces new field names the shared dictionary
        grows, which renumbers field ids; previously stored documents are
        re-encoded against the new dictionary (correct, if costly — the
        paper leaves this engineering to future work and so do we).
        """
        self._ensure_fields(value)
        self._entries.append(self._encode_entry(value))
        return len(self._entries) - 1

    def _encode_entry(self, value: Any) -> tuple[bytes, bytes, int]:
        encoder = _SegmentEncoder(self._dictionary)
        root = encoder.encode_node(value)
        return bytes(encoder.tree), bytes(encoder.values), root

    # -- access ------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def as_document(self, index: int) -> OsonDocument:
        """Reassemble entry ``index`` as a self-contained OSON document."""
        tree, values, root = self._entries[index]
        return OsonDocument(assemble(self._dictionary, tree, values, root))

    def materialize(self, index: int) -> Any:
        return self.as_document(index).materialize()

    def documents(self) -> Iterator[OsonDocument]:
        for i in range(len(self._entries)):
            yield self.as_document(i)

    # -- accounting -------------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Bytes held: shared dictionary once + per-entry tree/value bytes."""
        total = len(self._dictionary.to_bytes())
        for tree, values, _root in self._entries:
            total += len(tree) + len(values)
        return total

    @staticmethod
    def self_contained_bytes(values: list[Any]) -> int:
        """Baseline: total bytes if each document carried its own dictionary."""
        from repro.core.oson.encoder import encode
        return sum(len(encode(v)) for v in values)
