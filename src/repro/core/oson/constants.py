"""OSON binary layout constants.

The concrete byte layout is our own (the paper describes the architecture,
not the bit-level encoding), but it realizes every structural property the
paper specifies:

* three segments — field-id-name dictionary, tree-node navigation, leaf
  scalar values — with the navigation segment holding references into the
  other two (Figure 2);
* a dictionary whose entries are sorted by field-name hash id, with the
  ordinal position serving as the field name identifier (section 4.2.1);
* object nodes whose child arrays are sorted by field id for binary search
  (section 4.2.2);
* scalar nodes with inline booleans/nulls, native binary numbers
  (section 4.2.3's Oracle binary number is modelled by a packed-decimal
  encoding), and length-prefixed variable-length values.

Layout summary (integers little-endian unless noted)::

    header:
        0..3   magic  b"OSON"
        4      version (currently 2)
        5..7   reserved (zero)
        8..11  u32 tree segment start (absolute)
        12..15 u32 value segment start (absolute)
        16..19 u32 root node offset (relative to tree segment start)
    dictionary segment (starts at byte 20):
        u16 field_count
        field_count * (u32 hash, u8 name_len)     -- sorted by (hash, name)
        names blob (concatenated UTF-8 names; offsets are cumulative sums
        of the lengths, so entries need no stored offset)
    tree segment: nodes, children encoded strictly before parents.
        node header byte:
            bits 0..1  node type (1 object, 2 array, 3 scalar)
            containers: bits 2..3 -> child-delta width W (1..4 bytes)
            scalars:    bits 2..4 -> scalar type, bits 5..6 -> value-offset
                        width V (1..4 bytes; absent for inline scalars)
        object: hdr | u16 count | count*u16 sorted field ids
                | count*W child deltas (delta = node_addr - child_addr)
        array:  hdr | u16 count | count*W child deltas
        scalar: hdr | [V-byte value-segment offset]
    value segment:
        INT    -> LEB128 length + minimal two's-complement bytes
        NUMBER -> LEB128 length + flags byte (sign/decimal-ness/exponent)
                  + packed BCD digits
        FLOAT64-> 8 raw IEEE bytes (no length)
        STRING -> LEB128 length + UTF-8 bytes
        NUMSTR -> LEB128 length + ASCII decimal text (fallback for numbers
                  the packed form cannot hold)

Parent-relative child deltas keep most offsets to 1-2 bytes because a
node's children are emitted immediately before it; this is what lets the
encoding stay near JSON-text size for small documents and far below it
for large repetitive ones (Table 10's shape).
"""

from __future__ import annotations

MAGIC = b"OSON"
VERSION = 2

HEADER_SIZE = 20

# node type (low 2 bits of the node header byte)
NODE_OBJECT = 1
NODE_ARRAY = 2
NODE_SCALAR = 3

NODE_TYPE_MASK = 0x03

# container header: child-delta width code (bits 2..3); width = code + 1
CONTAINER_WIDTH_SHIFT = 2
CONTAINER_WIDTH_MASK = 0x03

# scalar header: scalar type (bits 2..4), value-offset width code (bits 5..6)
SCALAR_TYPE_SHIFT = 2
SCALAR_TYPE_MASK = 0x07
SCALAR_WIDTH_SHIFT = 5
SCALAR_WIDTH_MASK = 0x03

# scalar types
SCALAR_NULL = 0
SCALAR_TRUE = 1
SCALAR_FALSE = 2
SCALAR_INT = 3      # LEB128-length-prefixed two's complement
SCALAR_NUMBER = 4   # packed-decimal (the Oracle binary NUMBER stand-in)
SCALAR_FLOAT = 5    # raw IEEE double, no length prefix
SCALAR_STRING = 6   # LEB128-length-prefixed UTF-8
SCALAR_NUMSTR = 7   # LEB128-length-prefixed ASCII decimal text

#: scalar types that carry no bytes in the value segment
INLINE_SCALARS = frozenset({SCALAR_NULL, SCALAR_TRUE, SCALAR_FALSE})
#: scalar types whose value has a LEB128 length prefix
PREFIXED_SCALARS = frozenset({SCALAR_INT, SCALAR_NUMBER, SCALAR_STRING,
                              SCALAR_NUMSTR})

# packed-decimal flags byte
NUMBER_SIGN_BIT = 0x80      # set: negative
NUMBER_DECIMAL_BIT = 0x40   # set: decode to decimal.Decimal (else float/int)
NUMBER_EXP_BIAS = 31        # bits 0..5 hold exponent + bias (-31..+32)
NUMBER_EXP_MASK = 0x3F
NUMBER_MAX_DIGITS = 30      # packable significant digits

#: human-readable scalar type names (used by stats and errors)
SCALAR_TYPE_NAMES = {
    SCALAR_NULL: "null",
    SCALAR_TRUE: "boolean",
    SCALAR_FALSE: "boolean",
    SCALAR_INT: "number",
    SCALAR_NUMBER: "number",
    SCALAR_FLOAT: "number",
    SCALAR_STRING: "string",
    SCALAR_NUMSTR: "number",
}
