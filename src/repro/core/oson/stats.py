"""OSON segment-size statistics (Tables 10 and 11).

Helpers that, given a collection of documents, report average encoded
sizes under JSON text / BSON / OSON and the average fraction of OSON
bytes spent in each of the three segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro import bson
from repro.core.oson.decoder import OsonDocument
from repro.core.oson.encoder import encode as oson_encode
from repro.jsontext import dumps


@dataclass(frozen=True, slots=True)
class SizeStats:
    """Average encoded byte size per document for the three formats."""

    count: int
    avg_json: float
    avg_bson: float
    avg_oson: float


@dataclass(frozen=True, slots=True)
class SegmentStats:
    """Average fraction of total OSON bytes per segment (header excluded,
    matching the paper's three-way breakdown)."""

    count: int
    dictionary_ratio: float
    tree_ratio: float
    values_ratio: float


def size_stats(documents: Iterable[Any]) -> SizeStats:
    """Encode each document three ways and average the byte sizes."""
    count = 0
    total_json = total_bson = total_oson = 0
    for doc in documents:
        count += 1
        total_json += len(dumps(doc).encode("utf-8"))
        total_bson += len(bson.encode(doc))
        total_oson += len(oson_encode(doc))
    if count == 0:
        return SizeStats(0, 0.0, 0.0, 0.0)
    return SizeStats(count, total_json / count, total_bson / count,
                     total_oson / count)


def segment_stats(documents: Iterable[Any]) -> SegmentStats:
    """Average the per-segment byte ratios of the OSON encoding."""
    count = 0
    dict_sum = tree_sum = value_sum = 0.0
    for doc in documents:
        encoded = oson_encode(doc)
        sizes = OsonDocument(encoded).segment_sizes()
        total = sizes["dictionary"] + sizes["tree"] + sizes["values"]
        if total == 0:
            continue
        count += 1
        dict_sum += sizes["dictionary"] / total
        tree_sum += sizes["tree"] / total
        value_sum += sizes["values"] / total
    if count == 0:
        return SegmentStats(0, 0.0, 0.0, 0.0)
    return SegmentStats(count, dict_sum / count, tree_sum / count,
                        value_sum / count)


def size_table(rows: Sequence[tuple[str, Iterable[Any]]]) -> list[dict[str, Any]]:
    """Build Table 10 rows: one dict per named collection."""
    table = []
    for name, documents in rows:
        stats = size_stats(documents)
        table.append({
            "collection": name,
            "avg_json_bytes": round(stats.avg_json, 1),
            "avg_bson_bytes": round(stats.avg_bson, 1),
            "avg_oson_bytes": round(stats.avg_oson, 1),
        })
    return table


def segment_table(rows: Sequence[tuple[str, Iterable[Any]]]) -> list[dict[str, Any]]:
    """Build Table 11 rows: per-collection average segment ratios."""
    table = []
    for name, documents in rows:
        stats = segment_stats(documents)
        table.append({
            "collection": name,
            "dictionary_pct": round(100 * stats.dictionary_ratio, 2),
            "tree_pct": round(100 * stats.tree_ratio, 2),
            "values_pct": round(100 * stats.values_ratio, 2),
        })
    return table
