"""Field-id-name dictionary segment (section 4.2.1).

The dictionary maps field names <-> integer field name identifiers for one
OSON document.  Entries are stored sorted by 32-bit hash id (ties broken
by name bytes so the encoding is deterministic under collisions); a field's
identifier is its ordinal position in that sorted order.  Lookup hashes the
probe name, binary-searches the hash array and resolves collisions with a
string compare — exactly the paper's procedure.
"""

from __future__ import annotations

import itertools
import struct
from bisect import bisect_left
from typing import Iterable, Optional, Sequence

from repro.core.counters import BoundedCache
from repro.core.oson.hashing import field_name_hash
from repro.errors import OsonError

_ENTRY = struct.Struct("<IB")  # hash, name length (offsets are cumulative)

#: monotonic generation stamps: two FieldDictionary objects share a
#: generation number iff they are the same object, so a generation
#: comparison substitutes for the (hash, name) look-back validation in
#: :class:`repro.core.oson.cache.FieldIdResolver`
_generations = itertools.count(1)

#: interned dictionaries keyed by the raw segment bytes: documents of a
#: structurally homogeneous collection carry byte-identical dictionary
#: segments, so decoding a stream of them parses the segment once and
#: every document shares one (same-generation) dictionary object
_INTERNED = BoundedCache("oson.dictionary_intern", maxsize=256)


class FieldDictionary:
    """In-memory form of the dictionary segment."""

    __slots__ = ("hashes", "names", "generation", "_id_by_name")

    def __init__(self, hashes: Sequence[int], names: Sequence[str]) -> None:
        self.hashes = list(hashes)
        self.names = list(names)
        self.generation = next(_generations)
        self._id_by_name: Optional[dict[str, int]] = None

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, field_names: Iterable[str]) -> "FieldDictionary":
        """Build a dictionary from the distinct field names of a document.

        Entries are sorted by (hash, name) so the mapping is total and
        deterministic even under hash collisions.
        """
        distinct = sorted(set(field_names), key=lambda n: (field_name_hash(n), n))
        return cls([field_name_hash(n) for n in distinct], distinct)

    # -- lookups ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.names)

    def field_id(self, name: str, name_hash: Optional[int] = None) -> Optional[int]:
        """Resolve a field name to its identifier, or ``None`` if absent.

        ``name_hash`` lets callers supply a hash precomputed at SQL/JSON
        path compile time (section 4.2.1's first optimization).
        """
        if name_hash is None:
            name_hash = field_name_hash(name)
        index = bisect_left(self.hashes, name_hash)
        while index < len(self.hashes) and self.hashes[index] == name_hash:
            if self.names[index] == name:  # hash-collision resolution
                return index
            index += 1
        return None

    def field_id_fast(self, name: str) -> Optional[int]:
        """Dict-backed lookup used by the encoder (builds the map lazily)."""
        if self._id_by_name is None:
            self._id_by_name = {n: i for i, n in enumerate(self.names)}
        return self._id_by_name.get(name)

    def field_name(self, field_id: int) -> str:
        if not 0 <= field_id < len(self.names):
            raise OsonError(f"field id {field_id} out of range")
        return self.names[field_id]

    def field_hash(self, field_id: int) -> int:
        if not 0 <= field_id < len(self.hashes):
            raise OsonError(f"field id {field_id} out of range")
        return self.hashes[field_id]

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the on-disk dictionary segment layout.

        Entries carry (hash, name length) only — 5 bytes each; name
        offsets into the blob are the cumulative sums of the lengths, so
        they need no storage.
        """
        if len(self.names) > 0xFFFF:
            raise OsonError("more than 65535 distinct field names in one document")
        blob = bytearray()
        entries = bytearray()
        for name_hash, name in zip(self.hashes, self.names):
            encoded = name.encode("utf-8")
            if len(encoded) > 0xFF:
                raise OsonError(
                    f"field name longer than 255 bytes: {name[:40]!r}...")
            entries += _ENTRY.pack(name_hash, len(encoded))
            blob += encoded
        return struct.pack("<H", len(self.names)) + bytes(entries) + bytes(blob)

    @classmethod
    def from_bytes(cls, buffer: bytes, start: int) -> tuple["FieldDictionary", int]:
        """Parse a dictionary segment; returns (dictionary, end offset).

        Parsed dictionaries are interned by their raw segment bytes:
        byte-identical segments (every document of a homogeneous
        collection) yield the *same* dictionary object, which both skips
        the name decoding and gives downstream field-id caches a stable
        ``generation`` to key on.
        """
        if start + 2 > len(buffer):
            raise OsonError("truncated dictionary segment")
        (count,) = struct.unpack_from("<H", buffer, start)
        pos = start + 2
        entries_end = pos + count * _ENTRY.size
        if entries_end > len(buffer):
            raise OsonError("truncated dictionary entries")
        hashes: list[int] = []
        lengths: list[int] = []
        for _ in range(count):
            name_hash, name_len = _ENTRY.unpack_from(buffer, pos)
            hashes.append(name_hash)
            lengths.append(name_len)
            pos += _ENTRY.size
        blob_end = entries_end + sum(lengths)
        if blob_end > len(buffer):
            raise OsonError("dictionary name blob truncated",
                            offset=entries_end)
        segment = bytes(buffer[start:blob_end])
        interned = _INTERNED.get(segment)
        if interned is not None:
            return interned, blob_end
        names = []
        cursor = entries_end
        for name_len in lengths:
            end = cursor + name_len
            try:
                names.append(buffer[cursor:end].decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise OsonError("dictionary field name is not valid UTF-8",
                                offset=cursor) from exc
            cursor = end
        dictionary = cls(hashes, names)
        _INTERNED.put(segment, dictionary)
        return dictionary, cursor
