"""Partial OSON updates (section 4.2.3, last paragraph).

The paper limits partial updates to "changes of existing leaf scalar
values"; structure (adding/removing fields or array elements) requires a
re-encode.  :class:`OsonUpdater` applies that contract over a mutable
buffer:

* booleans flip in the node header (inline scalars);
* numbers and strings are overwritten in place when the new encoding fits
  the old value slot, otherwise the new bytes are appended to the end of
  the value segment (the end of the buffer) and the scalar node is
  re-pointed — old bytes become dead space until the document is
  re-encoded;
* changes that alter the scalar *class* (e.g. string -> number) or touch
  a non-scalar node raise :class:`~repro.errors.OsonUpdateError`.
"""

from __future__ import annotations

from typing import Any

from repro.core.oson import constants as c
from repro.core.oson.decoder import OsonDocument
from repro.core.oson.encoder import encode_scalar_payload
from repro.core.oson.numbers import leb128_size, write_leb128
from repro.errors import OsonUpdateError

#: scalar types grouped into update classes
_CLASS = {
    c.SCALAR_NULL: "null",
    c.SCALAR_TRUE: "boolean",
    c.SCALAR_FALSE: "boolean",
    c.SCALAR_INT: "number",
    c.SCALAR_NUMBER: "number",
    c.SCALAR_FLOAT: "number",
    c.SCALAR_NUMSTR: "number",
    c.SCALAR_STRING: "string",
}


class OsonUpdater:
    """In-place leaf-scalar updates over an OSON byte buffer."""

    def __init__(self, data: bytes) -> None:
        self._buffer = bytearray(data)
        self._doc = OsonDocument(bytes(self._buffer))

    @property
    def document(self) -> OsonDocument:
        """A document view over the current buffer state."""
        return self._doc

    def to_bytes(self) -> bytes:
        return bytes(self._buffer)

    def set_scalar(self, node: int, new_value: Any) -> None:
        """Replace the scalar at tree address ``node`` with ``new_value``."""
        doc = self._doc
        if doc.node_type(node) != c.NODE_SCALAR:
            raise OsonUpdateError("partial update supports leaf scalars only")
        node_base = doc.tree_start + node
        header = self._buffer[node_base]
        old_type = (header >> c.SCALAR_TYPE_SHIFT) & c.SCALAR_TYPE_MASK
        new_type, payload = encode_scalar_payload(new_value)
        if _CLASS[old_type] != _CLASS[new_type]:
            raise OsonUpdateError(
                f"cannot change scalar class {_CLASS[old_type]!r} -> "
                f"{_CLASS[new_type]!r}; re-encode the document instead")
        if new_type in c.INLINE_SCALARS:
            # boolean flip / null no-op: retag the header, keep width bits
            self._buffer[node_base] = (
                c.NODE_SCALAR | (new_type << c.SCALAR_TYPE_SHIFT)
                | (header & (c.SCALAR_WIDTH_MASK << c.SCALAR_WIDTH_SHIFT)))
            self._reload()
            return
        width = ((header >> c.SCALAR_WIDTH_SHIFT) & c.SCALAR_WIDTH_MASK) + 1
        slot_start, slot_total = self._value_slot(doc, node, old_type)
        needed = (8 if new_type == c.SCALAR_FLOAT
                  else leb128_size(len(payload)) + len(payload))
        if needed <= slot_total:
            self._write_value(slot_start, new_type, payload)
        else:
            # grow: append at the end of the value segment (buffer end)
            new_rel = len(self._buffer) - doc.value_start
            if new_rel >= 1 << (8 * width):
                raise OsonUpdateError(
                    "grown value offset does not fit the node's offset "
                    "width; re-encode the document")
            self._write_value(len(self._buffer), new_type, payload)
            self._buffer[node_base + 1:node_base + 1 + width] = (
                new_rel.to_bytes(width, "little"))
        self._buffer[node_base] = (
            c.NODE_SCALAR | (new_type << c.SCALAR_TYPE_SHIFT)
            | ((width - 1) << c.SCALAR_WIDTH_SHIFT))
        self._reload()

    def set_scalar_by_path(self, steps: list, new_value: Any) -> None:
        """Navigate ``steps`` (field names / array indices) and update."""
        node = self._doc.root
        for step in steps:
            if isinstance(step, str):
                child = self._doc.get_field_value_by_name(node, step)
            else:
                child = self._doc.get_array_element(node, step)
            if child is None:
                raise OsonUpdateError(f"path step {step!r} not found")
            node = child
        self.set_scalar(node, new_value)

    # -- internal ------------------------------------------------------------

    @staticmethod
    def _value_slot(doc: OsonDocument, node: int,
                    old_type: int) -> tuple[int, int]:
        """(absolute slot start, total slot bytes) of the current value."""
        _scalar_type, payload_off, length = doc.get_scalar_info(node)
        if old_type == c.SCALAR_FLOAT:
            return payload_off, 8
        prefix_bytes = leb128_size(length)
        return payload_off - prefix_bytes, prefix_bytes + length

    def _write_value(self, at: int, new_type: int, payload: bytes) -> None:
        chunk = bytearray()
        if new_type != c.SCALAR_FLOAT:
            write_leb128(chunk, len(payload))
        chunk += payload
        end = at + len(chunk)
        if end > len(self._buffer):
            self._buffer += bytes(end - len(self._buffer))
        self._buffer[at:end] = chunk

    def _reload(self) -> None:
        self._doc = OsonDocument(bytes(self._buffer))
