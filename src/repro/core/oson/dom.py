"""The four JSON DOM primitives of section 5.1, spelled as in the paper.

These are thin aliases over :class:`repro.core.oson.decoder.OsonDocument`
methods so that code ported from the paper's pseudo-interface reads
one-to-one::

    JsonDomGetNodeType(doc, addr)
    JsonDomGetFieldValue(doc, addr, field_id)
    JsonDomGetArrayElement(doc, addr, index)
    JsonDomGetScalarInfo(doc, addr)
"""

from __future__ import annotations

from typing import Optional

from repro.core.oson.decoder import OsonDocument


def JsonDomGetNodeType(doc: OsonDocument, node: int) -> int:  # noqa: N802
    """Node type tag at tree address ``node``."""
    return doc.node_type(node)


def JsonDomGetFieldValue(doc: OsonDocument, node: int,  # noqa: N802
                         field_id: int) -> Optional[int]:
    """Binary-searched child lookup by field name identifier."""
    return doc.get_field_value(node, field_id)


def JsonDomGetArrayElement(doc: OsonDocument, node: int,  # noqa: N802
                           index: int) -> Optional[int]:
    """Direct positional child lookup in an array node."""
    return doc.get_array_element(node, index)


def JsonDomGetScalarInfo(doc: OsonDocument, node: int) -> tuple[int, int, int]:  # noqa: N802
    """(scalar type, value-segment offset, payload length) of a scalar node."""
    return doc.get_scalar_info(node)
