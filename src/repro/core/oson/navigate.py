"""Partial-decode path navigation over raw OSON images (section 5.1/6).

:func:`navigate` executes a compiled navigation program directly against
an :class:`~repro.core.oson.decoder.OsonDocument`: field steps resolve
names through the dictionary segment (one
:class:`~repro.core.oson.cache.FieldIdResolver` resolution per step per
document) and binary-search the sorted field-id arrays; array steps jump
by element offset.  Only the nodes actually on the path are touched and
only the terminal scalar/subtree is ever decoded — a simple
``$.a.b[n].c`` path never builds a DOM.

The program is a flat tuple of opcode tuples produced by
:mod:`repro.sqljson.path.compiler` (this module is deliberately free of
any path-AST dependency so the core package stays below the SQL/JSON
layer):

========================== ==================================================
``(OP_FIELD, compiled)``   lax member step (``CompiledFieldName``), with
                           the standard's array auto-unnesting
``(OP_INDEX, subscripts)`` subscript list; each subscript is a
                           ``(start, end, last_rel, end_last_rel)`` tuple
                           with inclusive ``end`` (``None`` = single index)
``(OP_WILD,)``             ``[*]`` — all elements, lax singleton semantics
``(OP_FILTER, predicate)`` ``?(...)`` — opaque callable
                           ``predicate(doc, node, resolver) -> bool``
========================== ==================================================

Semantics are *lax* mode, mirroring
:class:`repro.sqljson.path.evaluator.PathEvaluator` exactly (the
differential suite in ``tests/sqljson`` asserts byte-identical results);
strict-mode paths are never compiled to programs.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Sequence

from repro.core.oson import constants as c
from repro.core.oson.cache import FieldIdResolver
from repro.core.oson.decoder import OsonDocument
from repro.errors import OsonError
from repro.obs import metrics as _metrics

OP_FIELD = "field"
OP_INDEX = "index"
OP_WILD = "wild"
OP_FILTER = "filter"

#: EXPLAIN ANALYZE signal: how often the single-live-node chain walk
#: handled a program vs. falling back to the general list interpreter
#: (lax unnesting forces the fallback even on chain-shaped programs)
_CHAIN_WALKS = _metrics.counter("oson.navigate.chain_walks")
_GENERAL_RUNS = _metrics.counter("oson.navigate.general_runs")

#: module-level kill switch for the before/after ablation benchmarks:
#: with navigation disabled every path evaluation takes the DOM-adapter
#: route, which is exactly the pre-optimization engine
_enabled = True


def set_navigation_enabled(enabled: bool) -> bool:
    """Toggle the partial-decode fast path; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def navigation_enabled() -> bool:
    return _enabled


class NavProgram:
    """A compiled navigation program plus its precomputed fast-walk form.

    ``chain`` is the single-node walk specialization: when every opcode
    is a member step or a single non-negative absolute index, at most
    one node is live at a time (unless lax unnesting kicks in) and the
    interpreter can walk without building per-step lists.
    """

    __slots__ = ("ops", "chain")

    def __init__(self, ops: Sequence[tuple]) -> None:
        self.ops = tuple(ops)
        self.chain = self._build_chain()

    def _build_chain(self) -> Optional[tuple]:
        chain = []
        for op in self.ops:
            tag = op[0]
            if tag == OP_FIELD:
                chain.append(op)
            elif tag == OP_INDEX:
                subscripts = op[1]
                if len(subscripts) != 1:
                    return None
                start, end, last_rel, _ = subscripts[0]
                if end is not None or last_rel or start < 0:
                    return None
                chain.append((OP_INDEX, start))
            else:
                return None
        return tuple(chain)

    def __repr__(self) -> str:
        return f"NavProgram({self.ops!r})"


#: sentinel: the single-node walk met an array on a member step and the
#: general (list-building) interpreter must take over for lax unnesting
_UNNEST = object()


def navigate(doc: OsonDocument, program: NavProgram,
             context: Optional[int] = None,
             resolver: Optional[FieldIdResolver] = None) -> list[int]:
    """Node addresses selected by ``program`` from ``context`` (default
    the document root).  Results are tree offsets in ``doc``'s domain —
    the same node handles :class:`repro.sqljson.adapters.OsonAdapter`
    hands out, so callers decode terminals with ``doc.scalar_value`` /
    ``doc.materialize`` exactly as on the DOM route.
    """
    node = doc.root if context is None else context
    chain = program.chain
    if chain is not None:
        result = _walk_chain(doc, chain, node, resolver)
        if result is not _UNNEST:
            _CHAIN_WALKS.inc()
            return result
    _GENERAL_RUNS.inc()
    return _run(doc, program.ops, [node], resolver)


def _walk_chain(doc: OsonDocument, chain: tuple, node: int,
                resolver: Optional[FieldIdResolver]) -> Any:
    """Single-live-node walk for pure member/single-index chains."""
    for op in chain:
        if op[0] == OP_FIELD:
            node_type = doc.node_type(node)
            if node_type == c.NODE_ARRAY:
                return _UNNEST  # lax auto-unnesting: needs node lists
            if node_type != c.NODE_OBJECT:
                return []
            compiled = op[1]
            if resolver is not None:
                field_id = resolver.resolve(doc, compiled)
            else:
                field_id = doc.field_id(compiled.name, compiled.hash)
            if field_id is None:
                return []
            child = doc.get_field_value(node, field_id)
            if child is None:
                return []
            node = child
        else:  # single absolute index
            index = op[1]
            if doc.node_type(node) == c.NODE_ARRAY:
                child = doc.get_array_element(node, index)
                if child is None:
                    return []
                node = child
            elif index != 0:
                return []  # lax: non-array is a singleton array
    return [node]


def _run(doc: OsonDocument, ops: tuple, nodes: list[int],
         resolver: Optional[FieldIdResolver]) -> list[int]:
    """General interpreter: one node list per step, lax semantics."""
    for op in ops:
        tag = op[0]
        if tag == OP_FIELD:
            nodes = _step_field(doc, nodes, op[1], resolver)
        elif tag == OP_INDEX:
            nodes = _step_index(doc, nodes, op[1])
        elif tag == OP_WILD:
            nodes = _step_wildcard(doc, nodes)
        elif tag == OP_FILTER:
            predicate = op[1]
            nodes = [n for n in nodes if predicate(doc, n, resolver)]
        else:
            raise OsonError(f"unknown navigation opcode {tag!r}")
        if not nodes:
            return nodes
    return nodes


def _step_field(doc: OsonDocument, nodes: list[int],
                compiled: Any,
                resolver: Optional[FieldIdResolver]) -> list[int]:
    if resolver is not None:
        field_id = resolver.resolve(doc, compiled)
    else:
        field_id = doc.field_id(compiled.name, compiled.hash)
    if field_id is None:
        return []  # absent from the dictionary => absent from every object
    out: list[int] = []
    for node in nodes:
        node_type = doc.node_type(node)
        if node_type == c.NODE_OBJECT:
            child = doc.get_field_value(node, field_id)
            if child is not None:
                out.append(child)
        elif node_type == c.NODE_ARRAY:
            # lax auto-unnesting: the member step applies to each
            # object element (nested arrays are not recursed into)
            for element in doc.array_elements(node):
                if doc.node_type(element) == c.NODE_OBJECT:
                    child = doc.get_field_value(element, field_id)
                    if child is not None:
                        out.append(child)
    return out


def _step_wildcard(doc: OsonDocument, nodes: list[int]) -> list[int]:
    out: list[int] = []
    for node in nodes:
        if doc.node_type(node) == c.NODE_ARRAY:
            out.extend(doc.array_elements(node))
        else:
            out.append(node)  # lax: non-array behaves as singleton array
    return out


def _step_index(doc: OsonDocument, nodes: list[int],
                subscripts: tuple) -> list[int]:
    out: list[int] = []
    for node in nodes:
        if doc.node_type(node) != c.NODE_ARRAY:
            # lax: the item is a singleton array — it survives iff some
            # subscript expands to index 0
            for index in _expand_subscripts(subscripts, 1):
                if index == 0:
                    out.append(node)
        else:
            length = doc.child_count(node)
            for index in _expand_subscripts(subscripts, length):
                child = doc.get_array_element(node, index)
                if child is not None:
                    out.append(child)
    return out


def _expand_subscripts(subscripts: tuple, length: int) -> Iterator[int]:
    """Expand ``(start, end, last_rel, end_last_rel)`` subscripts to
    element indexes, mirroring ``PathEvaluator._expand_indexes`` in lax
    mode (negative single indexes drop; descending ranges drop)."""
    for start, end, last_rel, end_last_rel in subscripts:
        first = (length - 1 - start) if last_rel else start
        if end is None:
            if first >= 0:
                yield first
            continue
        last = (length - 1 - end) if end_last_rel else end
        if last < first:
            continue
        yield from range(first, last + 1)


#: callable signature for compiled filter predicates (documented here so
#: the compiler and the VM agree on the contract)
Predicate = Callable[[OsonDocument, int, Optional[FieldIdResolver]], bool]
