"""OSON decoder: a lazy, offset-navigated DOM over raw OSON bytes.

:class:`OsonDocument` parses only the 20-byte header and the dictionary
segment eagerly.  All tree access is by byte offset into the tree-node
navigation segment — node addresses in the sense of section 4.2.2 — so a
path evaluation touches only the nodes it walks, never the whole
document.  The four DOM primitives of section 5.1 (`JsonDomGetNodeType`,
`JsonDomGetFieldValue`, `JsonDomGetArrayElement`, `JsonDomGetScalarInfo`)
are exposed as thin wrappers in :mod:`repro.core.oson.dom`.
"""

from __future__ import annotations

import struct
from decimal import Decimal
from typing import Any, Iterator, Optional

from repro.core.oson import constants as c
from repro.core.oson.dictionary import FieldDictionary
from repro.core.oson.numbers import read_leb128, unpack_decimal, unpack_int
from repro.errors import OsonError

_unpack_u16 = struct.Struct("<H").unpack_from
_unpack_u32 = struct.Struct("<I").unpack_from
_unpack_f64 = struct.Struct("<d").unpack_from


class OsonDocument:
    """A decoded OSON document header plus navigation methods.

    Node addresses handed out by this class are byte offsets relative to
    the tree segment start; ``root`` is the document root's address.
    """

    __slots__ = ("buffer", "dictionary", "tree_start", "value_start", "root")

    def __init__(self, buffer: bytes) -> None:
        if len(buffer) < c.HEADER_SIZE or buffer[:4] != c.MAGIC:
            raise OsonError("not an OSON buffer")
        version = buffer[4]
        if version != c.VERSION:
            raise OsonError(f"unsupported OSON version {version}", offset=4)
        self.buffer = buffer
        self.tree_start = _unpack_u32(buffer, 8)[0]
        self.value_start = _unpack_u32(buffer, 12)[0]
        self.root = _unpack_u32(buffer, 16)[0]
        if not c.HEADER_SIZE <= self.tree_start <= self.value_start <= len(buffer):
            raise OsonError("OSON segment offsets out of range", offset=8)
        if self.root >= self.value_start - self.tree_start:
            raise OsonError("OSON root offset outside the tree segment",
                            offset=16)
        self.dictionary, dict_end = FieldDictionary.from_bytes(buffer, c.HEADER_SIZE)
        if dict_end > self.tree_start:
            raise OsonError("dictionary segment overlaps tree segment",
                            offset=dict_end)

    # -- bounds checking ----------------------------------------------------

    def _checked_header(self, node: int) -> int:
        """Validate a node address and return its header byte.

        Every navigation method funnels through this (or through
        :meth:`_checked_extent`), so corrupt offsets surface as
        :class:`OsonError` instead of IndexError/struct.error.
        """
        if not 0 <= node < self.value_start - self.tree_start:
            raise OsonError(f"node offset {node} outside the tree segment",
                            offset=self.tree_start + node)
        return self.buffer[self.tree_start + node]

    def _checked_extent(self, node: int, size: int) -> None:
        """Require ``size`` node bytes starting at ``node`` to lie inside
        the tree segment."""
        if self.tree_start + node + size > self.value_start:
            raise OsonError(f"node at offset {node} overruns the tree "
                            "segment", offset=self.value_start)

    def _checked_child(self, node: int, delta: int) -> int:
        """Resolve a parent-relative child delta, enforcing the layout's
        children-strictly-before-parents invariant (which also proves
        there are no reference cycles)."""
        child = node - delta
        if delta == 0 or child < 0:
            raise OsonError(f"child delta {delta} of node {node} does not "
                            "resolve strictly before the parent",
                            offset=self.tree_start + node)
        return child

    # -- segment size accounting (Table 11) --------------------------------

    def segment_sizes(self) -> dict[str, int]:
        """Byte sizes of the header and the three segments."""
        return {
            "header": c.HEADER_SIZE,
            "dictionary": self.tree_start - c.HEADER_SIZE,
            "tree": self.value_start - self.tree_start,
            "values": len(self.buffer) - self.value_start,
        }

    # -- field-name dictionary ----------------------------------------------

    def field_id(self, name: str, name_hash: Optional[int] = None) -> Optional[int]:
        """Name -> field id via binary search on the sorted hash array."""
        return self.dictionary.field_id(name, name_hash)

    def field_name(self, field_id: int) -> str:
        return self.dictionary.field_name(field_id)

    def field_hash(self, field_id: int) -> int:
        return self.dictionary.field_hash(field_id)

    def field_count(self) -> int:
        return len(self.dictionary)

    # -- node navigation ------------------------------------------------------

    def node_type(self, node: int) -> int:
        """Node type tag: NODE_OBJECT, NODE_ARRAY or NODE_SCALAR."""
        node_type = self._checked_header(node) & c.NODE_TYPE_MASK
        if node_type == 0:
            raise OsonError(f"invalid node type at offset {node}",
                            offset=self.tree_start + node)
        return node_type

    def child_count(self, node: int) -> int:
        """Number of children of an object or array node."""
        if self._checked_header(node) & c.NODE_TYPE_MASK == c.NODE_SCALAR:
            raise OsonError("scalar nodes have no children")
        self._checked_extent(node, 3)
        return _unpack_u16(self.buffer, self.tree_start + node + 1)[0]

    def _container_layout(self, node: int, header: int,
                          with_ids: bool) -> tuple[int, int]:
        """Validate a container node's full extent; returns
        (child count, delta width)."""
        self._checked_extent(node, 3)
        count = _unpack_u16(self.buffer, self.tree_start + node + 1)[0]
        width = ((header >> c.CONTAINER_WIDTH_SHIFT)
                 & c.CONTAINER_WIDTH_MASK) + 1
        ids_size = count * 2 if with_ids else 0
        self._checked_extent(node, 3 + ids_size + count * width)
        return count, width

    def get_field_value(self, node: int, field_id: int) -> Optional[int]:
        """Binary-search an object's sorted field-id array; return the
        matching child's node address or ``None``.

        This is the core win of the format: integer comparisons over a
        contiguous sorted array instead of the string scans BSON needs.
        """
        buffer = self.buffer
        header = self._checked_header(node)
        if header & c.NODE_TYPE_MASK != c.NODE_OBJECT:
            return None
        count, width = self._container_layout(node, header, with_ids=True)
        ids_start = self.tree_start + node + 3
        lo, hi = 0, count - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            mid_id = _unpack_u16(buffer, ids_start + mid * 2)[0]
            if mid_id == field_id:
                delta_pos = ids_start + count * 2 + mid * width
                delta = int.from_bytes(
                    buffer[delta_pos:delta_pos + width], "little")
                return self._checked_child(node, delta)
            if mid_id < field_id:
                lo = mid + 1
            else:
                hi = mid - 1
        return None

    def get_field_value_by_name(self, node: int, name: str,
                                name_hash: Optional[int] = None) -> Optional[int]:
        """Resolve ``name`` through the dictionary, then jump to the child."""
        field_id = self.field_id(name, name_hash)
        if field_id is None:
            return None
        return self.get_field_value(node, field_id)

    def object_items(self, node: int) -> Iterator[tuple[int, int]]:
        """Iterate (field id, child address) pairs of an object node."""
        buffer = self.buffer
        header = self._checked_header(node)
        if header & c.NODE_TYPE_MASK != c.NODE_OBJECT:
            raise OsonError("not an object node")
        count, width = self._container_layout(node, header, with_ids=True)
        ids_start = self.tree_start + node + 3
        deltas_start = ids_start + count * 2
        for i in range(count):
            field_id = _unpack_u16(buffer, ids_start + i * 2)[0]
            delta_pos = deltas_start + i * width
            delta = int.from_bytes(buffer[delta_pos:delta_pos + width], "little")
            yield field_id, self._checked_child(node, delta)

    def get_array_element(self, node: int, index: int) -> Optional[int]:
        """Direct positional access to the Nth array element."""
        buffer = self.buffer
        header = self._checked_header(node)
        if header & c.NODE_TYPE_MASK != c.NODE_ARRAY:
            return None
        count, width = self._container_layout(node, header, with_ids=False)
        if index < 0:
            index += count
        if not 0 <= index < count:
            return None
        delta_pos = self.tree_start + node + 3 + index * width
        delta = int.from_bytes(buffer[delta_pos:delta_pos + width], "little")
        return self._checked_child(node, delta)

    def array_elements(self, node: int) -> Iterator[int]:
        """Iterate the node addresses of an array's elements."""
        buffer = self.buffer
        header = self._checked_header(node)
        if header & c.NODE_TYPE_MASK != c.NODE_ARRAY:
            raise OsonError("not an array node")
        count, width = self._container_layout(node, header, with_ids=False)
        deltas_start = self.tree_start + node + 3
        for i in range(count):
            delta_pos = deltas_start + i * width
            delta = int.from_bytes(buffer[delta_pos:delta_pos + width], "little")
            yield self._checked_child(node, delta)

    # -- scalars ---------------------------------------------------------------

    def get_scalar_info(self, node: int) -> tuple[int, int, int]:
        """Return (scalar type, absolute payload offset, payload length).

        For inline scalars (null/true/false) the offset is -1 and the
        length 0.  For length-prefixed scalars the offset points *past*
        the LEB128 length at the payload bytes.
        """
        buffer = self.buffer
        header = self._checked_header(node)
        if header & c.NODE_TYPE_MASK != c.NODE_SCALAR:
            raise OsonError("not a scalar node")
        scalar_type = (header >> c.SCALAR_TYPE_SHIFT) & c.SCALAR_TYPE_MASK
        if scalar_type in c.INLINE_SCALARS:
            return scalar_type, -1, 0
        width = ((header >> c.SCALAR_WIDTH_SHIFT) & c.SCALAR_WIDTH_MASK) + 1
        self._checked_extent(node, 1 + width)
        base = self.tree_start + node
        rel = int.from_bytes(buffer[base + 1:base + 1 + width], "little")
        abs_off = self.value_start + rel
        if abs_off >= len(buffer):
            raise OsonError(f"scalar value offset {rel} outside the value "
                            "segment", offset=base + 1)
        if scalar_type == c.SCALAR_FLOAT:
            if abs_off + 8 > len(buffer):
                raise OsonError("float payload overruns the value segment",
                                offset=abs_off)
            return scalar_type, abs_off, 8
        length, payload_off = read_leb128(buffer, abs_off)
        if payload_off + length > len(buffer):
            raise OsonError(f"{length}-byte scalar payload overruns the "
                            "value segment", offset=payload_off)
        return scalar_type, payload_off, length

    def scalar_value(self, node: int) -> Any:
        """Decode a scalar node to its Python value."""
        scalar_type, offset, length = self.get_scalar_info(node)
        if scalar_type == c.SCALAR_NULL:
            return None
        if scalar_type == c.SCALAR_TRUE:
            return True
        if scalar_type == c.SCALAR_FALSE:
            return False
        buffer = self.buffer
        if scalar_type == c.SCALAR_FLOAT:
            return _unpack_f64(buffer, offset)[0]
        payload = buffer[offset:offset + length]
        if scalar_type == c.SCALAR_INT:
            return unpack_int(payload)
        if scalar_type == c.SCALAR_NUMBER:
            return unpack_decimal(payload)
        if scalar_type == c.SCALAR_STRING:
            try:
                return payload.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise OsonError(f"string payload is not valid UTF-8: {exc}",
                                offset=offset) from exc
        if scalar_type == c.SCALAR_NUMSTR:
            try:
                text = payload.decode("ascii")
            except UnicodeDecodeError as exc:
                raise OsonError("NUMSTR payload is not ASCII",
                                offset=offset) from exc
            try:
                return int(text)
            except ValueError:
                try:
                    return Decimal(text)
                except ArithmeticError as exc:
                    raise OsonError(f"NUMSTR payload {text!r} is not a "
                                    "decimal number", offset=offset) from exc
        raise OsonError(f"unknown scalar type {scalar_type}")

    # -- materialization ----------------------------------------------------------

    def materialize(self, node: Optional[int] = None) -> Any:
        """Fully decode the subtree at ``node`` (default: root) to Python
        values.  Object key order follows field-id order, which is hash
        order — key order is not semantically significant in JSON objects."""
        if node is None:
            node = self.root
        node_type = self.node_type(node)
        if node_type == c.NODE_SCALAR:
            return self.scalar_value(node)
        if node_type == c.NODE_ARRAY:
            return [self.materialize(child) for child in self.array_elements(node)]
        return {
            self.field_name(field_id): self.materialize(child)
            for field_id, child in self.object_items(node)
        }


def decode(data: bytes) -> Any:
    """Convenience: fully decode OSON ``data`` to Python values."""
    return OsonDocument(data).materialize()
