"""OSON: Oracle binary JSON encoding (paper section 4).

A self-contained, query-friendly binary JSON format with three segments:
a field-id-name dictionary, a tree-node navigation segment, and a leaf
scalar value segment.  Public surface:

* :func:`encode` / :func:`decode` — whole-document conversion;
* :class:`OsonDocument` — lazy offset-navigated DOM;
* :class:`CompiledFieldName` / :class:`FieldIdResolver` — the hash
  precomputation and single-row look-back optimizations;
* :func:`navigate` / :class:`NavProgram` — compiled partial-decode path
  navigation straight over the binary image (no DOM);
* :func:`cached_document` — identity-keyed decoded-document cache;
* :class:`OsonUpdater` — partial leaf-scalar updates;
* :mod:`~repro.core.oson.stats` — segment size accounting (Tables 10/11);
* :class:`SharedDictionaryStore` — the section-7 set-encoding prototype.
"""

from repro.core.oson.cache import (
    CompiledFieldName,
    FieldIdResolver,
    cached_document,
)
from repro.core.oson.decoder import OsonDocument, decode
from repro.core.oson.dictionary import FieldDictionary
from repro.core.oson.encoder import encode
from repro.core.oson.hashing import field_name_hash
from repro.core.oson.navigate import (
    NavProgram,
    navigate,
    navigation_enabled,
    set_navigation_enabled,
)
from repro.core.oson.set_encoding import SharedDictionaryStore
from repro.core.oson.update import OsonUpdater

__all__ = [
    "encode",
    "decode",
    "OsonDocument",
    "FieldDictionary",
    "CompiledFieldName",
    "FieldIdResolver",
    "NavProgram",
    "OsonUpdater",
    "SharedDictionaryStore",
    "cached_document",
    "field_name_hash",
    "navigate",
    "navigation_enabled",
    "set_navigation_enabled",
]
