"""Binary number encodings for OSON scalars.

Section 4.2.3: "By default, OSON uses the Oracle binary number format to
encode JSON numbers, minimizing the cost of using these values in SQL."
Oracle NUMBER is a compact sign/exponent/BCD format; we model it with
:func:`pack_decimal` / :func:`unpack_decimal`:

    flags byte: bit7 sign, bit6 decode-to-Decimal, bits0..5 biased
    base-10 exponent; then BCD digit pairs (high nibble first, odd digit
    count padded with 0xF).

Floats whose shortest ``repr`` fits (almost all real-world JSON numbers)
take 2-9 bytes instead of IEEE's fixed 8 + framing; round-tripping is
exact because ``repr`` is the shortest string that parses back to the
same double.  Unpackable values fall back to raw IEEE (SCALAR_FLOAT) or
ASCII decimal text (SCALAR_NUMSTR).

LEB128 length helpers for the value segment live here too.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Optional, Union

from repro.core.oson import constants as c
from repro.errors import OsonError

# -- LEB128 ------------------------------------------------------------------


def write_leb128(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 integer."""
    if value < 0:
        raise OsonError("LEB128 values must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def write_leb128_padded(out: bytearray, value: int, width: int) -> None:
    """Append a LEB128 integer padded to exactly ``width`` bytes (used by
    in-place updates so the length slot keeps its size)."""
    for i in range(width - 1):
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    if value > 0x7F:
        raise OsonError("value does not fit the padded LEB128 width")
    out.append(value)


def read_leb128(buffer: bytes, pos: int,
                end: Optional[int] = None) -> tuple[int, int]:
    """Read an unsigned LEB128 integer; returns (value, next position).

    ``end`` bounds the read (defaults to the buffer length); running off
    it raises :class:`~repro.errors.OsonError` rather than IndexError.
    """
    if end is None:
        end = len(buffer)
    result = 0
    shift = 0
    while True:
        if pos >= end:
            raise OsonError("truncated LEB128 length", offset=pos)
        byte = buffer[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise OsonError("malformed LEB128 length", offset=pos)


def leb128_size(value: int) -> int:
    size = 1
    while value > 0x7F:
        value >>= 7
        size += 1
    return size


# -- integers -----------------------------------------------------------------


def pack_int(value: int) -> bytes:
    """Minimal two's-complement little-endian bytes of ``value``."""
    length = max(1, (value.bit_length() + 8) // 8)  # +8 keeps the sign bit
    return value.to_bytes(length, "little", signed=True)


def unpack_int(payload: bytes) -> int:
    if not payload:
        # int.from_bytes(b"") is 0 — an empty payload must not silently
        # decode as a value
        raise OsonError("empty integer payload")
    return int.from_bytes(payload, "little", signed=True)


# -- packed decimal ---------------------------------------------------------------


def pack_decimal(value: Union[float, Decimal]) -> Optional[bytes]:
    """Pack a float or Decimal; returns None if it does not fit.

    Fitting requires a finite value with at most
    :data:`~repro.core.oson.constants.NUMBER_MAX_DIGITS` significant
    digits and a biased exponent inside 6 bits.
    """
    if isinstance(value, Decimal):
        if not value.is_finite():
            return None
        sign, digit_tuple, exponent = value.as_tuple()
        is_decimal = True
    else:
        text = repr(float(value))
        if text in ("inf", "-inf", "nan"):
            return None
        try:
            sign, digit_tuple, exponent = Decimal(text).as_tuple()
        except ArithmeticError:  # pragma: no cover - repr is always parseable
            return None
        is_decimal = False
    digits = "".join(str(d) for d in digit_tuple)
    # strip trailing zeros into the exponent to shorten the BCD run
    stripped = digits.rstrip("0")
    if stripped:
        exponent += len(digits) - len(stripped)
        digits = stripped
    else:
        digits, exponent = "0", 0
    if len(digits) > c.NUMBER_MAX_DIGITS:
        return None
    biased = exponent + c.NUMBER_EXP_BIAS
    if not 0 <= biased <= c.NUMBER_EXP_MASK:
        return None
    flags = biased
    if sign:
        flags |= c.NUMBER_SIGN_BIT
    if is_decimal:
        flags |= c.NUMBER_DECIMAL_BIT
    out = bytearray([flags])
    for i in range(0, len(digits), 2):
        high = int(digits[i])
        low = int(digits[i + 1]) if i + 1 < len(digits) else 0xF
        out.append((high << 4) | low)
    return bytes(out)


def unpack_decimal(payload: bytes) -> Union[int, float, Decimal]:
    """Inverse of :func:`pack_decimal`."""
    if not payload:
        raise OsonError("empty packed decimal")
    flags = payload[0]
    negative = bool(flags & c.NUMBER_SIGN_BIT)
    is_decimal = bool(flags & c.NUMBER_DECIMAL_BIT)
    exponent = (flags & c.NUMBER_EXP_MASK) - c.NUMBER_EXP_BIAS
    digits: list[str] = []
    body = payload[1:]
    for index, byte in enumerate(body):
        high, low = byte >> 4, byte & 0x0F
        if high > 9:
            raise OsonError(f"invalid BCD nibble 0x{high:X} in packed decimal")
        digits.append(str(high))
        if low == 0xF:
            # padding nibble: only legal in the final byte
            if index != len(body) - 1:
                raise OsonError("packed decimal padding before the last byte")
        elif low > 9:
            raise OsonError(f"invalid BCD nibble 0x{low:X} in packed decimal")
        else:
            digits.append(str(low))
    text = "".join(digits) or "0"
    if is_decimal:
        result = Decimal(f"{'-' if negative else ''}{text}E{exponent}")
        return result
    number = float(f"{'-' if negative else ''}{text}e{exponent}")
    return number
