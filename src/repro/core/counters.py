"""Cache instrumentation: named hit/miss/eviction counters and bounded maps.

Every cache on the query hot path — the path-compilation memo, the OSON
document/adapter cache, the interned dictionary-segment cache, the
field-id resolution look-back — registers a :class:`CacheCounters`
record here, so benchmarks and the ``BENCH_results.json`` emitter can
report hit rates for one run without reaching into each subsystem.
The whole registry also feeds the unified observability export: it is
registered as the ``cache_counters`` provider section of
:func:`repro.obs.metrics.snapshot_metrics`.

:class:`BoundedCache` is the shared bounded-LRU building block: an
insertion-capped ordered map that counts hits, misses and evictions and
can be disabled wholesale (the ablation benchmarks measure the pre-cache
baseline that way).  :class:`IdentityCache` is the variant keyed by
object identity for unhashable or large keys (raw document buffers): it
pins a strong reference to the key object so a recycled ``id()`` can
never alias a dead key.

**Thread safety.**  Tracing hooks and future sharded executors probe
these caches from worker threads, so every mutation is serialized:

* registry lookups (``counters_for`` / ``cache_named``) take a lock-free
  dict-read fast path and fall into a double-checked locked insert only
  on first registration — the unsynchronized check-then-insert this code
  used to do could register two records for one name and silently drop
  half the tallies;
* counter increments go through locked ``record_*`` methods (a bare
  ``hits += 1`` is a read-modify-write the GIL may interleave);
* ``get``/``put``/``clear`` hold the cache's lock for their whole
  critical section — an LRU probe mutates the map (``move_to_end``), so
  there is no safe lock-free read of the entries themselves.  The only
  lock-free read on the probe path is the ``enabled`` flag check.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterator, Optional

from repro.obs import locks as _locks
from repro.obs import metrics as _obs_metrics


class CacheCounters:
    """Hit/miss/eviction tally for one named cache.

    Increments must go through the ``record_*`` methods, which serialize
    under the record's lock; the attributes stay public for reads and
    for single-threaded test setup.
    """

    __slots__ = ("name", "hits", "misses", "evictions", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0        # guarded-by: _lock
        self.misses = 0      # guarded-by: _lock
        self.evictions = 0   # guarded-by: _lock
        self._lock = _locks.make_lock(f"core.counters.{name}")

    def record_hit(self) -> None:
        with self._lock:
            self.hits += 1

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1

    def record_eviction(self) -> None:
        with self._lock:
            self.evictions += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate(), 4),
        }

    def __repr__(self) -> str:
        return (f"CacheCounters({self.name!r}, hits={self.hits}, "
                f"misses={self.misses}, evictions={self.evictions})")


#: guards first registration in both registries below; steady-state
#: lookups read the dicts without it
_REGISTRY_LOCK = _locks.make_lock("core.counters.registry")

#: global registry: cache name -> counters record  # guarded-by: _REGISTRY_LOCK
_REGISTRY: Dict[str, CacheCounters] = {}


def counters_for(name: str) -> CacheCounters:
    """Return (registering on first use) the counters record for ``name``."""
    record = _REGISTRY.get(name)  # lock-free fast path
    if record is None:
        with _REGISTRY_LOCK:
            record = _REGISTRY.get(name)  # double-checked under the lock
            if record is None:
                record = CacheCounters(name)
                _REGISTRY[name] = record
    return record


def registered() -> Iterator[CacheCounters]:
    with _REGISTRY_LOCK:
        records = list(_REGISTRY.values())
    return iter(records)


def snapshot_all() -> Dict[str, Dict[str, Any]]:
    """One JSON-ready dict of every registered cache's counters."""
    with _REGISTRY_LOCK:
        items = sorted(_REGISTRY.items())
    return {name: record.snapshot() for name, record in items}


def reset_all() -> None:
    for record in registered():
        record.reset()


#: cache name -> live cache object (BoundedCache / IdentityCache); lets
#: the ablation harness flip ``enabled`` on a subsystem's caches without
#: importing each owning module's private global
# guarded-by: _REGISTRY_LOCK
_CACHES: Dict[str, Any] = {}


def cache_named(name: str) -> Optional[Any]:
    """The live cache registered under ``name``, or None."""
    return _CACHES.get(name)


def set_caches_enabled(enabled: bool, names: Optional[Any] = None
                       ) -> Dict[str, bool]:
    """Enable/disable registered caches; returns the previous ``enabled``
    flags so callers can restore them (``names=None`` means all)."""
    with _REGISTRY_LOCK:
        selected = dict(_CACHES) if names is None else {
            name: _CACHES[name] for name in names if name in _CACHES}
    previous = {name: cache.enabled for name, cache in selected.items()}
    for cache in selected.values():
        cache.enabled = enabled
    return previous


def restore_caches_enabled(previous: Dict[str, bool]) -> None:
    for name, enabled in previous.items():
        cache = _CACHES.get(name)
        if cache is not None:
            cache.enabled = enabled


def _register_cache(name: str, cache: Any) -> None:
    with _REGISTRY_LOCK:
        _CACHES[name] = cache


class BoundedCache:
    """A bounded LRU map with registered counters.

    ``get`` returns ``None`` for a miss (values must therefore never be
    ``None``); ``put`` evicts the least recently used entry once
    ``maxsize`` is reached.  Setting ``enabled = False`` turns the cache
    into a pass-through (every get misses, puts are dropped) without
    unregistering its counters — the ablation benchmarks flip this to
    measure the uncached baseline.

    All entry access is serialized under one per-cache lock (see the
    module docstring); the ``enabled`` check stays outside it.
    """

    __slots__ = ("counters", "maxsize", "enabled", "_entries", "_lock")

    def __init__(self, name: str, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError(f"cache {name} needs a positive maxsize")
        self.counters = counters_for(name)
        self.maxsize = maxsize
        self.enabled = True
        # guarded-by: _lock
        self._entries: OrderedDict[Any, Any] = OrderedDict()
        self._lock = _locks.make_lock(f"core.counters.cache.{name}")
        _register_cache(name, self)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any) -> Optional[Any]:
        if not self.enabled:
            self.counters.record_miss()
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.counters.record_miss()
                return None
            self._entries.move_to_end(key)
        self.counters.record_hit()
        return entry

    def put(self, key: Any, value: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            entries = self._entries
            if key in entries:
                entries.move_to_end(key)
                entries[key] = value
                return
            if len(entries) >= self.maxsize:
                entries.popitem(last=False)
                self.counters.record_eviction()
            entries[key] = value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class IdentityCache:
    """A bounded LRU map keyed by object identity.

    Used for caches whose natural key is a large immutable buffer (OSON
    images): hashing the bytes on every probe would cost O(len), so the
    key is ``id(obj)`` and each entry pins the key object itself.  The
    pinned reference keeps the id from being recycled while the entry
    lives; a stale-id probe can therefore never return another object's
    value (the ``is`` check is structural, not defensive).

    Locking mirrors :class:`BoundedCache`.
    """

    __slots__ = ("counters", "maxsize", "enabled", "_entries", "_lock")

    def __init__(self, name: str, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError(f"cache {name} needs a positive maxsize")
        self.counters = counters_for(name)
        self.maxsize = maxsize
        self.enabled = True
        # guarded-by: _lock
        self._entries: OrderedDict[int, tuple[Any, Any]] = OrderedDict()
        self._lock = _locks.make_lock(f"core.counters.cache.{name}")
        _register_cache(name, self)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, obj: Any) -> Optional[Any]:
        if not self.enabled:
            self.counters.record_miss()
            return None
        key = id(obj)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry[0] is not obj:
                self.counters.record_miss()
                return None
            self._entries.move_to_end(key)
        self.counters.record_hit()
        return entry[1]

    def put(self, obj: Any, value: Any) -> None:
        if not self.enabled:
            return
        key = id(obj)
        with self._lock:
            entries = self._entries
            if key in entries:
                entries.move_to_end(key)
                entries[key] = (obj, value)
                return
            if len(entries) >= self.maxsize:
                entries.popitem(last=False)
                self.counters.record_eviction()
            entries[key] = (obj, value)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


def _counters_provider() -> Dict[str, Dict[str, Any]]:
    return snapshot_all()


# unify the cache registry into the observability export: one
# snapshot_metrics() call reports engine metrics AND cache hit rates
_obs_metrics.register_provider("cache_counters", _counters_provider)
