"""IMCStore: populate table columns (stored or virtual) into vectors.

Section 5.2.1: virtual columns defined with JSON_VALUE() "map directly to
the in-memory columnar format" — population evaluates the virtual-column
expression once per row and the result lives as a numpy vector; queries
then run the vectorized kernels instead of re-extracting from JSON.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.engine.table import Table
from repro.errors import CatalogError
from repro.imc.columns import ColumnVector
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

#: population runs and the store's resident vector bytes (a gauge:
#: evictions move it back down)
_POPULATES = _metrics.counter("imc.populates")
_RESIDENT_BYTES = _metrics.gauge("imc.resident_bytes")


class IMCStore:
    """An in-memory columnar cache of selected table columns."""

    def __init__(self) -> None:
        self._segments: dict[tuple[str, str], ColumnVector] = {}

    def populate(self, table: Table,
                 columns: Optional[Sequence[str]] = None) -> list[ColumnVector]:
        """Load ``columns`` of ``table`` (default: all) into vectors.

        Virtual columns are evaluated during population — this is the
        moment the JSON_VALUE extraction cost is paid, once, instead of
        per query.
        """
        names = list(columns) if columns is not None else table.column_names
        for name in names:
            table.column(name)  # raises CatalogError for unknown columns
        vectors: list[ColumnVector] = []
        with _trace.span("imc.populate", table=table.name) as s:
            materialized = list(table.scan())  # computes virtual columns
            for name in names:
                values = [row.get(name) for row in materialized]
                vector = ColumnVector.from_values(name, values)
                self._segments[(table.name, name)] = vector
                vectors.append(vector)
            s.record("rows", len(materialized))
            s.record("columns", len(names))
        _POPULATES.inc()
        _RESIDENT_BYTES.set(self.memory_bytes())
        return vectors

    def column(self, table_name: str, column_name: str) -> ColumnVector:
        try:
            return self._segments[(table_name, column_name)]
        except KeyError:
            raise CatalogError(
                f"column {table_name}.{column_name} is not IMC-populated"
            ) from None

    def is_populated(self, table_name: str, column_name: str) -> bool:
        return (table_name, column_name) in self._segments

    def evict(self, table_name: str, column_name: Optional[str] = None) -> None:
        if column_name is not None:
            self._segments.pop((table_name, column_name), None)
        else:
            for key in [k for k in self._segments if k[0] == table_name]:
                del self._segments[key]
        _RESIDENT_BYTES.set(self.memory_bytes())

    def memory_bytes(self) -> int:
        return sum(v.memory_bytes() for v in self._segments.values())
