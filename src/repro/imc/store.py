"""IMCStore: a coherent, durable-backed columnar cache of table columns.

Section 5.2.1: virtual columns defined with JSON_VALUE() "map directly to
the in-memory columnar format" — population evaluates the virtual-column
expression once per row and the result lives as a numpy vector; queries
then run the vectorized kernels instead of re-extracting from JSON.

Three mechanisms keep the cache honest:

* **Coherence** — populating a table wires its insert/delete listeners
  to a per-table :class:`~repro.imc.delta.TableDelta`.  Fresh inserts
  are absorbed at access time by evaluating just the new rows (the
  merged base+delta scan); any delete — including the delete half of an
  update — marks the base structural-stale, and the next access rebuilds
  from the current rows.  No access ever serves pre-DML values.
* **Durability** — for tables backed by a
  :class:`~repro.storage.store.CollectionStore`, the store's
  checkpoint/compact lift persists the populated columns as checksummed
  column segments (:mod:`repro.imc.segments`).  On reopen, population
  loads the pinned segments instead of re-paying the extraction scan:
  per row the value comes from the segment unless the store marks its
  document id dirty (written at or above the segment's horizon), in
  which case it is computed from the row.  Corrupt segments quarantine
  with diagnostics and degrade to rebuild-from-OSON — never fatal.
* **Projection** — :meth:`scan_rows` materializes only the named
  columns (the ``imc.columns_read`` counter is the observable contract:
  it advances by exactly the number of columns a query touches).

Locking: ``_lock`` (``imc.store``) guards every piece of shared state.
IMC code calls storage accessors *under* its lock (imc→storage is the
one sanctioned lock order); the storage layer only ever calls back in
through the registered provider with **no storage lock held**.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.engine.table import Table
from repro.errors import CatalogError, StorageError
from repro.imc.columns import ColumnVector
from repro.imc.delta import TableDelta
from repro.imc.segments import (SegmentQuarantine, decode_column_segment,
                                encodable_values)
from repro.obs import locks as _locks
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

#: population runs and the store's resident vector bytes (a gauge:
#: evictions move it back down)
_POPULATES = _metrics.counter("imc.populates")
_RESIDENT_BYTES = _metrics.gauge("imc.resident_bytes")
#: projection pushdown contract: columns actually read by IMC scans
_COLUMNS_READ = _metrics.counter("imc.columns_read")
#: durable-segment traffic: cold-start loads and quarantined segments
_SEGMENT_LOADS = _metrics.counter("imc.segment_loads")
_SEGMENT_QUARANTINES = _metrics.counter("imc.segment_quarantines")


class _TableState:
    """Per-table cache state: canonical column values + delta buffer.

    ``values[name]`` is the exact Python value list, heap-row-aligned —
    the numpy vectors are derived from it, and scans/segments serve it
    directly, so columnar answers are byte-identical to row mode.
    ``doc_ids`` aligns backing document ids (durable tables only)."""

    __slots__ = ("table", "delta", "doc_ids", "values")

    def __init__(self, table: Table) -> None:
        self.table = table
        self.delta = TableDelta()
        self.doc_ids: Optional[List[int]] = None
        self.values: Dict[str, List[Any]] = {}


class IMCStore:
    """An in-memory columnar cache of selected table columns."""

    def __init__(self) -> None:
        # serializes all cache state: vector map, per-table states,
        # quarantine log.  Storage accessors may be called under it
        # (imc→storage); the reverse never happens.
        self._lock = _locks.make_lock("imc.store")
        self._segments: Dict[tuple, ColumnVector] = {}  # guarded-by: _lock
        self._tables: Dict[str, _TableState] = {}       # guarded-by: _lock
        self._quarantines: List[SegmentQuarantine] = []  # guarded-by: _lock

    # -- public API --------------------------------------------------------

    def bind(self, table: Table) -> None:
        """Attach a table without loading anything: wire the coherence
        listeners and (for durable tables) register the segment-lift
        provider so the next checkpoint persists populated columns."""
        with self._lock:
            self._ensure_state(table)

    def populate(self, table: Table,
                 columns: Optional[Sequence[str]] = None
                 ) -> list[ColumnVector]:
        """Load ``columns`` of ``table`` (default: all) into vectors.

        Duplicate names are populated once (first occurrence wins the
        ordering).  For a durable table with pinned column segments the
        values come from the segments — no extraction scan, no
        ``imc.populate`` span — and only rows the store marks dirty are
        computed from the heap.  Otherwise this is the moment the
        JSON_VALUE extraction cost is paid, once, instead of per query.
        """
        names = _dedupe(columns if columns is not None
                        else table.column_names)
        for name in names:
            table.column(name)  # raises CatalogError for unknown columns
        with self._lock:
            state = self._ensure_state(table)
            self._refresh(state)
            self._load_columns(state, names)
            return [self._segments[(table.name, name)] for name in names]

    def scan_rows(self, table: Table,
                  names: Sequence[str]) -> List[Dict[str, Any]]:
        """The merged columnar scan: row dicts carrying **only** the
        named columns, base segments plus the row-wise delta absorbed.
        Exactly ``len(names)`` columns are loaded (projection pushdown);
        ``imc.columns_read`` advances by that count."""
        names = _dedupe(names)
        for name in names:
            table.column(name)
        with self._lock:
            state = self._ensure_state(table)
            self._refresh(state)
            missing = [n for n in names if n not in state.values]
            if missing:
                self._load_columns(state, missing)
            _COLUMNS_READ.inc(len(names))
            cols = [state.values[name] for name in names]
            count = len(cols[0]) if cols else 0
            return [{name: cols[j][i] for j, name in enumerate(names)}
                    for i in range(count)]

    def column(self, table_name: str, column_name: str) -> ColumnVector:
        with self._lock:
            state = self._tables.get(table_name)
            if state is not None:
                self._refresh(state)  # absorb DML before serving
            try:
                return self._segments[(table_name, column_name)]
            except KeyError:
                raise CatalogError(
                    f"column {table_name}.{column_name} is not "
                    f"IMC-populated") from None

    def is_populated(self, table_name: str, column_name: str) -> bool:
        with self._lock:
            return (table_name, column_name) in self._segments

    def evict(self, table_name: str,
              column_name: Optional[str] = None) -> None:
        with self._lock:
            state = self._tables.get(table_name)
            if column_name is not None:
                self._segments.pop((table_name, column_name), None)
                if state is not None:
                    state.values.pop(column_name, None)
            else:
                for key in [k for k in self._segments
                            if k[0] == table_name]:
                    del self._segments[key]
                if state is not None:
                    state.values = {}
                    state.delta.clear()
            _RESIDENT_BYTES.set(self._memory_bytes())

    def memory_bytes(self) -> int:
        with self._lock:
            return self._memory_bytes()

    def segment_quarantines(self) -> List[SegmentQuarantine]:
        """Segments skipped instead of trusted (corrupt/missing/
        mismatched), in load order — the degraded-read audit trail."""
        with self._lock:
            return list(self._quarantines)

    # -- internals (call with _lock held) ----------------------------------

    def _memory_bytes(self) -> int:
        return sum(v.memory_bytes() for v in self._segments.values())

    @_locks.guarded_by("_lock")
    def _ensure_state(self, table: Table) -> _TableState:
        state = self._tables.get(table.name)
        if state is not None and state.table is table:
            return state
        state = _TableState(table)
        self._tables[table.name] = state
        self._wire(table, state)
        return state

    def _wire(self, table: Table, state: _TableState) -> None:
        """Coherence listeners + (durable) the checkpoint-lift provider.
        Listener closures check the state is still current so a table
        re-bound under the same name cannot cross-talk."""
        def on_insert(row: dict, state: _TableState = state) -> None:
            with self._lock:
                if self._tables.get(state.table.name) is state:
                    state.delta.note_insert(row)

        def on_delete(row: dict, state: _TableState = state) -> None:
            with self._lock:
                if self._tables.get(state.table.name) is state:
                    state.delta.note_delete(row)

        table.on_insert(on_insert)
        table.on_delete(on_delete)
        table.imc = self  # plan rewrite discovers the binding here
        store = _durable_store(table)
        if store is not None:
            store.set_imc_provider(self._make_provider(state))

    def _make_provider(self, state: _TableState) -> Any:
        """The checkpoint/compact lift callback: the current absorbed
        columnar form, keyed and sorted by document id.  The storage
        layer calls it with **no storage lock held**; rows written after
        the lift's snapshot are covered by the segment horizon (recovery
        marks them dirty), so serving the live state here is sound."""
        def provider(snapshot: Any) -> Optional[List[tuple]]:
            with self._lock:
                if self._tables.get(state.table.name) is not state:
                    return None
                self._refresh(state)
                if state.doc_ids is None or not state.values:
                    return None
                out = []
                for name in state.values:
                    pairs = sorted(zip(state.doc_ids, state.values[name]))
                    doc_ids = [doc_id for doc_id, _ in pairs]
                    values = [value for _, value in pairs]
                    if not encodable_values(values):
                        continue  # stays rebuild-from-OSON
                    out.append((state.table.name, name, doc_ids, values))
                return out or None
        return provider

    def _refresh(self, state: _TableState) -> None:
        """Absorb the table's delta before serving columnar state."""
        delta = state.delta
        if not delta.dirty:
            return
        if not state.values:
            delta.clear()
            return
        if delta.structural:
            names = list(state.values)
            state.values = {}
            delta.clear()
            self._load_columns(state, names)
            return
        appended = list(delta.appended)
        delta.clear()
        table = state.table
        for name, values in state.values.items():
            column = table.column(name)
            if column.expression is not None:
                expression = column.expression
                values.extend(expression.evaluate(row) for row in appended)
            else:
                values.extend(row.get(name) for row in appended)
        if state.doc_ids is not None:
            state.doc_ids.extend(table.doc_id_of(row) for row in appended)
        self._rebuild_vectors(state, list(state.values))

    def _load_columns(self, state: _TableState,
                      names: Sequence[str]) -> None:
        """(Re)load columns: pinned durable segments where available
        and verified, extraction from the rows otherwise."""
        table = state.table
        store = _durable_store(table)
        if store is not None:
            pairs = table.doc_id_rows()
            state.doc_ids = [doc_id for doc_id, _ in pairs]
            rows = [row for _, row in pairs]
            entries = {entry["column"]: entry
                       for entry in store.imc_segments()
                       if entry["table"] == table.name}
            dirty = store.imc_dirty_ids()
        else:
            pairs = []
            state.doc_ids = None
            rows = list(table.raw_rows())
            entries = {}
            dirty = set()
        from_segments = [n for n in names if n in entries]
        computed = [n for n in names if n not in entries]
        if from_segments:
            with _trace.span("imc.segment_load", table=table.name) as s:
                loaded = 0
                for name in from_segments:
                    values = self._segment_values(store, table, name,
                                                  entries[name], dirty,
                                                  pairs)
                    if values is None:
                        computed.append(name)  # degraded: rebuild
                        continue
                    state.values[name] = values
                    loaded += 1
                s.record("rows", len(pairs))
                s.record("columns", loaded)
            _SEGMENT_LOADS.inc(loaded)
        if computed:
            with _trace.span("imc.populate", table=table.name) as s:
                for name in computed:
                    state.values[name] = _computed_values(table, name, rows)
                s.record("rows", len(rows))
                s.record("columns", len(computed))
            _POPULATES.inc()
        self._rebuild_vectors(state, names)

    def _segment_values(self, store: Any, table: Table, name: str,
                        entry: dict, dirty: set,
                        pairs: List[tuple]) -> Optional[List[Any]]:
        """Heap-aligned values from one pinned segment; None (with a
        quarantine) when the segment cannot be trusted."""
        try:
            data = store.read_imc_segment(entry["name"])
        except (StorageError, OSError) as exc:
            self._quarantine(entry, f"unreadable: {exc}")
            return None
        if len(data) != entry["length"]:
            data = data[:entry["length"]]
        try:
            segment = decode_column_segment(data)
        except StorageError as exc:
            self._quarantine(entry, str(exc))
            return None
        if segment.table != table.name or segment.column != name:
            self._quarantine(
                entry, f"claims {segment.table}.{segment.column}")
            return None
        base = dict(zip(segment.doc_ids, segment.values))
        column = table.column(name)
        expression = column.expression
        values = []
        for doc_id, row in pairs:
            if doc_id in base and doc_id not in dirty:
                values.append(base[doc_id])
            elif expression is not None:
                values.append(expression.evaluate(row))
            else:
                values.append(row.get(name))
        return values

    @_locks.guarded_by("_lock")
    def _quarantine(self, entry: dict, reason: str) -> None:
        quarantine = SegmentQuarantine(
            name=entry["name"], table=entry["table"],
            column=entry["column"], reason=reason)
        self._quarantines.append(quarantine)
        _SEGMENT_QUARANTINES.inc()

    @_locks.guarded_by("_lock")
    def _rebuild_vectors(self, state: _TableState,
                         names: Sequence[str]) -> None:
        for name in names:
            self._segments[(state.table.name, name)] = \
                ColumnVector.from_values(name, state.values[name])
        _RESIDENT_BYTES.set(self._memory_bytes())


def _dedupe(names: Sequence[str]) -> List[str]:
    """Order-preserving dedupe (first occurrence wins)."""
    seen = set()
    out = []
    for name in names:
        if name not in seen:
            seen.add(name)
            out.append(name)
    return out


def _durable_store(table: Table) -> Optional[Any]:
    """The table's segment-capable backing store, if any (sharded
    stores have no per-store segment pinning and stay rebuild-only)."""
    store = getattr(table, "store", None)
    if (store is not None and hasattr(store, "imc_segments")
            and hasattr(table, "doc_id_rows")):
        return store
    return None


def _computed_values(table: Table, name: str,
                     rows: Sequence[dict]) -> List[Any]:
    """One column's values extracted from stored rows (virtual columns
    evaluated here — the priced extraction moment)."""
    column = table.column(name)
    if column.expression is not None:
        expression = column.expression
        return [expression.evaluate(row) for row in rows]
    return [row.get(name) for row in rows]
