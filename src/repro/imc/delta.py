"""Row-wise delta buffers over a columnar base (the LSM read path).

The AsterixDB-style tuple-compaction shape: DML lands row-wise, the
columnar form is only rebuilt when it has to be.  A
:class:`TableDelta` records what changed on one table since its
columnar base was cut:

* **inserts** append the stored row object to ``appended`` — a merged
  scan absorbs them by evaluating just the new rows' column values and
  extending the vectors (no rescan of the base);
* **any delete** — including the delete half of an update, which fires
  as delete + insert on the same row object — sets ``structural``:
  row positions shifted under the base, so the next access rebuilds
  the affected columns from the current rows.

Instances are plain state owned by :class:`~repro.imc.store.IMCStore`
and guarded by its lock (the listeners that feed them run under it);
they take no locks of their own.
"""

from __future__ import annotations

from typing import Any, Dict, List


class TableDelta:
    """What changed on one table since its columnar base was cut."""

    __slots__ = ("appended", "structural")

    def __init__(self) -> None:
        self.appended: List[Dict[str, Any]] = []
        self.structural = False

    @property
    def dirty(self) -> bool:
        return self.structural or bool(self.appended)

    def note_insert(self, row: Dict[str, Any]) -> None:
        self.appended.append(row)

    def note_delete(self, row: Dict[str, Any]) -> None:
        # positions shifted: pending appends will be re-seen by the
        # rebuild scan, so buffering them further would double-count
        self.structural = True
        self.appended.clear()

    def clear(self) -> None:
        self.appended.clear()
        self.structural = False
