"""Columnar vectors with NULL bitmaps.

:class:`ColumnVector` holds one column's values as a numpy array plus a
boolean validity mask.  Numeric columns use ``float64`` (ints included —
the paper's NUMBER is a decimal float anyway); string columns use numpy
unicode arrays so that comparisons vectorize; boolean columns use
``bool_``.  NULL slots hold a dummy value and are masked out of every
kernel.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import EngineError

NUMERIC = "numeric"
STRING = "string"
BOOL = "bool"


class ColumnVector:
    """One column, columnar: ``values`` (np.ndarray) + ``valid`` mask."""

    __slots__ = ("name", "kind", "values", "valid")

    def __init__(self, name: str, kind: str, values: np.ndarray,
                 valid: np.ndarray) -> None:
        self.name = name
        self.kind = kind
        self.values = values
        self.valid = valid

    def __len__(self) -> int:
        return len(self.values)

    @classmethod
    def from_values(cls, name: str, values: Sequence[Any]) -> "ColumnVector":
        """Build a vector from Python values, inferring the column kind.

        Mixed-type columns (strings and numbers at the same path — legal
        in JSON) degrade to STRING, matching the DataGuide's type
        generalization.
        """
        kind = _infer_kind(values)
        n = len(values)
        valid = np.fromiter((v is not None for v in values), dtype=np.bool_,
                            count=n)
        if kind == NUMERIC:
            data = np.fromiter(
                (float(v) if v is not None else 0.0 for v in values),
                dtype=np.float64, count=n)
        elif kind == BOOL:
            data = np.fromiter(
                (bool(v) if v is not None else False for v in values),
                dtype=np.bool_, count=n)
        else:
            data = np.array(
                ["" if v is None else _as_text(v) for v in values])
        return cls(name, kind, data, valid)

    # -- memory accounting -------------------------------------------------

    def memory_bytes(self) -> int:
        return int(self.values.nbytes + self.valid.nbytes)

    # -- elementwise reads ----------------------------------------------------

    def value_at(self, index: int) -> Any:
        if not self.valid[index]:
            return None
        value = self.values[index]
        if self.kind == NUMERIC:
            number = float(value)
            return int(number) if number.is_integer() else number
        if self.kind == BOOL:
            return bool(value)
        return str(value)

    def to_list(self) -> list[Any]:
        return [self.value_at(i) for i in range(len(self))]


def _infer_kind(values: Iterable[Any]) -> str:
    saw_number = saw_string = saw_bool = False
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            saw_bool = True
        elif isinstance(value, (int, float)):
            saw_number = True
        elif isinstance(value, str):
            saw_string = True
        else:
            raise EngineError(
                f"cannot load {type(value).__name__} into a column vector")
    if saw_string:
        return STRING
    if saw_number:
        return NUMERIC
    if saw_bool:
        return BOOL
    return NUMERIC  # all-NULL column; numeric representation is cheapest


def _as_text(value: Any) -> str:
    if value is True:
        return "true"
    if value is False:
        return "false"
    return str(value)
