"""Vectorized predicate and aggregate kernels over column vectors.

These are the "SIMD" operations of the in-memory columnar engine
(section 5.2.1): whole-column numpy expressions replacing per-row
interpretation.  Every kernel masks NULLs first, so SQL's
unknown-drops-row semantics hold.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.errors import QueryError
from repro.imc.columns import BOOL, NUMERIC, STRING, ColumnVector

_COMPARATORS = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def compare(column: ColumnVector, op: str, value: Any) -> np.ndarray:
    """Vectorized ``column op literal`` -> boolean selection mask."""
    comparator = _COMPARATORS.get(op)
    if comparator is None:
        raise QueryError(f"unknown comparison operator {op!r}")
    if value is None:
        return np.zeros(len(column), dtype=np.bool_)  # comparisons with NULL
    if column.kind == NUMERIC:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return np.zeros(len(column), dtype=np.bool_)
        mask = comparator(column.values, float(value))
    elif column.kind == STRING:
        if not isinstance(value, str):
            return np.zeros(len(column), dtype=np.bool_)
        mask = comparator(column.values, value)
    else:
        if not isinstance(value, bool):
            return np.zeros(len(column), dtype=np.bool_)
        mask = comparator(column.values, value)
    return mask & column.valid


def between(column: ColumnVector, low: Any, high: Any) -> np.ndarray:
    """Vectorized ``low <= column < high`` (NOBENCH's range predicates)."""
    return compare(column, ">=", low) & compare(column, "<", high)


def isin(column: ColumnVector, values: list[Any]) -> np.ndarray:
    mask = np.zeros(len(column), dtype=np.bool_)
    for value in values:
        mask |= compare(column, "=", value)
    return mask


def starts_with(column: ColumnVector, prefix: str) -> np.ndarray:
    if column.kind != STRING:
        return np.zeros(len(column), dtype=np.bool_)
    return np.char.startswith(column.values.astype(str), prefix) & column.valid


def not_null(column: ColumnVector) -> np.ndarray:
    return column.valid.copy()


# -- aggregates --------------------------------------------------------------


def agg_count(column: ColumnVector,
              selection: Optional[np.ndarray] = None) -> int:
    mask = column.valid if selection is None else (column.valid & selection)
    return int(np.count_nonzero(mask))


def agg_sum(column: ColumnVector,
            selection: Optional[np.ndarray] = None) -> Optional[float]:
    if column.kind != NUMERIC:
        raise QueryError("SUM requires a numeric column")
    mask = column.valid if selection is None else (column.valid & selection)
    if not mask.any():
        return None
    return float(column.values[mask].sum())


def agg_min(column: ColumnVector,
            selection: Optional[np.ndarray] = None) -> Any:
    mask = column.valid if selection is None else (column.valid & selection)
    if not mask.any():
        return None
    selected = column.values[mask]
    # numpy's min/max ufuncs lack unicode loops; np.sort handles strings
    value = selected.min() if column.kind == NUMERIC else np.sort(selected)[0]
    return _unbox(column, value)


def agg_max(column: ColumnVector,
            selection: Optional[np.ndarray] = None) -> Any:
    mask = column.valid if selection is None else (column.valid & selection)
    if not mask.any():
        return None
    selected = column.values[mask]
    value = selected.max() if column.kind == NUMERIC else np.sort(selected)[-1]
    return _unbox(column, value)


def agg_avg(column: ColumnVector,
            selection: Optional[np.ndarray] = None) -> Optional[float]:
    if column.kind != NUMERIC:
        raise QueryError("AVG requires a numeric column")
    mask = column.valid if selection is None else (column.valid & selection)
    count = int(np.count_nonzero(mask))
    if count == 0:
        return None
    return float(column.values[mask].sum()) / count


def group_by_sum(keys: ColumnVector, values: ColumnVector,
                 selection: Optional[np.ndarray] = None) -> dict[Any, float]:
    """Vectorized GROUP BY key SUM(value) (NOBENCH Q10's shape)."""
    if values.kind != NUMERIC:
        raise QueryError("group_by_sum requires a numeric value column")
    mask = keys.valid & values.valid
    if selection is not None:
        mask &= selection
    key_array = keys.values[mask]
    value_array = values.values[mask]
    unique, inverse = np.unique(key_array, return_inverse=True)
    sums = np.zeros(len(unique), dtype=np.float64)
    np.add.at(sums, inverse, value_array)
    return {_unbox(keys, k): float(s) for k, s in zip(unique, sums)}


def group_by_count(keys: ColumnVector,
                   selection: Optional[np.ndarray] = None) -> dict[Any, int]:
    mask = keys.valid if selection is None else (keys.valid & selection)
    key_array = keys.values[mask]
    unique, counts = np.unique(key_array, return_counts=True)
    return {_unbox(keys, k): int(c) for k, c in zip(unique, counts)}


def _unbox(column: ColumnVector, value: Any) -> Any:
    if column.kind == NUMERIC:
        number = float(value)
        return int(number) if number.is_integer() else number
    if column.kind == BOOL:
        return bool(value)
    return str(value)
