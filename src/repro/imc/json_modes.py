"""The three JSON execution modes of Figures 5 and 6 (section 6.4).

:class:`JsonColumnIMC` manages one JSON text column under a chosen mode:

* ``TEXT_MODE`` — documents stay as JSON text "in the buffer cache";
  every query re-parses the text (via the streaming operators);
* ``OSON_IMC_MODE`` — at population time each text document is encoded
  to OSON through the hidden ``OSON()`` virtual column of section 5.2.2
  and the binary lives in memory; queries transparently navigate OSON;
* ``VC_IMC_MODE`` — additionally, chosen JSON_VALUE paths are extracted
  into numpy column vectors at population time; queries touching only
  those paths run the vectorized kernels.

``handles()`` yields whatever the mode's query input is (text or
:class:`~repro.core.oson.OsonDocument`); the SQL/JSON operators accept
both, which is the reproduction of the paper's transparent query rewrite
onto the OSON virtual column.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.core.oson import OsonDocument, encode as oson_encode
from repro.errors import EngineError, ReproError
from repro.imc.columns import ColumnVector
from repro.jsontext import loads
from repro.sqljson.operators import json_value

TEXT_MODE = "text"
OSON_IMC_MODE = "oson-imc"
VC_IMC_MODE = "vc-imc"

_MODES = (TEXT_MODE, OSON_IMC_MODE, VC_IMC_MODE)


class JsonColumnIMC:
    """One JSON document collection under a chosen in-memory mode."""

    def __init__(self, mode: str = TEXT_MODE,
                 vc_paths: Sequence[Any] = ()) -> None:
        if mode not in _MODES:
            raise EngineError(f"unknown IMC mode {mode!r}")
        if mode != VC_IMC_MODE and vc_paths:
            raise EngineError("vc_paths requires VC_IMC_MODE")
        self.mode = mode
        # each VC is a path or a (path, RETURNING type) pair, matching the
        # paper's JSON_VALUE(jobj, '$.dyn1' RETURNING NUMBER) definitions:
        # RETURNING NUMBER turns non-numeric instances of a dynamically
        # typed field into NULLs before columnarization
        normalized: list[tuple[str, Optional[str]]] = []
        for item in vc_paths:
            if isinstance(item, str):
                normalized.append((item, None))
            else:
                path, returning = item
                normalized.append((path, returning))
        self.vc_paths = tuple(normalized)
        self._texts: list[str] = []
        self._oson_docs: list[OsonDocument] = []
        self._vectors: dict[str, ColumnVector] = {}
        self._populated = False

    # -- loading -------------------------------------------------------------

    def load_texts(self, texts: Iterable[str]) -> int:
        """Store the on-disk representation (JSON text) of the collection."""
        self._texts.extend(texts)
        self._populated = False
        return len(self._texts)

    def populate(self) -> None:
        """Run the in-memory population for the selected mode.

        This is the priced, one-time cost: TEXT mode does nothing (text
        is already "cached"); OSON-IMC invokes the implicit OSON()
        constructor on every document; VC-IMC additionally evaluates the
        JSON_VALUE virtual columns into vectors.
        """
        if self.mode == TEXT_MODE:
            self._populated = True
            return
        self._oson_docs = [
            OsonDocument(oson_encode(loads(text))) for text in self._texts]
        if self.mode == VC_IMC_MODE:
            self._vectors = {}
            for path, returning in self.vc_paths:
                values = []
                for doc in self._oson_docs:
                    try:
                        values.append(json_value(doc, path,
                                                 returning=returning))
                    except ReproError:
                        values.append(None)  # RETURNING conversion failure
                self._vectors[path] = ColumnVector.from_values(path, values)
        self._populated = True

    def __len__(self) -> int:
        return len(self._texts)

    # -- query-side access -----------------------------------------------------

    def handles(self) -> Iterator[Any]:
        """Per-document query handles for the SQL/JSON operators:
        JSON text in TEXT mode, OsonDocument otherwise."""
        self._require_populated()
        if self.mode == TEXT_MODE:
            return iter(self._texts)
        return iter(self._oson_docs)

    def vector(self, path: str) -> ColumnVector:
        """The columnar vector for a VC path (VC-IMC mode only)."""
        self._require_populated()
        if self.mode != VC_IMC_MODE:
            raise EngineError(f"no column vectors in mode {self.mode!r}")
        try:
            return self._vectors[path]
        except KeyError:
            raise EngineError(f"path {path!r} is not VC-populated") from None

    def has_vector(self, path: str) -> bool:
        return self.mode == VC_IMC_MODE and path in self._vectors

    def document_at(self, index: int) -> Any:
        """The mode-specific handle of one document (row fetch-back)."""
        self._require_populated()
        if self.mode == TEXT_MODE:
            return self._texts[index]
        return self._oson_docs[index]

    def selection_to_indexes(self, mask: np.ndarray) -> list[int]:
        return [int(i) for i in np.nonzero(mask)[0]]

    # -- accounting ---------------------------------------------------------------

    def memory_bytes(self) -> int:
        """In-memory footprint of the populated representation."""
        self._require_populated()
        if self.mode == TEXT_MODE:
            return sum(len(t.encode("utf-8")) for t in self._texts)
        total = sum(len(d.buffer) for d in self._oson_docs)
        total += sum(v.memory_bytes() for v in self._vectors.values())
        return total

    def _require_populated(self) -> None:
        if not self._populated:
            raise EngineError(
                "collection not populated; call populate() first")
