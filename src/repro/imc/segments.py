"""Durable column segments: the on-disk form of an IMC column.

A column segment persists one populated column of one table so a
reopened store serves the columnar form without re-paying the
JSON_VALUE extraction cost (ROADMAP item 1 / paper section 5.2).  The
file is a run of checksummed frames (:mod:`repro.storage.framing` —
the same ``RFRM`` framing the WAL and manifest use, so every byte is
CRC-covered):

    frame 0   header: OSON image of the segment meta document
              {"format", "version", "table", "column", "kind", "rows"}
    frame 1   document ids: ``rows`` little-endian int64, ascending —
              the documents whose values this segment stores
    frame 2   validity: ``rows`` bytes, 1 = value present, 0 = SQL NULL
    frames 3+ values, encoding per kind:
              numeric: float64 array + a "was int" byte array (so a
                       stored ``2`` round-trips as int, not 2.0 —
                       byte-identical with row mode is the contract)
              bool:    one byte per row
              string:  (rows+1) little-endian uint32 offsets + UTF-8 blob

Segments are written by the store's checkpoint/compaction lift (the
LSM-style tuple-compaction pass) and pinned by the manifest's
``imc_segments`` section.  They are pure *cache*: every reader
degrades to rebuild-from-OSON on any corruption, so decode failures
quarantine with diagnostics and are never fatal — the same contract
recovery applies to log records.

Columns whose values cannot round-trip exactly are not persisted at
all (:func:`encodable_values`): integers beyond 2**53 and non-JSON
scalars (Decimal, bytes) stay rebuild-only rather than risk an inexact
columnar answer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.core.oson import decode as oson_decode
from repro.core.oson import encode as oson_encode
from repro.errors import OsonError, StorageError

# NOTE: repro.storage.framing is imported lazily inside the codec
# functions.  A module-level import would run the repro.storage package
# init, which reaches back into repro.engine (dataguide views) — and
# repro.engine imports this package via the executor's kernels.

SEGMENT_FORMAT = "repro-imc-segment"
SEGMENT_VERSION = 1

KIND_NUMERIC = "numeric"
KIND_BOOL = "bool"
KIND_STRING = "string"

#: integers above this lose fidelity through the float64 value array
MAX_EXACT_INT = 1 << 53


def imc_segment_name(sequence: int) -> str:
    return f"imc-{sequence:08d}.col"


def parse_imc_segment_name(name: str) -> Optional[int]:
    """The sequence number encoded in a segment file name, or None."""
    if not (name.startswith("imc-") and name.endswith(".col")):
        return None
    digits = name[4:-4]
    if not digits.isdigit():
        return None
    return int(digits)


def encodable_values(values: Sequence[Any]) -> bool:
    """True when every value round-trips exactly through a segment.

    Mixed-kind columns (numbers alongside strings or booleans) are
    rejected: the value frames store one physical kind, so a mixed
    column would coerce on the way through — and a reopened store must
    serve exactly what row mode serves."""
    saw_number = saw_string = saw_bool = False
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            saw_bool = True
        elif isinstance(value, str):
            saw_string = True
        elif isinstance(value, float):
            saw_number = True
        elif isinstance(value, int):
            if abs(value) > MAX_EXACT_INT:
                return False
            saw_number = True
        else:
            return False
    return saw_number + saw_string + saw_bool <= 1


def _infer_kind(values: Sequence[Any]) -> str:
    saw_number = saw_string = saw_bool = False
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            saw_bool = True
        elif isinstance(value, (int, float)):
            saw_number = True
        else:
            saw_string = True
    if saw_string:
        return KIND_STRING
    if saw_bool and not saw_number:
        return KIND_BOOL
    return KIND_NUMERIC


def _as_text(value: Any) -> str:
    if value is True:
        return "true"
    if value is False:
        return "false"
    return str(value)


def encode_column_segment(table: str, column: str,
                          doc_ids: Sequence[int],
                          values: Sequence[Any]) -> bytes:
    """Serialize one column (``values[i]`` belongs to ``doc_ids[i]``)."""
    if len(doc_ids) != len(values):
        raise StorageError(
            f"segment for {table}.{column}: {len(doc_ids)} ids vs "
            f"{len(values)} values")
    if not encodable_values(values):
        raise StorageError(
            f"segment for {table}.{column}: values do not round-trip "
            f"exactly (big int or non-JSON scalar)")
    if list(doc_ids) != sorted(doc_ids):
        raise StorageError(
            f"segment for {table}.{column}: document ids not ascending")
    from repro.storage.framing import frame
    kind = _infer_kind(values)
    n = len(values)
    meta = {"format": SEGMENT_FORMAT, "version": SEGMENT_VERSION,
            "table": table, "column": column, "kind": kind, "rows": n}
    out = [frame(oson_encode(meta)),
           frame(struct.pack(f"<{n}q", *doc_ids)),
           frame(bytes(0 if v is None else 1 for v in values))]
    if kind == KIND_NUMERIC:
        floats = struct.pack(
            f"<{n}d", *(0.0 if v is None else float(v) for v in values))
        was_int = bytes(1 if isinstance(v, int) and not isinstance(v, bool)
                        else 0 for v in values)
        out.append(frame(floats))
        out.append(frame(was_int))
    elif kind == KIND_BOOL:
        out.append(frame(bytes(1 if v else 0 for v in values)))
    else:
        encoded = [b"" if v is None else _as_text(v).encode("utf-8")
                   for v in values]
        offsets = [0]
        for piece in encoded:
            offsets.append(offsets[-1] + len(piece))
        out.append(frame(struct.pack(f"<{n + 1}I", *offsets)))
        out.append(frame(b"".join(encoded)))
    return b"".join(out)


@dataclass
class ColumnSegment:
    """A decoded column segment: exact Python values per document id."""

    table: str
    column: str
    kind: str
    doc_ids: List[int]
    values: List[Any]

    def __len__(self) -> int:
        return len(self.doc_ids)


def decode_column_segment(data: bytes) -> ColumnSegment:
    """Decode a segment image; raises :class:`StorageError` on any
    damage (callers quarantine and fall back to rebuild-from-OSON)."""
    from repro.storage.framing import scan_frames
    scan = scan_frames(data)
    if scan.corrupt_frames or scan.torn:
        raise StorageError("column segment has corrupt or torn frames")
    frames = [f.payload for f in scan.valid_frames]
    if len(frames) < 4:
        raise StorageError(
            f"column segment has {len(frames)} frames, expected >= 4")
    consumed = sum(len(f.payload) + 12 for f in scan.valid_frames)
    if consumed != len(data):
        raise StorageError("column segment carries undecodable bytes")
    try:
        meta = oson_decode(frames[0])
    except OsonError as exc:
        raise StorageError(f"segment meta undecodable: {exc}") from None
    if (not isinstance(meta, dict)
            or meta.get("format") != SEGMENT_FORMAT
            or meta.get("version") != SEGMENT_VERSION):
        raise StorageError(f"unexpected segment meta {meta!r}")
    for key, expected in (("table", str), ("column", str), ("kind", str),
                          ("rows", int)):
        if not isinstance(meta.get(key), expected):
            raise StorageError(f"segment meta {key!r} malformed")
    n = meta["rows"]
    kind = meta["kind"]
    if len(frames[1]) != 8 * n or len(frames[2]) != n:
        raise StorageError("segment id/validity arrays disagree with rows")
    doc_ids = list(struct.unpack(f"<{n}q", frames[1]))
    if doc_ids != sorted(doc_ids):
        raise StorageError("segment document ids not ascending")
    valid = frames[2]
    if kind == KIND_NUMERIC:
        if len(frames) != 5 or len(frames[3]) != 8 * n or len(frames[4]) != n:
            raise StorageError("numeric segment value frames malformed")
        floats = struct.unpack(f"<{n}d", frames[3])
        was_int = frames[4]
        values: List[Any] = [
            None if not valid[i]
            else (int(floats[i]) if was_int[i] else floats[i])
            for i in range(n)]
    elif kind == KIND_BOOL:
        if len(frames) != 4 or len(frames[3]) != n:
            raise StorageError("bool segment value frame malformed")
        flags = frames[3]
        values = [None if not valid[i] else bool(flags[i])
                  for i in range(n)]
    elif kind == KIND_STRING:
        if len(frames) != 5 or len(frames[3]) != 4 * (n + 1):
            raise StorageError("string segment offset frame malformed")
        offsets = struct.unpack(f"<{n + 1}I", frames[3])
        blob = frames[4]
        if any(offsets[i] > offsets[i + 1] for i in range(n)) \
                or offsets[-1] != len(blob):
            raise StorageError("string segment offsets out of bounds")
        try:
            values = [None if not valid[i]
                      else blob[offsets[i]:offsets[i + 1]].decode("utf-8")
                      for i in range(n)]
        except UnicodeDecodeError as exc:
            raise StorageError(
                f"string segment blob undecodable: {exc}") from None
    else:
        raise StorageError(f"unknown segment kind {kind!r}")
    return ColumnSegment(meta["table"], meta["column"], kind,
                         doc_ids, values)


def verify_column_segment(data: bytes,
                          path: Optional[str] = None) -> List[Diagnostic]:
    """fsck-style verification: structured diagnostics, never raises.

    Every finding is a WARNING — a damaged segment degrades the reader
    to rebuild-from-OSON (the column data survives in the documents),
    it never loses data.
    """
    from repro.storage.framing import scan_frames
    diagnostics: List[Diagnostic] = []
    scan = scan_frames(data)
    for found in scan.diagnostics:
        diagnostics.append(Diagnostic(
            "storage.fsck.imc-frame", found.message, Severity.WARNING,
            offset=found.offset, path=path))
    try:
        decode_column_segment(data)
    except StorageError as exc:
        diagnostics.append(Diagnostic(
            "storage.fsck.imc-corrupt",
            f"column segment undecodable ({exc}); readers degrade to "
            f"rebuild-from-OSON", Severity.WARNING, path=path))
    return diagnostics


@dataclass
class SegmentQuarantine:
    """One segment a loader skipped instead of trusting."""

    name: str
    table: str
    column: str
    reason: str
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def render(self) -> str:
        return (f"imc segment {self.name} ({self.table}.{self.column}) "
                f"quarantined: {self.reason}")


def segment_entry(name: str, length: int, table: str, column: str,
                  horizon: int) -> dict:
    """A manifest ``imc_segments`` row.  ``horizon`` is the sequence of
    the WAL that was *fresh* when the segment was cut: any log record
    at or above it post-dates the segment, so its document id must be
    served from the row-wise delta, not the columnar base."""
    return {"name": name, "length": length, "table": table,
            "column": column, "horizon": horizon}


def valid_entries(raw: Any) -> List[dict]:
    """The well-formed rows of a manifest ``imc_segments`` section;
    malformed rows (or a malformed section) degrade to absent — a
    reader never fails the manifest over its IMC cache metadata."""
    if not isinstance(raw, list):
        return []
    entries = []
    for entry in raw:
        if (isinstance(entry, dict)
                and isinstance(entry.get("name"), str)
                and isinstance(entry.get("length"), int)
                and isinstance(entry.get("table"), str)
                and isinstance(entry.get("column"), str)
                and isinstance(entry.get("horizon"), int)):
            entries.append(entry)
    return entries
