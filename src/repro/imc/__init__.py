"""In-Memory Column store substrate (paper section 5.2).

numpy-backed columnar vectors with vectorized predicate/aggregate kernels
stand in for Oracle Database In-Memory's SIMD columnar engine:

* :mod:`~repro.imc.columns` — :class:`ColumnVector`: typed vectors with
  NULL bitmaps;
* :mod:`~repro.imc.kernels` — vectorized compare / aggregate / group-by
  kernels;
* :mod:`~repro.imc.store` — :class:`IMCStore`: populates table columns
  (including virtual columns, section 5.2.1) into vectors, kept
  coherent with table DML through listeners + per-table deltas;
* :mod:`~repro.imc.segments` — durable CRC-checksummed column segments
  (the persistent IMC form, pinned by the storage manifest);
* :mod:`~repro.imc.delta` — row-wise delta buffers for the LSM-style
  merged base+delta read path;
* :mod:`~repro.imc.json_modes` — the three JSON execution modes of
  Figures 5/6: TEXT-MODE, OSON-IMC-MODE and VC-IMC-MODE.
"""

from repro.imc.columns import ColumnVector
from repro.imc.delta import TableDelta
from repro.imc.segments import (ColumnSegment, SegmentQuarantine,
                                decode_column_segment,
                                encode_column_segment,
                                verify_column_segment)
from repro.imc.store import IMCStore
from repro.imc.json_modes import JsonColumnIMC, OSON_IMC_MODE, TEXT_MODE, VC_IMC_MODE

__all__ = [
    "ColumnSegment",
    "ColumnVector",
    "IMCStore",
    "SegmentQuarantine",
    "TableDelta",
    "decode_column_segment",
    "encode_column_segment",
    "verify_column_segment",
    "JsonColumnIMC",
    "TEXT_MODE",
    "OSON_IMC_MODE",
    "VC_IMC_MODE",
]
