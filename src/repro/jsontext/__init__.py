"""From-scratch JSON text substrate.

The paper's TEXT baseline pays a full tokenize/parse cost every time a
document is queried.  To charge that cost honestly we implement our own
streaming tokenizer (:mod:`repro.jsontext.lexer`), an event-driven parser
plus DOM builder (:mod:`repro.jsontext.parser`) and a compact serializer
(:mod:`repro.jsontext.serializer`).  The standard-library ``json`` module is
deliberately not used on the hot paths.
"""

from repro.jsontext.lexer import JsonEvent, JsonEventType, JsonLexer, tokenize
from repro.jsontext.parser import loads, parse_events
from repro.jsontext.serializer import dumps

__all__ = [
    "JsonEvent",
    "JsonEventType",
    "JsonLexer",
    "tokenize",
    "loads",
    "parse_events",
    "dumps",
]
