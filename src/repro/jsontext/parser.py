"""Event parser and DOM builder for JSON text.

``loads`` turns JSON text into plain Python values (dict / list / str /
int / float / bool / None) by consuming the event stream from
:mod:`repro.jsontext.lexer`.  ``parse_events`` re-exports the raw event
stream for streaming consumers.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.errors import JsonParseError
from repro.jsontext.lexer import JsonEvent, JsonEventType, tokenize


def parse_events(text: str) -> Iterator[JsonEvent]:
    """Return the validated event stream for ``text``.

    Identical to :func:`repro.jsontext.lexer.tokenize`; provided so that
    streaming consumers depend on the parser module only.
    """
    return tokenize(text)


def build_value(events: Iterable[JsonEvent]) -> Any:
    """Build a Python value from an event stream.

    The stream must contain exactly one complete JSON value.  Duplicate
    object keys keep the last value, matching the common lax JSON parser
    behaviour (and Oracle's default).
    """
    iterator = iter(events)
    try:
        first = next(iterator)
    except StopIteration:
        raise JsonParseError("empty event stream") from None
    value, _consumed = _build(first, iterator)
    return value


def _build(event: JsonEvent, events: Iterator[JsonEvent]) -> tuple[Any, bool]:
    etype = event.type
    if etype is JsonEventType.SCALAR:
        return event.value, True
    if etype is JsonEventType.OBJECT_START:
        obj: dict[str, Any] = {}
        for ev in events:
            if ev.type is JsonEventType.OBJECT_END:
                return obj, True
            if ev.type is not JsonEventType.FIELD_NAME:
                raise JsonParseError("expected field name event", ev.position)
            key = ev.value
            try:
                value_event = next(events)
            except StopIteration:
                raise JsonParseError("truncated object", ev.position) from None
            obj[key], _ = _build(value_event, events)
        raise JsonParseError("unterminated object", event.position)
    if etype is JsonEventType.ARRAY_START:
        arr: list[Any] = []
        for ev in events:
            if ev.type is JsonEventType.ARRAY_END:
                return arr, True
            arr.append(_build(ev, events)[0])
        raise JsonParseError("unterminated array", event.position)
    raise JsonParseError(f"unexpected event {etype}", event.position)


def loads(text: str) -> Any:
    """Parse JSON ``text`` into Python values using the from-scratch lexer."""
    return build_value(parse_events(text))
