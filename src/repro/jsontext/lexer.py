"""Streaming JSON tokenizer.

Produces a flat stream of :class:`JsonEvent` records from JSON text.  The
event stream is the substrate both for DOM construction
(:func:`repro.jsontext.parser.loads`) and for the streaming SQL/JSON path
engine (:mod:`repro.sqljson.path.streaming`), mirroring the paper's
event-based text path engine (section 5.1).

The tokenizer is hand written: the whole point of the TEXT baseline in the
paper's experiments is that text must be re-tokenized on every access, so we
implement (and pay for) that work ourselves instead of delegating to the C
implementation inside the standard-library ``json`` module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Union

from repro.errors import JsonParseError

JsonScalar = Union[str, int, float, bool, None]

_WHITESPACE = " \t\n\r"
_DIGITS = "0123456789"

_ESCAPES = {
    '"': '"',
    "\\": "\\",
    "/": "/",
    "b": "\b",
    "f": "\f",
    "n": "\n",
    "r": "\r",
    "t": "\t",
}


class JsonEventType(enum.Enum):
    """Kinds of events produced while scanning a JSON document."""

    OBJECT_START = "object_start"
    OBJECT_END = "object_end"
    ARRAY_START = "array_start"
    ARRAY_END = "array_end"
    FIELD_NAME = "field_name"
    SCALAR = "scalar"


@dataclass(frozen=True, slots=True)
class JsonEvent:
    """One lexical event.

    ``value`` holds the field name for FIELD_NAME events and the decoded
    Python scalar for SCALAR events; it is ``None`` for the structural
    events.  ``position`` is the character offset of the event start,
    useful for error reporting.
    """

    type: JsonEventType
    value: JsonScalar = None
    position: int = -1


class JsonLexer:
    """Incremental tokenizer over a JSON text string.

    Usage::

        for event in JsonLexer(text):
            ...

    The lexer validates full JSON syntax: it tracks a container stack so
    that mismatched brackets, stray commas and trailing garbage all raise
    :class:`~repro.errors.JsonParseError`.
    """

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0
        self._len = len(text)

    def __iter__(self) -> Iterator[JsonEvent]:
        return self._scan()

    # -- internal -------------------------------------------------------

    def _error(self, message: str) -> JsonParseError:
        return JsonParseError(message, self._pos)

    def _skip_whitespace(self) -> None:
        text, n = self._text, self._len
        pos = self._pos
        while pos < n and text[pos] in _WHITESPACE:
            pos += 1
        self._pos = pos

    def _peek(self) -> str:
        if self._pos >= self._len:
            raise self._error("unexpected end of input")
        return self._text[self._pos]

    def _scan(self) -> Iterator[JsonEvent]:
        self._skip_whitespace()
        if self._pos >= self._len:
            raise self._error("empty JSON input")
        yield from self._scan_value()
        self._skip_whitespace()
        if self._pos != self._len:
            raise self._error("trailing characters after JSON value")

    def _scan_value(self) -> Iterator[JsonEvent]:
        ch = self._peek()
        if ch == "{":
            yield from self._scan_object()
        elif ch == "[":
            yield from self._scan_array()
        elif ch == '"':
            start = self._pos
            yield JsonEvent(JsonEventType.SCALAR, self._scan_string(), start)
        elif ch == "-" or ch in _DIGITS:
            start = self._pos
            yield JsonEvent(JsonEventType.SCALAR, self._scan_number(), start)
        elif ch == "t":
            yield JsonEvent(JsonEventType.SCALAR, self._scan_literal("true", True), self._pos - 4)
        elif ch == "f":
            yield JsonEvent(JsonEventType.SCALAR, self._scan_literal("false", False), self._pos - 5)
        elif ch == "n":
            yield JsonEvent(JsonEventType.SCALAR, self._scan_literal("null", None), self._pos - 4)
        else:
            raise self._error(f"unexpected character {ch!r}")

    def _scan_literal(self, word: str, value: JsonScalar) -> JsonScalar:
        end = self._pos + len(word)
        if self._text[self._pos:end] != word:
            raise self._error(f"invalid literal, expected {word!r}")
        self._pos = end
        return value

    def _scan_object(self) -> Iterator[JsonEvent]:
        yield JsonEvent(JsonEventType.OBJECT_START, None, self._pos)
        self._pos += 1  # consume '{'
        self._skip_whitespace()
        if self._peek() == "}":
            self._pos += 1
            yield JsonEvent(JsonEventType.OBJECT_END, None, self._pos - 1)
            return
        while True:
            self._skip_whitespace()
            if self._peek() != '"':
                raise self._error("expected string key in object")
            key_pos = self._pos
            key = self._scan_string()
            yield JsonEvent(JsonEventType.FIELD_NAME, key, key_pos)
            self._skip_whitespace()
            if self._peek() != ":":
                raise self._error("expected ':' after object key")
            self._pos += 1
            self._skip_whitespace()
            yield from self._scan_value()
            self._skip_whitespace()
            ch = self._peek()
            if ch == ",":
                self._pos += 1
                continue
            if ch == "}":
                self._pos += 1
                yield JsonEvent(JsonEventType.OBJECT_END, None, self._pos - 1)
                return
            raise self._error("expected ',' or '}' in object")

    def _scan_array(self) -> Iterator[JsonEvent]:
        yield JsonEvent(JsonEventType.ARRAY_START, None, self._pos)
        self._pos += 1  # consume '['
        self._skip_whitespace()
        if self._peek() == "]":
            self._pos += 1
            yield JsonEvent(JsonEventType.ARRAY_END, None, self._pos - 1)
            return
        while True:
            self._skip_whitespace()
            yield from self._scan_value()
            self._skip_whitespace()
            ch = self._peek()
            if ch == ",":
                self._pos += 1
                continue
            if ch == "]":
                self._pos += 1
                yield JsonEvent(JsonEventType.ARRAY_END, None, self._pos - 1)
                return
            raise self._error("expected ',' or ']' in array")

    def _scan_string(self) -> str:
        # caller guarantees current char is '"'
        text, n = self._text, self._len
        pos = self._pos + 1
        chunks: list[str] = []
        chunk_start = pos
        while pos < n:
            ch = text[pos]
            if ch == '"':
                chunks.append(text[chunk_start:pos])
                self._pos = pos + 1
                return "".join(chunks)
            if ch == "\\":
                chunks.append(text[chunk_start:pos])
                pos += 1
                if pos >= n:
                    break
                esc = text[pos]
                if esc == "u":
                    hex_digits = text[pos + 1:pos + 5]
                    if len(hex_digits) != 4:
                        self._pos = pos
                        raise self._error("truncated \\u escape")
                    try:
                        code = int(hex_digits, 16)
                    except ValueError:
                        self._pos = pos
                        raise self._error("invalid \\u escape") from None
                    pos += 5
                    # handle UTF-16 surrogate pairs
                    if 0xD800 <= code <= 0xDBFF and text[pos:pos + 2] == "\\u":
                        low = text[pos + 2:pos + 6]
                        if len(low) == 4:
                            try:
                                low_code = int(low, 16)
                            except ValueError:
                                low_code = -1
                            if 0xDC00 <= low_code <= 0xDFFF:
                                code = 0x10000 + ((code - 0xD800) << 10) + (low_code - 0xDC00)
                                pos += 6
                    chunks.append(chr(code))
                elif esc in _ESCAPES:
                    chunks.append(_ESCAPES[esc])
                    pos += 1
                else:
                    self._pos = pos
                    raise self._error(f"invalid escape character {esc!r}")
                chunk_start = pos
                continue
            if ord(ch) < 0x20:
                self._pos = pos
                raise self._error("unescaped control character in string")
            pos += 1
        self._pos = pos
        raise self._error("unterminated string")

    def _scan_number(self) -> Union[int, float]:
        text, n = self._text, self._len
        start = self._pos
        pos = start
        if text[pos] == "-":
            pos += 1
        if pos >= n or text[pos] not in _DIGITS:
            self._pos = pos
            raise self._error("invalid number")
        if text[pos] == "0":
            pos += 1
        else:
            while pos < n and text[pos] in _DIGITS:
                pos += 1
        is_float = False
        if pos < n and text[pos] == ".":
            is_float = True
            pos += 1
            if pos >= n or text[pos] not in _DIGITS:
                self._pos = pos
                raise self._error("invalid number: expected digit after '.'")
            while pos < n and text[pos] in _DIGITS:
                pos += 1
        if pos < n and text[pos] in "eE":
            is_float = True
            pos += 1
            if pos < n and text[pos] in "+-":
                pos += 1
            if pos >= n or text[pos] not in _DIGITS:
                self._pos = pos
                raise self._error("invalid number: bad exponent")
            while pos < n and text[pos] in _DIGITS:
                pos += 1
        literal = text[start:pos]
        self._pos = pos
        if is_float:
            return float(literal)
        return int(literal)


def tokenize(text: str) -> Iterator[JsonEvent]:
    """Tokenize JSON ``text`` into a stream of :class:`JsonEvent`."""
    return iter(JsonLexer(text))
