"""Compact JSON serializer.

Emits the paper's "smallest possible JSON representation": UTF-8 text with
all non-significant whitespace removed (section 6, first bullet).  A
``pretty`` mode is provided for human consumption in examples and docs.
"""

from __future__ import annotations

import math
from typing import Any

from repro.errors import JsonSerializeError

_ESCAPE_MAP = {
    '"': '\\"',
    "\\": "\\\\",
    "\b": "\\b",
    "\f": "\\f",
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


def _escape_string(value: str) -> str:
    out: list[str] = ['"']
    for ch in value:
        mapped = _ESCAPE_MAP.get(ch)
        if mapped is not None:
            out.append(mapped)
        elif ord(ch) < 0x20:
            out.append(f"\\u{ord(ch):04x}")
        else:
            out.append(ch)
    out.append('"')
    return "".join(out)


def _format_number(value: float) -> str:
    if math.isnan(value) or math.isinf(value):
        raise JsonSerializeError("JSON cannot represent NaN or Infinity")
    if value == int(value) and abs(value) < 1e16:
        # keep a trailing ".0" so floats round-trip as floats
        return f"{value:.1f}"
    return repr(value)


def dumps(value: Any, pretty: bool = False, indent: int = 2) -> str:
    """Serialize ``value`` to compact JSON text.

    Accepts dict / list / tuple / str / bool / int / float / None.  Object
    key order is preserved (insertion order), which keeps encode→decode
    round trips byte-stable.
    """
    if pretty:
        return "".join(_emit_pretty(value, indent, 0))
    return "".join(_emit(value))


def _emit(value: Any):
    if value is None:
        yield "null"
    elif value is True:
        yield "true"
    elif value is False:
        yield "false"
    elif isinstance(value, str):
        yield _escape_string(value)
    elif isinstance(value, int):
        yield str(value)
    elif isinstance(value, float):
        yield _format_number(value)
    elif isinstance(value, dict):
        yield "{"
        first = True
        for key, item in value.items():
            if not isinstance(key, str):
                raise JsonSerializeError("JSON object keys must be strings",
                                         json_type=type(key).__name__)
            if not first:
                yield ","
            first = False
            yield _escape_string(key)
            yield ":"
            yield from _emit(item)
        yield "}"
    elif isinstance(value, (list, tuple)):
        yield "["
        first = True
        for item in value:
            if not first:
                yield ","
            first = False
            yield from _emit(item)
        yield "]"
    else:
        raise JsonSerializeError("cannot serialize value to JSON",
                                 json_type=type(value).__name__)


def _emit_pretty(value: Any, indent: int, depth: int):
    pad = " " * (indent * depth)
    child_pad = " " * (indent * (depth + 1))
    if isinstance(value, dict):
        if not value:
            yield "{}"
            return
        yield "{\n"
        last = len(value) - 1
        for i, (key, item) in enumerate(value.items()):
            yield child_pad
            yield _escape_string(key)
            yield ": "
            yield from _emit_pretty(item, indent, depth + 1)
            yield ",\n" if i != last else "\n"
        yield pad + "}"
    elif isinstance(value, (list, tuple)):
        if not value:
            yield "[]"
            return
        yield "[\n"
        last = len(value) - 1
        for i, item in enumerate(value):
            yield child_pad
            yield from _emit_pretty(item, indent, depth + 1)
            yield ",\n" if i != last else "\n"
        yield pad + "]"
    else:
        yield from _emit(value)
