"""The schema-agnostic JSON search index (section 3.2.1).

One index answers both structure discovery and content search over a JSON
column:

* an :class:`~repro.index.inverted.InvertedIndex` over field names, paths
  and tokenized leaf values accelerates JSON_EXISTS / JSON_TEXTCONTAINS;
* a :class:`~repro.core.dataguide.persistent.PersistentDataGuide` (with
  its ``$DG`` table) tracks every distinct path — "discovery and search
  of JSON structures are completely in synch".

Maintenance is incremental and, when the table has an IS JSON check
constraint, piggybacks on the constraint's parse via a hook — the paper's
low-overhead integration.  Without the constraint, the index parses the
column itself from an insert listener.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.core.dataguide.guide import DataGuide
from repro.engine.table import Table
from repro.errors import IndexError_
from repro.index.dg_table import DgTable
from repro.index.inverted import InvertedIndex


def _parse_column_value(raw: Any) -> Optional[Any]:
    if raw is None:
        return None
    if isinstance(raw, str):
        from repro.jsontext import loads
        return loads(raw)
    if isinstance(raw, (bytes, bytearray)):
        data = bytes(raw)
        if data[:4] == b"OSON":
            from repro.core.oson import decode
            return decode(data)
        from repro.bson import decode as bson_decode
        return bson_decode(data)
    return raw


class JsonSearchIndex:
    """A JSON search index over ``table.column``."""

    def __init__(self, name: str, table: Table, column: str,
                 dataguide: bool = True) -> None:
        if not table.has_column(column):
            raise IndexError_(
                f"table {table.name} has no column {column!r}")
        self.name = name
        self.table = table
        self.column = column
        self.inverted = InvertedIndex()
        self.dataguide_enabled = dataguide
        self.dg_table = DgTable(name)
        if dataguide:
            # imported here to avoid a cycle: dataguide.persistent needs
            # the $DG table from this package
            from repro.core.dataguide.persistent import PersistentDataGuide
            self.dataguide = PersistentDataGuide(self.dg_table, name)
        else:
            self.dataguide = None
        self._rowids: dict[int, int] = {}   # id(row) -> rowid
        self._rows: dict[int, dict] = {}    # rowid -> row
        self._next_rowid = 0
        self._constraint = table.is_json_constraint(column)
        if self._constraint is not None:
            # fuse into IS JSON validation: reuse its parsed value
            self._constraint.add_hook(self._constraint_hook)
            self._uses_constraint_hook = True
        else:
            table.on_insert(self._insert_listener)
            self._uses_constraint_hook = False
        table.on_delete(self._delete_listener)
        # index any rows already present
        for row in table.raw_rows():
            value = _parse_column_value(row.get(column))
            if value is not None:
                self._index_row(row, value)

    # -- maintenance hooks -------------------------------------------------------

    def _constraint_hook(self, row: dict, parsed: Any) -> None:
        self._index_row(row, parsed)

    def _insert_listener(self, row: dict) -> None:
        value = _parse_column_value(row.get(self.column))
        if value is not None:
            self._index_row(row, value)

    def _index_row(self, row: dict, parsed: Any) -> None:
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rowids[id(row)] = rowid
        self._rows[rowid] = row
        self.inverted.add_document(rowid, parsed)
        if self.dataguide is not None:
            self.dataguide.on_document(parsed)

    def _delete_listener(self, row: dict) -> None:
        rowid = self._rowids.pop(id(row), None)
        if rowid is None:
            return
        self._rows.pop(rowid, None)
        value = _parse_column_value(row.get(self.column))
        if value is not None:
            self.inverted.remove_document(rowid, value)
        # NOTE: the persistent DataGuide is additive — paths are not
        # removed on delete (section 3.4)

    def detach(self) -> None:
        """Unhook from the table (DROP INDEX)."""
        if self._uses_constraint_hook and self._constraint is not None:
            try:
                self._constraint.remove_hook(self._constraint_hook)
            except ValueError:  # lint: ignore[silent-except] hook already detached; DROP INDEX is idempotent
                pass

    # -- search ----------------------------------------------------------------------

    def rows_for(self, rowids: Iterable[int]) -> list[dict]:
        return [self._rows[rid] for rid in sorted(rowids) if rid in self._rows]

    def docs_with_path(self, path: str) -> list[dict]:
        """Index-accelerated JSON_EXISTS on a structural path."""
        return self.rows_for(self.inverted.docs_with_path(path))

    def docs_with_field(self, name: str) -> list[dict]:
        return self.rows_for(self.inverted.docs_with_field(name))

    def docs_with_keywords(self, keywords: str,
                           path: Optional[str] = None) -> list[dict]:
        """Index-accelerated JSON_TEXTCONTAINS."""
        return self.rows_for(self.inverted.docs_with_keywords(keywords, path))

    def docs_with_number(self, path: str, value: Any) -> list[dict]:
        return self.rows_for(self.inverted.docs_with_number(path, value))

    # -- DataGuide access ---------------------------------------------------------------

    def get_dataguide(self) -> DataGuide:
        """``getDataGuide()`` from the persistent indexing layer."""
        if self.dataguide is None:
            raise IndexError_(
                f"index {self.name} was created without DataGuide support")
        return self.dataguide.get_dataguide()

    def compute_statistics(self) -> int:
        if self.dataguide is None:
            return 0
        return self.dataguide.compute_statistics()
