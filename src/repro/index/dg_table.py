"""The ``$DG`` table: relational storage of the persistent DataGuide.

Section 3.2.1 stores the DataGuide inside the JSON search index as a
relational table with path, type and statistics columns (Tables 2/4/6).
:class:`DgTable` wraps an engine :class:`~repro.engine.table.Table` with
the upsert protocol the index maintenance uses: ``record_new`` appends
rows for newly discovered paths, ``refresh`` rewrites a row whose merged
entry changed (type generalization), and ``write_statistics`` fills the
stats columns when index statistics are computed.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.dataguide.model import PathEntry
from repro.engine.table import Column, Table
from repro.engine.types import BOOLEAN, NUMBER, VARCHAR2


def _dg_columns() -> list[Column]:
    return [
        Column("PATH", VARCHAR2(4000), nullable=False),
        Column("TYPE", VARCHAR2(64), nullable=False),
        Column("SCALAR_TYPE", VARCHAR2(16)),
        Column("IN_ARRAY", BOOLEAN),
        Column("MAX_LENGTH", NUMBER),
        Column("FREQUENCY", NUMBER),
        Column("NULL_COUNT", NUMBER),
        Column("MIN_VALUE", VARCHAR2(4000)),
        Column("MAX_VALUE", VARCHAR2(4000)),
    ]


class DgTable:
    """The per-index ``$DG`` table plus a (path, kind) -> row locator."""

    def __init__(self, index_name: str) -> None:
        self.table = Table(f"{index_name}$DG", _dg_columns())
        self._locator: dict[tuple[str, str], dict[str, Any]] = {}
        self.insert_count = 0  # rows ever written; Figure 8's write cost

    def __len__(self) -> int:
        return len(self.table)

    def record_new(self, entry: PathEntry) -> None:
        """Append a row for a newly discovered (path, kind)."""
        row = self.table.insert(self._row_for(entry))
        self._locator[entry.key] = row
        self.insert_count += 1

    def refresh(self, entry: PathEntry) -> None:
        """Rewrite the row for an entry whose merged state changed
        (e.g. leaf type generalized from number to string)."""
        row = self._locator.get(entry.key)
        if row is None:
            self.record_new(entry)
            return
        new_values = self._row_for(entry)
        for key, value in new_values.items():
            row[key] = value
        self.insert_count += 1

    def write_statistics(self, entries: list[PathEntry]) -> int:
        """Populate the statistics columns for all rows (the "computed
        when index statistics are gathered" pass)."""
        updated = 0
        for entry in entries:
            row = self._locator.get(entry.key)
            if row is None:
                continue
            rendered = entry.as_row()
            for column in ("FREQUENCY", "NULL_COUNT", "MIN_VALUE",
                           "MAX_VALUE", "MAX_LENGTH"):
                row[column] = rendered[column]
            updated += 1
        return updated

    def rows(self) -> list[dict[str, Any]]:
        return list(self.table.scan())

    def lookup(self, path: str, kind: Optional[str] = None) -> list[dict[str, Any]]:
        if kind is not None:
            row = self._locator.get((path, kind))
            return [row] if row is not None else []
        return [row for (p, _k), row in self._locator.items() if p == path]

    def _row_for(self, entry: PathEntry) -> dict[str, Any]:
        rendered = entry.as_row()
        # structural columns are always written; statistics stay NULL until
        # write_statistics runs, matching the paper's lazy stats population
        return {
            "PATH": rendered["PATH"],
            "TYPE": rendered["TYPE"],
            "SCALAR_TYPE": rendered["SCALAR_TYPE"],
            "IN_ARRAY": rendered["IN_ARRAY"],
            "MAX_LENGTH": rendered["MAX_LENGTH"],
        }
