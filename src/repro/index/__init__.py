"""JSON search index substrate (paper section 3.2.1).

A schema-agnostic index over a JSON column: an inverted index of field
names, paths and tokenized leaf values (:mod:`~repro.index.inverted`),
the ``$DG`` DataGuide table (:mod:`~repro.index.dg_table`), and the
incrementally maintained :class:`~repro.index.search_index.JsonSearchIndex`
that ties them to table DML.
"""

from repro.index.dg_table import DgTable
from repro.index.inverted import InvertedIndex, tokenize_value
from repro.index.search_index import JsonSearchIndex

__all__ = ["JsonSearchIndex", "InvertedIndex", "DgTable", "tokenize_value"]
