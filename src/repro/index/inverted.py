"""Inverted index over JSON field names, paths and leaf-value tokens.

Section 3.2.1: the JSON search index keeps "an inverted index for every
JSON field name and every leaf scalar value (strings are tokenized into a
set of keywords to support full-text searches)".  Postings map index keys
to sorted sets of rowids:

* ``f:<name>``          — documents containing field ``name`` anywhere;
* ``p:<path>``          — documents containing the structural path;
* ``t:<token>``         — documents containing the word token anywhere;
* ``v:<path>=<token>``  — token under a specific path (path+value search,
  the "search both schema and values together" capability);
* ``n:<path>=<number>`` — exact numeric value under a path.
"""

from __future__ import annotations

import re
from typing import Any, Iterator, Optional

from repro.core.dataguide.model import child_path

_TOKEN_RE = re.compile(r"[A-Za-z0-9_]+")


def tokenize_value(text: str) -> list[str]:
    """Lower-cased word tokens of a string value (the index tokenizer)."""
    return [t.lower() for t in _TOKEN_RE.findall(text)]


class InvertedIndex:
    """Keyword -> sorted rowid postings with incremental add/remove."""

    def __init__(self) -> None:
        self._postings: dict[str, set[int]] = {}
        self.indexed_documents = 0

    # -- maintenance ---------------------------------------------------------

    def add_document(self, rowid: int, value: Any) -> None:
        self.indexed_documents += 1
        for key in self._keys_for(value):
            self._postings.setdefault(key, set()).add(rowid)

    def remove_document(self, rowid: int, value: Any) -> None:
        self.indexed_documents -= 1
        for key in self._keys_for(value):
            postings = self._postings.get(key)
            if postings is not None:
                postings.discard(rowid)
                if not postings:
                    del self._postings[key]

    def _keys_for(self, value: Any) -> set[str]:
        keys: set[str] = set()
        self._walk(value, "$", keys)
        return keys

    def _walk(self, value: Any, path: str, keys: set[str]) -> None:
        if isinstance(value, dict):
            keys.add(f"p:{path}")
            for name, item in value.items():
                keys.add(f"f:{name}")
                self._walk(item, child_path(path, name), keys)
        elif isinstance(value, (list, tuple)):
            keys.add(f"p:{path}")
            for item in value:
                if isinstance(item, dict):
                    for name, sub in item.items():
                        keys.add(f"f:{name}")
                        self._walk(sub, child_path(path, name), keys)
                elif isinstance(item, (list, tuple)):
                    self._walk(item, path, keys)
                else:
                    self._leaf_keys(item, path, keys)
        else:
            self._leaf_keys(value, path, keys)

    def _leaf_keys(self, value: Any, path: str, keys: set[str]) -> None:
        keys.add(f"p:{path}")
        if isinstance(value, str):
            for token in tokenize_value(value):
                keys.add(f"t:{token}")
                keys.add(f"v:{path}={token}")
        elif isinstance(value, bool):
            keys.add(f"v:{path}={'true' if value else 'false'}")
        elif isinstance(value, (int, float)):
            keys.add(f"n:{path}={value!r}")

    # -- lookups ----------------------------------------------------------------

    def _ids(self, key: str) -> set[int]:
        return self._postings.get(key, set())

    def docs_with_field(self, name: str) -> set[int]:
        return set(self._ids(f"f:{name}"))

    def docs_with_path(self, path: str) -> set[int]:
        return set(self._ids(f"p:{path}"))

    def docs_with_token(self, token: str, path: Optional[str] = None) -> set[int]:
        if path is None:
            return set(self._ids(f"t:{token.lower()}"))
        return set(self._ids(f"v:{path}={token.lower()}"))

    def docs_with_keywords(self, keywords: str,
                           path: Optional[str] = None) -> set[int]:
        """Documents containing *all* word tokens of ``keywords``
        (optionally constrained under one path) — JSON_TEXTCONTAINS."""
        tokens = tokenize_value(keywords)
        if not tokens:
            return set()
        result: Optional[set[int]] = None
        for token in tokens:
            ids = self.docs_with_token(token, path)
            result = ids if result is None else (result & ids)
            if not result:
                return set()
        return result or set()

    def docs_with_number(self, path: str, value: Any) -> set[int]:
        return set(self._ids(f"n:{path}={value!r}"))

    # -- accounting -------------------------------------------------------------

    def key_count(self) -> int:
        return len(self._postings)

    def postings_size(self) -> int:
        return sum(len(ids) for ids in self._postings.values())

    def iter_keys(self) -> Iterator[str]:
        return iter(self._postings)
