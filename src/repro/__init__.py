"""repro — a reproduction of "Closing the Functional and Performance Gap
between SQL and NoSQL" (Liu et al., Oracle, SIGMOD 2016).

The package implements the paper's two contributions and every substrate
they run on:

* **JSON DataGuide** (:mod:`repro.core.dataguide`) — an automatically
  computed, continuously maintained dynamic soft schema over JSON
  collections, with DMDV view generation (``CreateViewOnPath``) and
  JSON_VALUE virtual columns (``AddVC``);
* **OSON** (:mod:`repro.core.oson`) — a self-contained binary JSON format
  with a three-segment architecture enabling jump navigation;
* **SQL/JSON** (:mod:`repro.sqljson`) — the path language and the
  JSON_VALUE / JSON_QUERY / JSON_EXISTS / JSON_TEXTCONTAINS / JSON_TABLE
  operators over text, BSON and OSON inputs;
* a mini relational **engine** (:mod:`repro.engine`), a schema-agnostic
  JSON search **index** (:mod:`repro.index`), an in-memory column store
  (:mod:`repro.imc`), a from-scratch JSON text layer
  (:mod:`repro.jsontext`) and a BSON baseline (:mod:`repro.bson`);
* the paper's **workloads** (:mod:`repro.workloads`): NOBENCH, YCSB,
  purchase orders and synthetic twins of the twelve evaluated
  collections.

Quickstart::

    from repro.engine import Database, Column, NUMBER, CLOB
    from repro.engine.constraints import IsJsonConstraint
    from repro.core.dataguide import add_vc, create_view_on_path

    db = Database()
    po = db.create_table("PO", [Column("DID", NUMBER),
                                Column("JDOC", CLOB)])
    po.add_constraint(IsJsonConstraint("JDOC"))
    idx = db.create_json_search_index("PO_SIDX", "PO", "JDOC")
    po.insert({"DID": 1, "JDOC": '{"purchaseOrder": {"id": 1}}'})
    guide = idx.get_dataguide()          # write without schema ...
    add_vc(po, "JDOC", guide)            # ... read with schema
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
