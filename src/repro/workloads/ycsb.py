"""YCSB-style JSON documents.

The YCSB core workload's record is a key plus ten 100-byte string fields;
as JSON that is a flat object whose bytes are almost entirely leaf values
— which is why Table 11 shows the YCSBDoc collection spending ~84 % of
its OSON bytes in the leaf-scalar-value segment.
"""

from __future__ import annotations


from repro.workloads._seeds import rng_for
import string
from typing import Any, Iterator

_ALPHABET = string.ascii_letters + string.digits


class YcsbGenerator:
    """Deterministic YCSB document generator."""

    def __init__(self, seed: int = 7, field_count: int = 10,
                 field_length: int = 100) -> None:
        self.seed = seed
        self.field_count = field_count
        self.field_length = field_length

    def document(self, key: int) -> dict[str, Any]:
        rng = rng_for(self.seed, key)
        doc: dict[str, Any] = {"key": f"user{key:010d}"}
        for i in range(self.field_count):
            doc[f"field{i}"] = "".join(
                rng.choices(_ALPHABET, k=self.field_length))
        return doc

    def documents(self, count: int, start: int = 0) -> Iterator[dict[str, Any]]:
        for key in range(start, start + count):
            yield self.document(key)
