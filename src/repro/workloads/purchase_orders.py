"""The purchaseOrder collection and the 9 OLAP queries of Table 13.

Documents follow the master/detail shape of the paper's sections 3.2 and
6.3: singleton header fields (reference, requestor, costcenter, special
instructions) over a nested ``items`` array of line items.  The queries
run against two relational views that hide the physical storage:

* ``po_mv``        — singleton scalar fields only (Q1, Q2);
* ``po_item_dmdv`` — the de-normalized master-detail expansion (Q3-Q9).

:func:`build_po_views` constructs both views for any of the four storage
methods of Figure 3 (JSON text / BSON / OSON via JSON_TABLE over the
document column; REL via a hash join of the shredded master/detail
tables), so one query implementation serves all storages.
"""

from __future__ import annotations

import random

from repro.workloads._seeds import rng_for
from typing import Any, Iterator

from repro.engine import Database, Query, expr
from repro.engine.table import Table
from repro.engine.view import JsonTableView, QueryView, View
from repro.sqljson.json_table import ColumnDef, JsonTable, NestedPath

_COST_CENTERS = ["A10", "A20", "A30", "A40", "A50", "B60", "B70", "B80",
                 "B90", "C100"]
_FIRST = ["Alexis", "Bruno", "Carol", "Daniel", "Erin", "Felix", "Grace",
          "Hector", "Iris", "Jack", "Karen", "Liam", "Mona", "Nina"]
_LAST = ["Bull", "Chen", "Davis", "Evans", "Ford", "Gupta", "Hale",
         "Ito", "Jones", "Klein", "Lopez", "Moore"]
_PART_WORDS = ["Widget", "Gadget", "Sprocket", "Flange", "Gear", "Bolt",
               "Valve", "Rotor", "Stator", "Bearing"]
_INSTRUCTIONS = ["Courier", "Ground", "Air Mail", "Expidite", "COD",
                 "Hand Carry", "Next Day Air", "Surface Mail"]


class PurchaseOrderGenerator:
    """Deterministic purchaseOrder document generator."""

    def __init__(self, seed: int = 42, min_items: int = 1,
                 max_items: int = 5) -> None:
        self.seed = seed
        self.min_items = min_items
        self.max_items = max_items

    def document(self, i: int) -> dict[str, Any]:
        rng = rng_for(self.seed, i)
        requestor = f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
        user = requestor.split()[-1].upper()
        reference = f"{user}-{20140000 + i}"
        item_count = rng.randint(self.min_items, self.max_items)
        items = []
        for item_no in range(1, item_count + 1):
            part_word = rng.choice(_PART_WORDS)
            items.append({
                "itemno": item_no,
                "partno": f"{rng.randrange(10**10, 10**11)}",
                "description": f"{part_word} model {rng.randrange(100, 999)}",
                "quantity": rng.randint(1, 20),
                "unitprice": round(rng.uniform(5.0, 900.0), 2),
            })
        doc: dict[str, Any] = {
            "purchaseOrder": {
                "reference": reference,
                "requestor": requestor,
                "user": user,
                "costcenter": rng.choice(_COST_CENTERS),
                "instructions": rng.choice(_INSTRUCTIONS),
                "items": items,
            }
        }
        if rng.random() < 0.25:
            doc["purchaseOrder"]["foreign_id"] = _foreign_id(rng)
        return doc

    def documents(self, count: int, start: int = 0) -> Iterator[dict[str, Any]]:
        for i in range(start, start + count):
            yield self.document(i)


def _foreign_id(rng: random.Random) -> str:
    return "".join(rng.choices("ABCDEFGHJKLMNPQRSTUVWXYZ0123456789", k=6))


# -- view construction -------------------------------------------------------


#: singleton (master) scalar paths of the collection
MASTER_COLUMNS = [
    ("reference", "varchar2(32)", "$.purchaseOrder.reference"),
    ("requestor", "varchar2(32)", "$.purchaseOrder.requestor"),
    ("userid", "varchar2(16)", "$.purchaseOrder.user"),
    ("costcenter", "varchar2(8)", "$.purchaseOrder.costcenter"),
    ("instructions", "varchar2(32)", "$.purchaseOrder.instructions"),
]

#: detail (line item) scalar paths
ITEM_COLUMNS = [
    ("itemno", "number", "$.itemno"),
    ("partno", "varchar2(16)", "$.partno"),
    ("description", "varchar2(64)", "$.description"),
    ("quantity", "number", "$.quantity"),
    ("unitprice", "number", "$.unitprice"),
]


def po_mv_json_table() -> JsonTable:
    """The po_mv JSON_TABLE spec: singleton scalars only."""
    return JsonTable("$", [ColumnDef(n, t, p) for n, t, p in MASTER_COLUMNS])


def po_item_dmdv_json_table() -> JsonTable:
    """The po_item_dmdv spec: master fields + NESTED PATH over items."""
    return JsonTable("$", [
        *[ColumnDef(n, t, p) for n, t, p in MASTER_COLUMNS],
        NestedPath("$.purchaseOrder.items[*]",
                   [ColumnDef(n, t, p) for n, t, p in ITEM_COLUMNS]),
    ])


def build_po_views(db: Database, table: Table, json_column: str,
                   prefix: str) -> tuple[View, View]:
    """Register ``<prefix>_mv`` and ``<prefix>_item_dmdv`` views over a
    JSON document column (any encoding the operators accept)."""
    mv = JsonTableView(f"{prefix}_mv", table, json_column, po_mv_json_table())
    dmdv = JsonTableView(f"{prefix}_item_dmdv", table, json_column,
                         po_item_dmdv_json_table())
    db.register_view(mv)
    db.register_view(dmdv)
    return mv, dmdv


def build_rel_views(db: Database, master: Table, detail: Table,
                    prefix: str) -> tuple[View, View]:
    """REL storage's views: po_mv is the master table; po_item_dmdv is a
    hash join of master and detail on the purchase-order key."""
    mv = QueryView(
        f"{prefix}_mv",
        Query(master).select("reference", "requestor", "userid",
                             "costcenter", "instructions"))
    dmdv = QueryView(
        f"{prefix}_item_dmdv",
        Query(master).join(detail, "po_id", "po_id", how="left")
        .select("reference", "requestor", "userid", "costcenter",
                "instructions", "itemno", "partno", "description",
                "quantity", "unitprice"))
    db.register_view(mv)
    db.register_view(dmdv)
    return mv, dmdv


# -- the 9 OLAP queries of Table 13 --------------------------------------------------


#: the query ids of Table 13, in order
PO_QUERY_IDS = ("q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9")


class PoOlapQueries:
    """Q1-Q9 against the two views; storage-agnostic by construction.

    Each query exists in two forms: an un-executed builder
    (:meth:`q1_query` ... :meth:`q9_query`, or :meth:`query` by id with
    bound :class:`PoQueryParams`) and the original executing wrapper
    (:meth:`q1` ...).  The builders let harnesses run the Figure-3 set
    through any execution front-end — the serving layer's
    ``Session.execute_query`` (deadlines, admission, shard-failure
    policy), EXPLAIN ANALYZE, the chaos sweep — without re-spelling the
    query text.
    """

    def __init__(self, mv: View, dmdv: View) -> None:
        self.mv = mv
        self.dmdv = dmdv

    # -- un-executed builders ----------------------------------------------

    def q1_query(self, reference: str) -> Query:
        return (Query(self.mv)
                .where(expr.Col("reference") == reference)
                .group_by([], n=expr.COUNT()))

    def q2_query(self) -> Query:
        return (Query(self.mv)
                .group_by(["costcenter"], n=expr.COUNT())
                .order_by("costcenter"))

    def q3_query(self, partno: str) -> Query:
        return (Query(self.dmdv)
                .where(expr.Col("partno") == partno)
                .group_by(["costcenter"], n=expr.COUNT()))

    def q4_query(self, requestor: str, quantity: float,
                 unitprice: float) -> Query:
        return (Query(self.dmdv)
                .where(expr.And(expr.Col("requestor") == requestor,
                                expr.Col("quantity") > quantity,
                                expr.Col("unitprice") > unitprice))
                .select("reference", "instructions", "itemno", "partno",
                        "description", "quantity", "unitprice"))

    def q5_query(self, partnos: list[str]) -> Query:
        return (Query(self.dmdv)
                .where(expr.Col("partno").in_(partnos))
                .select("reference", "itemno", "partno", "description"))

    def q6_query(self, partno: str) -> Query:
        seq = expr.SUBSTR(expr.Col("reference"),
                          expr.INSTR(expr.Col("reference"), "-") + 1)
        return (Query(self.dmdv)
                .where(expr.Col("partno") == partno)
                .window("prev_quantity",
                        expr.LAG(expr.Col("quantity"), 1, expr.Col("quantity")),
                        order_by=seq)
                .select("partno", "reference", "quantity",
                        (expr.Col("quantity") - expr.Col("prev_quantity"))
                        .as_("difference"))
                .order_by("reference", desc=True))

    def q7_query(self) -> Query:
        return (Query(self.dmdv)
                .group_by(["costcenter"],
                          total=expr.SUM(expr.Col("quantity")
                                         * expr.Col("unitprice")))
                .order_by("total"))

    def q8_query(self, quantity: float, unitprice: float) -> Query:
        return (Query(self.dmdv)
                .where(expr.And(expr.Col("quantity") > quantity,
                                expr.Col("unitprice") > unitprice))
                .select("reference", "instructions", "itemno", "partno",
                        "description", "quantity", "unitprice"))

    def q9_query(self) -> Query:
        return (Query(self.dmdv)
                .select("reference", "instructions", "itemno", "partno",
                        "description", "quantity", "unitprice"))

    def query(self, qid: str, params: "PoQueryParams") -> Query:
        """The un-executed builder for one Table-13 query id with the
        paper's bind parameters applied — the single dispatch point
        harnesses iterate (:data:`PO_QUERY_IDS`)."""
        if qid == "q1":
            return self.q1_query(params.reference)
        if qid == "q2":
            return self.q2_query()
        if qid == "q3":
            return self.q3_query(params.partno)
        if qid == "q4":
            return self.q4_query(params.requestor, 2, 50.0)
        if qid == "q5":
            return self.q5_query(params.partnos)
        if qid == "q6":
            return self.q6_query(params.partno)
        if qid == "q7":
            return self.q7_query()
        if qid == "q8":
            return self.q8_query(10, 400.0)
        if qid == "q9":
            return self.q9_query()
        raise ValueError(f"unknown query id {qid!r}")

    # -- executing wrappers (the original Table-13 surface) ----------------

    def q1(self, reference: str) -> int:
        """SELECT COUNT(*) FROM po_mv WHERE reference = ?"""
        return self.q1_query(reference).scalar()

    def q2(self) -> list[dict]:
        """SELECT costcenter, COUNT(*) FROM po_mv GROUP BY costcenter
        ORDER BY 1"""
        return self.q2_query().rows()

    def q3(self, partno: str) -> list[dict]:
        """SELECT costcenter, COUNT(*) FROM po_item_dmdv WHERE partno = ?
        GROUP BY costcenter"""
        return self.q3_query(partno).rows()

    def q4(self, requestor: str, quantity: float, unitprice: float) -> list[dict]:
        """Detail projection filtered on requestor, quantity, unitprice."""
        return self.q4_query(requestor, quantity, unitprice).rows()

    def q5(self, partnos: list[str]) -> list[dict]:
        """SELECT reference, itemno, partno, description WHERE partno IN (...)"""
        return self.q5_query(partnos).rows()

    def q6(self, partno: str) -> list[dict]:
        """LAG window over order sequence for one part (the analytic Q6)."""
        return self.q6_query(partno).rows()

    def q7(self) -> list[dict]:
        """SELECT SUM(quantity * unitprice) GROUP BY costcenter ORDER BY 1"""
        return self.q7_query().rows()

    def q8(self, quantity: float, unitprice: float) -> list[dict]:
        """Detail projection filtered on quantity and unitprice."""
        return self.q8_query(quantity, unitprice).rows()

    def q9(self) -> list[dict]:
        """Full projection of the DMDV (the scan-everything query)."""
        return self.q9_query().rows()

    def run_all(self, params: "PoQueryParams") -> dict[str, int]:
        """Run Q1-Q9 with bound parameters; returns result sizes."""
        return {
            "q1": self.q1(params.reference),
            "q2": len(self.q2()),
            "q3": len(self.q3(params.partno)),
            "q4": len(self.q4(params.requestor, 2, 50.0)),
            "q5": len(self.q5(params.partnos)),
            "q6": len(self.q6(params.partno)),
            "q7": len(self.q7()),
            "q8": len(self.q8(10, 400.0)),
            "q9": len(self.q9()),
        }


class PoQueryParams:
    """Bind parameters drawn from the generated collection so the paper's
    parameterized queries (?) hit real values."""

    def __init__(self, documents: list[dict[str, Any]]) -> None:
        first = documents[0]["purchaseOrder"]
        mid = documents[len(documents) // 2]["purchaseOrder"]
        last = documents[-1]["purchaseOrder"]
        self.reference = mid["reference"]
        self.requestor = mid["requestor"]
        self.partno = mid["items"][0]["partno"]
        self.partnos = [
            first["items"][0]["partno"],
            mid["items"][0]["partno"],
            last["items"][0]["partno"],
        ]
