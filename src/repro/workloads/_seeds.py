"""Deterministic per-document RNG derivation.

Generators derive one :class:`random.Random` per (collection seed,
document index) so any document can be regenerated independently of the
others — important for ``documents(count, start=...)`` slicing.
"""

from __future__ import annotations

import random

_MIX = 0x9E3779B97F4A7C15  # 64-bit golden-ratio constant


def rng_for(seed: int, index: int) -> random.Random:
    """A stream-independent RNG for document ``index`` of stream ``seed``."""
    mixed = (seed * _MIX + index) & 0xFFFFFFFFFFFFFFFF
    mixed ^= mixed >> 31
    return random.Random(mixed)
