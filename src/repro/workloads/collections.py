"""Synthetic twins of the twelve collections in Tables 10-12.

The paper's collections are proprietary customer data sets; only their
structural statistics are published (average document size under three
encodings, OSON segment ratios, DataGuide path counts, DMDV fan-out).
Each generator here is tuned to reproduce the *structural character* of
its namesake — nesting depth, array fan-out, field-name vocabulary size,
string-vs-number mix — so the derived statistics land in the same regime:

* small business documents (workOrder .. AcquisionDoc): hundreds of
  bytes to a few KiB, dictionary segment a large fraction;
* NOBENCHDoc / YCSBDoc: the public benchmarks;
* TwitterMsgArchive: one large document holding an array of thousands of
  repeated message structures (dictionary ratio -> ~0 %);
* SensorData: one very large document dominated by numeric arrays (tree
  segment dominates, OSON much smaller than text).

``collection(name, scale)`` returns the document list; ``scale`` shrinks
the two large single-document collections so tests stay fast.
"""

from __future__ import annotations

import random

from repro.workloads._seeds import rng_for
from typing import Any, Callable

from repro.workloads.nobench import NobenchGenerator
from repro.workloads.purchase_orders import PurchaseOrderGenerator
from repro.workloads.ycsb import YcsbGenerator

_WORDS = ("alpha bravo charlie delta echo foxtrot golf hotel india juliet "
          "kilo lima mike november oscar papa quebec romeo sierra tango "
          "uniform victor whiskey xray yankee zulu").split()


def _sentence(rng: random.Random, words: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(words))


def work_orders(count: int, seed: int = 1) -> list[dict[str, Any]]:
    """Maintenance work orders: moderate nesting, small task arrays."""
    docs = []
    for i in range(count):
        rng = rng_for(seed, i)
        docs.append({
            "workOrder": {
                "id": 100000 + i,
                "status": rng.choice(["OPEN", "CLOSED", "HOLD"]),
                "priority": rng.randint(1, 5),
                "site": {"code": f"S{rng.randint(1, 40):03d}",
                         "region": rng.choice(["NA", "EU", "APAC"])},
                "assignee": {"name": _sentence(rng, 2),
                             "badge": rng.randrange(10**6)},
                "tasks": [{
                    "seq": t,
                    "action": _sentence(rng, 3),
                    "hours": round(rng.uniform(0.5, 8.0), 1),
                    "done": rng.random() < 0.5,
                } for t in range(rng.randint(2, 5))],
                "notes": _sentence(rng, rng.randint(6, 14)),
            }
        })
    return docs


def sales_orders(count: int, seed: int = 2) -> list[dict[str, Any]]:
    """Small, flat-ish orders: many field names relative to value bytes."""
    docs = []
    for i in range(count):
        rng = rng_for(seed, i)
        docs.append({
            "salesOrder": {
                "orderNumber": i,
                "customerAccountId": rng.randrange(10**8),
                "orderDate": f"201{rng.randint(3, 5)}-0{rng.randint(1, 9)}-1{rng.randint(0, 9)}",
                "currencyCode": rng.choice(["USD", "EUR", "JPY"]),
                "totalAmount": round(rng.uniform(10, 5000), 2),
                "shippingMethod": rng.choice(["GROUND", "AIR", "SEA"]),
                "lines": [{
                    "sku": f"SKU{rng.randrange(10**5):05d}",
                    "qty": rng.randint(1, 9),
                } for _ in range(rng.randint(1, 3))],
            }
        })
    return docs


def event_messages(count: int, seed: int = 3) -> list[dict[str, Any]]:
    """Deep telemetry/event envelopes with many distinct paths."""
    docs = []
    for i in range(count):
        rng = rng_for(seed, i)
        docs.append({
            "eventMessage": {
                "header": {
                    "messageId": f"MSG-{i:08d}",
                    "timestamp": f"2015-06-{rng.randint(10, 28)}T0{rng.randint(0, 9)}:15:00",
                    "source": {"system": rng.choice(["CRM", "ERP", "WMS"]),
                               "node": {"host": f"node{rng.randint(1, 64)}",
                                        "dc": rng.choice(["east", "west"])}},
                    "severity": rng.choice(["INFO", "WARN", "ERROR"]),
                },
                "payload": {
                    "kind": rng.choice(["create", "update", "delete"]),
                    "entity": {
                        "type": rng.choice(["order", "invoice", "shipment"]),
                        "key": rng.randrange(10**9),
                        "attributes": {
                            "status": rng.choice(["NEW", "DONE"]),
                            "amount": round(rng.uniform(1, 10000), 2),
                            "metadata": {
                                "origin": _sentence(rng, 2),
                                "traceId": f"{rng.randrange(16**12):012x}",
                                "tags": [_sentence(rng, 1)
                                         for _ in range(rng.randint(1, 4))],
                            },
                        },
                    },
                    "deltas": [{
                        "field": rng.choice(["status", "amount", "owner"]),
                        "old": _sentence(rng, 1),
                        "new": _sentence(rng, 1),
                    } for _ in range(rng.randint(2, 6))],
                },
                "context": {
                    "userId": rng.randrange(10**6),
                    "sessionId": f"{rng.randrange(16**8):08x}",
                    "ipAddress": f"10.{rng.randint(0, 255)}.{rng.randint(0, 255)}.{rng.randint(1, 254)}",
                },
            }
        })
    return docs


def purchase_orders(count: int, seed: int = 42) -> list[dict[str, Any]]:
    return list(PurchaseOrderGenerator(seed=seed).documents(count))


def book_orders(count: int, seed: int = 5) -> list[dict[str, Any]]:
    """Book store orders: wide documents, several sibling arrays."""
    docs = []
    for i in range(count):
        rng = rng_for(seed, i)
        docs.append({
            "bookOrder": {
                "orderId": i,
                "placedAt": f"2015-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
                "buyer": {
                    "name": _sentence(rng, 2),
                    "email": f"user{rng.randrange(10**6)}@example.com",
                    "address": {"street": _sentence(rng, 3),
                                "city": rng.choice(["Springfield", "Rivertown"]),
                                "zip": f"{rng.randrange(10**5):05d}",
                                "country": rng.choice(["US", "DE", "JP"])},
                    "loyalty": {"tier": rng.choice(["gold", "silver"]),
                                "points": rng.randrange(10**4)},
                },
                "books": [{
                    "isbn": f"978{rng.randrange(10**10):010d}",
                    "title": _sentence(rng, rng.randint(2, 5)).title(),
                    "authors": [_sentence(rng, 2).title()
                                for _ in range(rng.randint(1, 2))],
                    "price": round(rng.uniform(5, 80), 2),
                    "format": rng.choice(["hardcover", "paperback", "ebook"]),
                } for _ in range(rng.randint(1, 4))],
                "coupons": [{
                    "code": f"CPN{rng.randrange(10**4):04d}",
                    "discountPct": rng.choice([5, 10, 15]),
                } for _ in range(rng.randint(0, 2))],
                "giftWrap": rng.random() < 0.3,
            }
        })
    return docs


def loan_notes(count: int, seed: int = 6) -> list[dict[str, Any]]:
    """Loan servicing notes: a very large field-name vocabulary relative
    to tiny values — the dictionary-segment-heavy row of Table 11."""
    categories = ["underwriting", "escrow", "servicing", "collections",
                  "insurance", "appraisal", "title", "closing"]
    docs = []
    for i in range(count):
        rng = rng_for(seed, i)
        doc: dict[str, Any] = {"loanNote": {
            "loanApplicationNumber": i,
            "borrowerPrimaryIdentifier": rng.randrange(10**9),
        }}
        note = doc["loanNote"]
        # many distinct, verbose field names with one- or two-char values
        for category in categories:
            section: dict[str, Any] = {}
            for k in range(rng.randint(8, 14)):
                field = (f"{category}ReviewStatusCode{k:02d}"
                         if k % 2 == 0 else
                         f"{category}ExceptionIndicatorFlag{k:02d}")
                section[field] = (rng.choice(["Y", "N"]) if k % 2
                                  else rng.randint(0, 9))
            note[f"{category}NotesSection"] = section
        docs.append(doc)
    return docs


def twitter_messages(count: int, seed: int = 7) -> list[dict[str, Any]]:
    """Twitter-like statuses: many optional paths, medium size."""
    docs = []
    for i in range(count):
        rng = rng_for(seed, i)
        doc: dict[str, Any] = {
            "created_at": f"Mon Jun {rng.randint(10, 28)} 12:{rng.randint(10, 59)}:00 +0000 2015",
            "id": 600000000000 + i,
            "id_str": str(600000000000 + i),
            "text": _sentence(rng, rng.randint(5, 18)),
            "truncated": False,
            "lang": rng.choice(["en", "es", "ja", "de"]),
            "retweet_count": rng.randrange(1000),
            "favorite_count": rng.randrange(500),
            "user": {
                "id": rng.randrange(10**9),
                "screen_name": f"user_{rng.randrange(10**6)}",
                "name": _sentence(rng, 2).title(),
                "followers_count": rng.randrange(10**5),
                "friends_count": rng.randrange(5000),
                "verified": rng.random() < 0.05,
                "location": rng.choice(["", "SF", "NYC", "Tokyo"]),
            },
            "entities": {
                "hashtags": [{"text": rng.choice(_WORDS),
                              "indices": [0, 5]}
                             for _ in range(rng.randint(0, 3))],
                "urls": [{"url": f"http://t.co/{rng.randrange(16**6):06x}",
                          "expanded_url": f"http://example.com/{rng.randrange(10**6)}"}
                         for _ in range(rng.randint(0, 2))],
                "user_mentions": [{"screen_name": f"user_{rng.randrange(10**6)}",
                                   "id": rng.randrange(10**9)}
                                  for _ in range(rng.randint(0, 2))],
            },
        }
        if rng.random() < 0.3:
            doc["coordinates"] = {"type": "Point",
                                  "coordinates": [round(rng.uniform(-180, 180), 5),
                                                  round(rng.uniform(-90, 90), 5)]}
        if rng.random() < 0.2:
            doc["in_reply_to_status_id"] = 600000000000 + rng.randrange(i + 1)
        docs.append(doc)
    return docs


def acquisition_docs(count: int, seed: int = 8) -> list[dict[str, Any]]:
    """Acquisition/contract documents: long prose values dominate
    (value-segment-heavy), with a large clause fan-out."""
    docs = []
    for i in range(count):
        rng = rng_for(seed, i)
        docs.append({
            "acquisition": {
                "contractNumber": f"GS-{rng.randrange(10**5):05d}",
                "agency": rng.choice(["GSA", "DOD", "DOE"]),
                "awardAmount": round(rng.uniform(10**4, 10**7), 2),
                "summary": _sentence(rng, rng.randint(25, 60)),
                "clauses": [{
                    "clauseId": f"52.2{rng.randrange(100):02d}-{rng.randrange(9)}",
                    "text": _sentence(rng, rng.randint(15, 40)),
                } for _ in range(rng.randint(10, 30))],
            }
        })
    return docs


def nobench_docs(count: int, seed: int = 11) -> list[dict[str, Any]]:
    return list(NobenchGenerator(seed=seed).documents(count))


def ycsb_docs(count: int, seed: int = 7) -> list[dict[str, Any]]:
    return list(YcsbGenerator(seed=seed).documents(count))


def twitter_msg_archive(count: int = 1, seed: int = 9,
                        messages_per_archive: int = 1500) -> list[dict[str, Any]]:
    """Message archives: each document packs thousands of repeated tweet
    structures into one array (the paper's 5 MB document; scale via
    ``messages_per_archive``)."""
    docs = []
    for i in range(count):
        messages = twitter_messages(messages_per_archive, seed=(seed + i))
        docs.append({"archive": {"day": f"2015-06-{10 + i:02d}",
                                 "messages": messages}})
    return docs


def sensor_data(count: int = 1, seed: int = 10,
                series_count: int = 40,
                readings_per_series: int = 1200) -> list[dict[str, Any]]:
    """Sensor recordings: one huge document of numeric reading arrays —
    the tree-navigation-segment-dominated row of Table 11 (the paper's
    41.5 MB document; scale via the series/readings parameters)."""
    docs = []
    for i in range(count):
        rng = rng_for(seed, i)
        series = []
        for s in range(series_count):
            base = rng.uniform(-50, 50)
            epoch = 1433000000 + s * 100000
            series.append({
                "sensorId": f"S{s:04d}",
                "unit": rng.choice(["C", "kPa", "V"]),
                "readings": [{
                    # IoT-platform style records: long field names repeated
                    # per reading are exactly where OSON's per-document
                    # dictionary beats JSON text (Table 10's SensorData row)
                    "timestampUtcMillis": epoch + t * 500,
                    "measuredValue": round(base + rng.gauss(0, 2.5), 4),
                    "qualityFlag": rng.randrange(4),
                } for t in range(readings_per_series)],
            })
        docs.append({"recording": {"deviceId": f"DEV-{i:04d}",
                                   "series": series}})
    return docs


#: name -> (generator, default document count at scale 1.0)
_COLLECTIONS: dict[str, tuple[Callable[..., list[dict[str, Any]]], int]] = {
    "workOrder": (work_orders, 100),
    "salesOrder": (sales_orders, 100),
    "eventMessage": (event_messages, 100),
    "purchaseOrder": (purchase_orders, 100),
    "bookOrder": (book_orders, 100),
    "LoanNotes": (loan_notes, 50),
    "TwitterMsg": (twitter_messages, 100),
    "AcquisionDoc": (acquisition_docs, 50),
    "NOBENCHDoc": (nobench_docs, 100),
    "YCSBDoc": (ycsb_docs, 100),
    "TwitterMsgArchive": (twitter_msg_archive, 1),
    "SensorData": (sensor_data, 1),
}

COLLECTION_NAMES = list(_COLLECTIONS)


def collection(name: str, scale: float = 1.0) -> list[dict[str, Any]]:
    """Generate one named collection at ``scale`` (document count factor,
    minimum 1 document)."""
    try:
        generator, base_count = _COLLECTIONS[name]
    except KeyError:
        raise KeyError(f"unknown collection {name!r}; "
                       f"choose from {COLLECTION_NAMES}") from None
    count = max(1, int(base_count * scale))
    return generator(count)


def all_collections(scale: float = 1.0) -> list[tuple[str, list[dict[str, Any]]]]:
    """All twelve collections, in the paper's Table 10 row order."""
    return [(name, collection(name, scale)) for name in COLLECTION_NAMES]
