"""REL storage: relational decomposition of purchase orders (section 6.3).

The paper's fourth storage method shreds each purchaseOrder document into
two tables — ``purchase_master_tab`` (singleton header fields) and
``lineitem_detail_tab`` (one row per line item) — linked by a foreign
key, with primary/foreign key indexes counted in the storage size.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.engine import Column, Database, NUMBER, VARCHAR2
from repro.engine.table import Table


def create_rel_tables(db: Database, prefix: str = "purchase") -> tuple[Table, Table]:
    """Create the master/detail pair."""
    master = db.create_table(f"{prefix}_master_tab", [
        Column("po_id", NUMBER, nullable=False),
        Column("reference", VARCHAR2(32)),
        Column("requestor", VARCHAR2(32)),
        Column("userid", VARCHAR2(16)),
        Column("costcenter", VARCHAR2(8)),
        Column("instructions", VARCHAR2(32)),
        Column("foreign_id", VARCHAR2(8)),
    ])
    detail = db.create_table(f"{prefix}_lineitem_detail_tab", [
        Column("li_id", NUMBER, nullable=False),
        Column("po_id", NUMBER, nullable=False),
        Column("itemno", NUMBER),
        Column("partno", VARCHAR2(16)),
        Column("description", VARCHAR2(64)),
        Column("quantity", NUMBER),
        Column("unitprice", NUMBER),
    ])
    return master, detail


def shred_documents(master: Table, detail: Table,
                    documents: Iterable[dict[str, Any]]) -> int:
    """Decompose documents into the master/detail tables."""
    li_id = 0
    count = 0
    for po_id, doc in enumerate(documents):
        po = doc["purchaseOrder"]
        master.insert({
            "po_id": po_id,
            "reference": po.get("reference"),
            "requestor": po.get("requestor"),
            "userid": po.get("user"),
            "costcenter": po.get("costcenter"),
            "instructions": po.get("instructions"),
            "foreign_id": po.get("foreign_id"),
        })
        for item in po.get("items", []):
            detail.insert({
                "li_id": li_id,
                "po_id": po_id,
                "itemno": item.get("itemno"),
                "partno": item.get("partno"),
                "description": item.get("description"),
                "quantity": item.get("quantity"),
                "unitprice": item.get("unitprice"),
            })
            li_id += 1
        count += 1
    return count


def rel_storage_bytes(master: Table, detail: Table) -> int:
    """Heap bytes plus the primary/foreign key index estimate the paper
    includes in REL's 112 MB figure (one 8-byte entry per indexed row for
    the PK of each table and the FK of the detail table)."""
    index_bytes = 8 * (len(master) + 2 * len(detail))
    return master.storage_bytes() + detail.storage_bytes() + index_bytes
