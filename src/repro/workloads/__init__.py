"""Workload generators and query suites for the paper's experiments.

* :mod:`~repro.workloads.nobench` — the NOBENCH document generator and
  its 11 queries (Figures 5/6, section 6.4-6.6);
* :mod:`~repro.workloads.ycsb` — YCSB-style flat documents;
* :mod:`~repro.workloads.purchase_orders` — the purchaseOrder collection
  and the 9 OLAP queries of Table 13 (Figures 3/4);
* :mod:`~repro.workloads.collections` — synthetic twins of the 12
  collections in Tables 10-12;
* :mod:`~repro.workloads.relational` — the REL storage: master/detail
  decomposition of purchase orders.
"""

from repro.workloads.nobench import NobenchGenerator
from repro.workloads.purchase_orders import PurchaseOrderGenerator
from repro.workloads.ycsb import YcsbGenerator

__all__ = ["NobenchGenerator", "PurchaseOrderGenerator", "YcsbGenerator"]
