"""NOBENCH: the micro-benchmark of Chasseur, Li and Patel (WebDB 2013).

The paper uses NOBENCH throughout section 6.4-6.6 because it is a
"genuine semi-structured document collection with several common fields
and many sparse fields": every document has ~11 common fields (two
strings, a number, a boolean, two dynamically-typed fields, a nested
object, a nested array, a thousandth bucket) plus 10 sparse fields drawn
from a 1 000-field space, so a large collection exercises all 1 000+
distinct paths — beyond Oracle's 1 000-column relational limit, which is
the paper's argument for not shredding.

:class:`NobenchGenerator` reproduces that schema deterministically;
:class:`NobenchQueries` implements the 11 queries over any document
source (text / OSON handles via the SQL/JSON operators, or VC-IMC column
vectors for the queries the paper lists as VC-eligible: Q6, Q7, Q10, Q11).
"""

from __future__ import annotations


from repro.workloads._seeds import rng_for
from typing import Any, Iterator, Optional

import numpy as np

from repro.imc import kernels
from repro.imc.json_modes import JsonColumnIMC
from repro.sqljson.operators import json_exists, json_value

SPARSE_FIELD_COUNT = 1000
SPARSE_PER_DOCUMENT = 10
SPARSE_CLUSTER_SIZE = 100

#: the three virtual columns the paper loads into IMC (section 6.4):
#: JSON_VALUE(jobj,'$.str1'), JSON_VALUE(jobj,'$.num' RETURNING NUMBER),
#: JSON_VALUE(jobj,'$.dyn1' RETURNING NUMBER) — the NUMBER returning on
#: dyn1 NULLs out its string-typed instances
VC_PATHS = (("$.str1", None), ("$.num", "number"), ("$.dyn1", "number"))


def _base32ish(value: int) -> str:
    """A deterministic pseudo-word for string fields (NOBENCH uses a
    base-32 rendering of the counter)."""
    alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ234567"
    if value == 0:
        return "A"
    out = []
    while value:
        out.append(alphabet[value % 32])
        value //= 32
    return "".join(reversed(out))


class NobenchGenerator:
    """Deterministic NOBENCH document generator."""

    def __init__(self, seed: int = 11) -> None:
        self.seed = seed

    def document(self, i: int) -> dict[str, Any]:
        rng = rng_for(self.seed, i)
        doc: dict[str, Any] = {
            "str1": _base32ish(i),
            "str2": _base32ish(i // 2),
            "num": i,
            "bool": i % 2 == 0,
            # dynamically typed fields: number in even docs, string in odd
            "dyn1": i if i % 2 == 0 else _base32ish(i),
            "dyn2": float(i) if i % 3 == 0 else _base32ish(i * 3),
            "nested_obj": {"str": _base32ish(i), "num": i},
            "nested_arr": [_base32ish(rng.randrange(i + 1) if i else 0)
                           for _ in range(rng.randrange(1, 6))],
            "thousandth": i % 1000,
        }
        # ten sparse fields per document from a clustered 1000-field space
        cluster = (i * SPARSE_PER_DOCUMENT) % SPARSE_FIELD_COUNT
        for k in range(SPARSE_PER_DOCUMENT):
            field_id = (cluster + k) % SPARSE_FIELD_COUNT
            doc[f"sparse_{field_id:03d}"] = _base32ish(i + k)
        return doc

    def documents(self, count: int, start: int = 0) -> Iterator[dict[str, Any]]:
        for i in range(start, start + count):
            yield self.document(i)

    def homogeneous_documents(self, count: int, template_index: int = 0
                              ) -> Iterator[dict[str, Any]]:
        """Identical-structure documents (Figure 7/8's *homo* runs): the
        same field set with per-document values."""
        template = self.document(template_index)
        for i in range(count):
            doc = dict(template)
            doc["num"] = i
            doc["str1"] = _base32ish(i)
            yield doc

    def heterogeneous_documents(self, count: int) -> Iterator[dict[str, Any]]:
        """Each document adds a unique brand-new field (Figure 8's *hetero*
        run): every insert discovers a new path."""
        template = self.document(0)
        for i in range(count):
            doc = dict(template)
            doc[f"unique_field_{i:07d}"] = i
            yield doc


class NobenchQueries:
    """The 11 NOBENCH queries over a :class:`JsonColumnIMC` source.

    Every query method returns its result rows/values; selective
    parameters default to NOBENCH's published selectivities (0.1 % ranges,
    single-document point lookups).  When the source is in VC-IMC mode
    and the query touches only VC paths, the vectorized kernel path is
    used — these are the Figure 6 bars.
    """

    def __init__(self, source: JsonColumnIMC, document_count: int) -> None:
        self.source = source
        self.n = document_count

    # -- projection queries ----------------------------------------------------

    def q1(self) -> list[tuple[Any, Any]]:
        """Project two common top-level fields (str1, num)."""
        return [(json_value(h, "$.str1"), json_value(h, "$.num"))
                for h in self.source.handles()]

    def q2(self) -> list[tuple[Any, Any]]:
        """Project nested object fields."""
        return [(json_value(h, "$.nested_obj.str"),
                 json_value(h, "$.nested_obj.num"))
                for h in self.source.handles()]

    def q3(self) -> list[tuple[Any, Any]]:
        """Project two sparse fields from the same cluster."""
        return [(json_value(h, "$.sparse_110"), json_value(h, "$.sparse_119"))
                for h in self.source.handles()
                if json_exists(h, "$.sparse_110")
                or json_exists(h, "$.sparse_119")]

    def q4(self) -> list[tuple[Any, Any]]:
        """Project two sparse fields from different clusters."""
        return [(json_value(h, "$.sparse_110"), json_value(h, "$.sparse_220"))
                for h in self.source.handles()
                if json_exists(h, "$.sparse_110")
                or json_exists(h, "$.sparse_220")]

    # -- selection queries ---------------------------------------------------------

    def q5(self, needle: Optional[str] = None) -> list[dict[str, Any]]:
        """Point lookup on str1."""
        if needle is None:
            needle = _base32ish(self.n // 2)
        return [self._materialize(h) for h in self.source.handles()
                if json_value(h, "$.str1") == needle]

    def q6(self, low: Optional[int] = None,
           span: Optional[int] = None) -> list[Any]:
        """Range on num (0.1 % selectivity) — VC-eligible."""
        if low is None:
            low = self.n // 3
        if span is None:
            span = max(self.n // 1000, 1)
        if self.source.has_vector("$.num"):
            column = self.source.vector("$.num")
            mask = kernels.between(column, low, low + span)
            return [column.value_at(i)
                    for i in self.source.selection_to_indexes(mask)]
        out = []
        for h in self.source.handles():
            value = json_value(h, "$.num")
            if value is not None and low <= value < low + span:
                out.append(value)
        return out

    def q7(self, low: Optional[int] = None,
           span: Optional[int] = None) -> list[Any]:
        """Range on the dynamically typed dyn1 — VC-eligible.

        Only numeric instances participate (string-typed dyn1 values are
        excluded by the comparison semantics).
        """
        if low is None:
            low = self.n // 4
        if span is None:
            span = max(self.n // 1000, 1)
        if self.source.has_vector("$.dyn1"):
            column = self.source.vector("$.dyn1")
            mask = kernels.between(column, low, low + span)
            return [column.value_at(i)
                    for i in self.source.selection_to_indexes(mask)]
        out = []
        for h in self.source.handles():
            value = json_value(h, "$.dyn1")
            if isinstance(value, (int, float)) and low <= value < low + span:
                out.append(value)
        return out

    def q8(self, needle: Optional[str] = None) -> list[dict[str, Any]]:
        """Array membership in nested_arr."""
        if needle is None:
            needle = _base32ish(self.n // 5)
        path = f'$.nested_arr[*]?(@ == "{needle}")'
        return [self._materialize(h) for h in self.source.handles()
                if json_exists(h, path)]

    def q9(self, field: str = "sparse_550",
           needle: Optional[str] = None) -> list[dict[str, Any]]:
        """Predicate on a sparse field."""
        out = []
        for h in self.source.handles():
            value = json_value(h, f"$.{field}")
            if value is None:
                continue
            if needle is None or value == needle:
                out.append(self._materialize(h))
        return out

    # -- aggregation / join --------------------------------------------------------------

    def q10(self, buckets: int = 10) -> dict[Any, float]:
        """GROUP BY thousandth-bucket SUM(num) — VC-eligible.

        Bucketing thousandth into ``buckets`` groups keeps the result
        small at reduced document counts.
        """
        if self.source.has_vector("$.num"):
            nums = self.source.vector("$.num")
            # bucket keys derive from num's own thousandth residue so the
            # whole aggregation stays vectorized
            keys_raw = np.mod(nums.values.astype(np.int64), 1000) % buckets
            sums: dict[Any, float] = {}
            for bucket in range(buckets):
                mask = (keys_raw == bucket) & nums.valid
                if mask.any():
                    sums[bucket] = float(nums.values[mask].sum())
            return sums
        sums = {}
        for h in self.source.handles():
            num = json_value(h, "$.num")
            thousandth = json_value(h, "$.thousandth")
            if num is None or thousandth is None:
                continue
            bucket = int(thousandth) % buckets
            sums[bucket] = sums.get(bucket, 0.0) + num
        return sums

    def q11(self, limit: Optional[int] = None) -> list[tuple[int, int]]:
        """Self equi-join: nested_obj.str of one doc = str1 of another —
        VC-eligible on the probe side ($.str1)."""
        if limit is None:
            limit = self.n
        if self.source.has_vector("$.str1"):
            column = self.source.vector("$.str1")
            build: dict[str, list[int]] = {}
            for index in range(min(len(column), limit)):
                value = column.value_at(index)
                if value is not None:
                    build.setdefault(value, []).append(index)
            matches: list[tuple[int, int]] = []
            for index, h in enumerate(self.source.handles()):
                if index >= limit:
                    break
                probe = json_value(h, "$.nested_obj.str")
                for other in build.get(probe, ()):
                    matches.append((index, other))
            return matches
        build = {}
        handles = []
        for index, h in enumerate(self.source.handles()):
            if index >= limit:
                break
            handles.append(h)
            value = json_value(h, "$.str1")
            if value is not None:
                build.setdefault(value, []).append(index)
        matches = []
        for index, h in enumerate(handles):
            probe = json_value(h, "$.nested_obj.str")
            for other in build.get(probe, ()):
                matches.append((index, other))
        return matches

    def run_all(self) -> dict[str, Any]:
        """Run Q1..Q11 once each; returns result sizes keyed by query id."""
        results = {}
        for name in ("q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9",
                     "q10", "q11"):
            value = getattr(self, name)()
            results[name] = len(value)
        return results

    def _materialize(self, handle: Any) -> dict[str, Any]:
        if isinstance(handle, str):
            from repro.jsontext import loads
            return loads(handle)
        return handle.materialize()
