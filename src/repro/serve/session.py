"""Session/cursor serving front-end: snapshot reads, lane-separated
execution, deadlines and cancellation.

A :class:`Server` wraps one :class:`~repro.engine.catalog.Database` and
exposes it to many concurrent clients through :class:`Session` objects:

* **Reads run over pinned snapshots.**  The first statement that touches
  a durable table pins that table's current
  :class:`~repro.storage.store.StoreSnapshot`; every statement in the
  session then sees that one consistent durable state until
  :meth:`Session.refresh` (or one of the session's own writes) advances
  the pin.  Long analytical scans therefore never observe a partially
  published group-commit batch, and pins only ever move forward
  (monotonic reads).
* **Read-your-own-writes.**  A write is acknowledged only after its
  group-commit batch is fsynced *and* published; the session re-pins the
  written table on acknowledgement, so the very next read sees the
  write.
* **Two admission lanes.**  Read statements run on a multi-worker read
  lane; writes funnel through a write lane whose workers serialize heap
  mutation under one write lock but wait for durability *outside* it —
  that overlap is what lets the group-commit leader batch many
  sessions' fsyncs into one.
* **Deadlines and cancellation are cooperative.**  A per-query deadline
  (or :meth:`Cursor.cancel`) trips a :class:`CancelToken` that the
  executing query polls at every row boundary via
  ``Query.instrumented``; the query aborts with a typed
  :class:`~repro.errors.QueryTimeout` / :class:`~repro.errors.Cancelled`
  without leaving any shared state locked.
* **asyncio-compatible.**  Every statement resolves through a
  ``concurrent.futures.Future``; event-loop callers await
  ``asyncio.wrap_future(cursor.as_future())`` instead of blocking.

A Session (and its cursors) is a per-client object and is not itself
thread-safe — exactly the DB-API connection contract.  The Server, the
lanes, and the underlying store are the concurrent parts.
"""

from __future__ import annotations

from concurrent.futures import CancelledError as FuturesCancelledError
from concurrent.futures import Future
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.engine.catalog import Database
from repro.engine.query import Query
from repro.engine.scatter import ScatterPolicy
from repro.engine.sql.parser import compile_sql
from repro.engine.table import DurableTable
from repro.errors import Cancelled, CatalogError, QueryTimeout, SessionClosed
from repro.obs import locks as _locks
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.trace import monotonic
from repro.serve.admission import AdmissionController

__all__ = ["CancelToken", "Cursor", "Server", "Session"]

_TIMEOUTS = _metrics.counter("serve.query.timeouts")
_CANCELLED = _metrics.counter("serve.query.cancelled")
_SESSIONS = _metrics.counter("serve.sessions.opened")
_STATEMENTS = _metrics.counter("serve.statements")
_WRITES = _metrics.counter("serve.writes")
_DEGRADED = _metrics.counter("serve.query.degraded")


class CancelToken:
    """Cooperative cancellation + deadline for one statement.

    The executing query calls :meth:`check` at every row boundary; the
    caller (or the session closing) flips :attr:`cancelled` from any
    thread.  The flag is a single attribute write — atomic under the
    GIL — so no lock is needed.
    """

    __slots__ = ("deadline", "started_at", "_cancelled")

    def __init__(self, timeout_ms: Optional[float] = None) -> None:
        self.started_at = monotonic()
        self.deadline = (None if timeout_ms is None
                         else self.started_at + timeout_ms / 1000.0)
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def elapsed_ms(self) -> float:
        return (monotonic() - self.started_at) * 1000.0

    def check(self, ahead_s: float = 0.0) -> None:
        """Raise the typed abort if the statement should stop now.

        ``ahead_s`` is a deadline *lookahead*: retry machinery about to
        sleep for a backoff delay passes the delay here, so a wait that
        cannot finish before the deadline raises
        :class:`~repro.errors.QueryTimeout` immediately instead of
        sleeping past a deadline it already missed — retry time is
        charged against the statement's budget up front."""
        if self._cancelled:
            _CANCELLED.inc()
            raise Cancelled("query cancelled")
        if (self.deadline is not None
                and monotonic() + ahead_s > self.deadline):
            _TIMEOUTS.inc()
            raise QueryTimeout("query deadline exceeded",
                               self.elapsed_ms())


class _SnapshotView:
    """A Query source presenting one pinned snapshot of a durable table.

    Delegates everything else (schema lookups, constraint inspection)
    to the live table — only row production is redirected, which is the
    part that must not move under a running scan."""

    __slots__ = ("_table", "_snapshot", "name")

    def __init__(self, table: DurableTable, snapshot: Any) -> None:
        self._table = table
        self._snapshot = snapshot
        self.name = table.name

    def scan(self) -> Iterator[dict]:
        return self._table.snapshot_scan(self._snapshot)

    def shard_plan(self) -> Any:
        """Scatter over the *pinned* snapshot.  Defined explicitly:
        the ``__getattr__`` fallthrough would hand back the live
        table's bound method, which pins the store's current state and
        would let a session's scatter read past its snapshot."""
        return self._table.shard_plan(self._snapshot)

    def __getattr__(self, attr: str) -> Any:
        return getattr(self._table, attr)


class _SessionCatalog:
    """The catalog facade handed to the SQL compiler: table references
    resolve to the session's pinned snapshots, everything else falls
    through to the real database."""

    __slots__ = ("_session",)

    def __init__(self, session: "Session") -> None:
        self._session = session

    def query(self, source_name: str) -> Query:
        return self._session._query_source(source_name)


class Cursor:
    """One statement's handle: result access, deadline, cancellation.

    DB-API-flavoured: :meth:`execute` returns ``self``; results come
    from :meth:`fetchone` / :meth:`fetchall`.  :meth:`as_future`
    exposes the underlying ``concurrent.futures.Future`` for asyncio
    integration."""

    def __init__(self, session: "Session") -> None:
        self._session = session
        self._future: Optional[Future] = None
        self._token: Optional[CancelToken] = None
        self._rows: Optional[List[dict]] = None
        self._cursor_index = 0
        self._closed = False

    def execute(self, sql: str, params: Sequence[Any] = (),
                timeout_ms: Optional[float] = None,
                on_shard_failure: Optional[str] = None) -> "Cursor":
        """Admit a SELECT statement onto the read lane.

        Sheds synchronously with :class:`~repro.errors.Overloaded` when
        the lane is saturated.  ``timeout_ms`` starts counting at
        admission, so time spent waiting in the queue counts against
        the deadline (a saturated server times out instead of silently
        stretching latency).  ``on_shard_failure`` overrides the
        session's shard-failure policy for this statement (``"fail"``
        or ``"partial"``; see :attr:`degraded`)."""
        if self._closed:
            raise SessionClosed("cursor is closed")
        self._rows = None
        self._cursor_index = 0
        token = CancelToken(timeout_ms)
        self._token = token
        self._future = self._session._submit_read(sql, params, token,
                                                  on_shard_failure)
        return self

    def _execute_query(self, query: Query,
                       timeout_ms: Optional[float],
                       on_shard_failure: Optional[str]) -> "Cursor":
        """Admit a prebuilt :class:`Query` (same lane, deadline, and
        policy plumbing as :meth:`execute`)."""
        if self._closed:
            raise SessionClosed("cursor is closed")
        self._rows = None
        self._cursor_index = 0
        token = CancelToken(timeout_ms)
        self._token = token
        label = getattr(query._source, "name",
                        type(query._source).__name__)
        self._future = self._session._submit_query(
            query, token, f"<query over {label}>", on_shard_failure)
        return self

    def cancel(self) -> None:
        """Cancel the running statement (safe from any thread); the
        query aborts with :class:`~repro.errors.Cancelled` at its next
        row boundary — or never starts, if it is still queued."""
        if self._token is not None:
            self._token.cancel()
        if self._future is not None:
            self._future.cancel()

    def as_future(self) -> "Future[List[dict]]":
        """The statement's ``concurrent.futures.Future``; asyncio
        callers ``await asyncio.wrap_future(cursor.as_future())``."""
        if self._future is None:
            raise SessionClosed("no statement has been executed")
        return self._future

    def _resolve(self) -> List[dict]:
        if self._future is None:
            raise SessionClosed("no statement has been executed")
        if self._rows is None:
            try:
                self._rows = self._future.result()
            except FuturesCancelledError:
                # cancelled while still queued: it never ran, so the
                # token's typed error was never raised — translate here
                _CANCELLED.inc()
                raise Cancelled("query cancelled before it started"
                                ) from None
        return self._rows

    def fetchall(self) -> List[dict]:
        """All result rows (blocks until the statement finishes)."""
        rows = self._resolve()
        self._cursor_index = len(rows)
        return list(rows)

    def fetchone(self) -> Optional[dict]:
        """The next result row, or ``None`` when exhausted."""
        rows = self._resolve()
        if self._cursor_index >= len(rows):
            return None
        row = rows[self._cursor_index]
        self._cursor_index += 1
        return row

    def __iter__(self) -> Iterator[dict]:
        """DB-API optional extension: iterate the remaining rows."""
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    @property
    def rowcount(self) -> int:
        return len(self._resolve())

    @property
    def degraded(self) -> Optional[Any]:
        """The :class:`~repro.errors.DegradedResult` marker when this
        statement returned an explicitly-degraded partial result under
        ``on_shard_failure="partial"``; None for complete results.
        Degradation is never silent — callers that must not consume
        partial data do ``if cursor.degraded: raise cursor.degraded``.
        """
        return getattr(self._resolve(), "degraded", None)

    @property
    def shards_failed(self) -> tuple:
        """The shard indexes missing from this statement's result
        (empty for complete results)."""
        marker = self.degraded
        return () if marker is None else marker.shards_failed

    def close(self) -> None:
        self.cancel()
        self._closed = True


class Session:
    """One client's window onto the database: pinned snapshots for
    reads, acknowledged writes, cursors with deadlines."""

    def __init__(self, server: "Server") -> None:
        self._server = server
        self._catalog = _SessionCatalog(self)
        #: table name -> pinned StoreSnapshot; pins only move forward
        self._pins: Dict[str, Any] = {}
        self._cursors: List[Cursor] = []
        self._closed = False
        #: session-level shard-failure policy ("fail" | "partial"),
        #: seeded from the server default; per-statement
        #: ``on_shard_failure`` arguments override it
        self.on_shard_failure = server.on_shard_failure
        _SESSIONS.inc()

    # -- snapshot pinning --------------------------------------------------

    def _pin(self, name: str, table: DurableTable) -> Any:
        snapshot = self._pins.get(name)
        if snapshot is None:
            snapshot = table.store.snapshot()
            self._pins[name] = snapshot
        return snapshot

    def _advance_pin(self, name: str, table: DurableTable) -> None:
        """Move a pin forward to the current published state (never
        backward: monotonic reads even if a stale snapshot reference
        races in)."""
        current = table.store.snapshot()
        pinned = self._pins.get(name)
        if pinned is None or current.version >= pinned.version:
            self._pins[name] = current

    def refresh(self) -> None:
        """Drop every pin; the next statement re-pins fresh state."""
        self._pins.clear()

    def snapshot_version(self, table_name: str) -> Optional[int]:
        """The pinned snapshot version for ``table_name`` (None when the
        session has not touched the table yet)."""
        pinned = self._pins.get(table_name)
        return None if pinned is None else pinned.version

    def _query_source(self, source_name: str) -> Query:
        db = self._server.db
        try:
            table = db.table(source_name)
        except CatalogError:
            return db.query(source_name)  # view, or raises CatalogError
        if isinstance(table, DurableTable):
            return Query(_SnapshotView(table, self._pin(source_name, table)))
        return Query(table)

    # -- reads -------------------------------------------------------------

    def cursor(self) -> Cursor:
        self._live()
        cursor = Cursor(self)
        self._cursors.append(cursor)
        return cursor

    def execute(self, sql: str, params: Sequence[Any] = (),
                timeout_ms: Optional[float] = None,
                on_shard_failure: Optional[str] = None) -> Cursor:
        """Convenience: a fresh cursor with the statement admitted."""
        return self.cursor().execute(sql, params, timeout_ms=timeout_ms,
                                     on_shard_failure=on_shard_failure)

    def execute_query(self, query: Query,
                      timeout_ms: Optional[float] = None,
                      on_shard_failure: Optional[str] = None) -> Cursor:
        """Admit a prebuilt :class:`~repro.engine.query.Query` onto the
        read lane with the full serving treatment: admission control,
        deadline token wired into every row boundary *and* the scatter
        retry budget, and the session/statement shard-failure policy.

        The query's own source decides snapshot pinning (builders over
        durable tables read current published state); the chaos harness
        drives the Figure-3 builder queries through here."""
        self._live()
        cursor = Cursor(self)
        self._cursors.append(cursor)
        return cursor._execute_query(query, timeout_ms, on_shard_failure)

    def _submit_read(self, sql: str, params: Sequence[Any],
                     token: CancelToken,
                     on_shard_failure: Optional[str] = None) -> Future:
        self._live()
        # compile in the caller's thread: catalog resolution pins
        # snapshots on session state, which only the owning thread may
        # touch; the worker gets a fully bound plan
        query = compile_sql(self._catalog, sql, list(params))
        return self._submit_query(query, token, sql, on_shard_failure)

    def _submit_query(self, query: Query, token: CancelToken,
                      label: str,
                      on_shard_failure: Optional[str]) -> Future:
        self._live()
        _STATEMENTS.inc()
        policy = ScatterPolicy(
            on_failure=on_shard_failure or self.on_shard_failure,
            token=token)
        hooked = query.instrumented(
            lambda _row: token.check()).with_scatter_policy(policy)

        def run() -> List[dict]:
            token.check()  # queue wait may already have eaten the deadline
            with _trace.span("serve.query", statement=label[:120]) as sp:
                rows = hooked.rows()
                sp.record("rows_out", len(rows))
                sp.record("queue_plus_exec_ms", token.elapsed_ms())
            if getattr(rows, "degraded", None) is not None:
                _DEGRADED.inc()
            return rows

        return self._server.reads.submit(run)

    # -- writes ------------------------------------------------------------

    def insert(self, table_name: str, row: dict,
               timeout_ms: Optional[float] = None) -> None:
        """Durably insert one row; returns after the row's group-commit
        batch is fsynced and published (so this session — and any new
        snapshot — sees it)."""
        self._apply_write(table_name, lambda table: [row], timeout_ms)

    def insert_many(self, table_name: str, rows: Sequence[dict],
                    timeout_ms: Optional[float] = None) -> None:
        """Durably insert a batch as one commit (single fsync)."""
        rows = list(rows)
        if rows:
            self._apply_write(table_name, lambda table: rows, timeout_ms)

    def _apply_write(self, table_name: str,
                     rows_for: Callable[[DurableTable], Sequence[dict]],
                     timeout_ms: Optional[float]) -> None:
        self._live()
        _WRITES.inc()
        table = self._server.db.table(table_name)
        if not isinstance(table, DurableTable):
            # transient tables have no durability to wait for; mutate
            # them on the write lane for the same serialization
            future = self._server.writes.submit(
                lambda: [table.insert(row) for row in rows_for(table)])
            self._wait_write(future, timeout_ms)
            return
        future = self._server.writes.submit(
            lambda: self._server.durable_insert(table, rows_for(table)))
        self._wait_write(future, timeout_ms)
        self._advance_pin(table_name, table)

    @staticmethod
    def _wait_write(future: Future, timeout_ms: Optional[float]) -> None:
        if timeout_ms is None:
            future.result()
            return
        try:
            future.result(timeout=timeout_ms / 1000.0)
        except TimeoutError:
            # the write itself still lands (durability is not revoked);
            # only this acknowledgement wait gave up
            _TIMEOUTS.inc()
            raise QueryTimeout(
                "write acknowledgement deadline exceeded",
                timeout_ms) from None

    # -- lifecycle ---------------------------------------------------------

    def _live(self) -> None:
        if self._closed or self._server.closed:
            raise SessionClosed("session is closed")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for cursor in self._cursors:
            cursor.cancel()
        self._pins.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()


class Server:
    """The concurrent front-end over one embedded database.

    Owns the two admission lanes and the write lock, and switches every
    durable table's commit pipeline into threaded (leader-upstairs)
    mode so group commit batches across sessions."""

    def __init__(self, db: Database, read_workers: int = 4,
                 write_workers: int = 4, queue_limit: int = 64,
                 on_shard_failure: str = "fail") -> None:
        if on_shard_failure not in ("fail", "partial"):
            raise ValueError(
                f"on_shard_failure must be 'fail' or 'partial', got "
                f"{on_shard_failure!r}")
        self.db = db
        #: server-wide default shard-failure policy; sessions inherit it
        #: and statements may override per call
        self.on_shard_failure = on_shard_failure
        self.reads = AdmissionController("read", workers=read_workers,
                                         queue_limit=queue_limit)
        self.writes = AdmissionController("write", workers=write_workers,
                                          queue_limit=queue_limit)
        # serializes heap/index mutation across write workers; the
        # durability wait happens OUTSIDE it (see durable_insert)
        self._write_lock = _locks.make_lock("serve.write")
        self._closed = False
        for name in db.tables():
            table = db.table(name)
            if isinstance(table, DurableTable):
                table.store.pipeline.start_thread()

    @property
    def closed(self) -> bool:
        return self._closed

    def session(self) -> Session:
        if self._closed:
            raise SessionClosed("server is closed")
        return Session(self)

    def durable_insert(self, table: DurableTable,
                       rows: Sequence[dict]) -> int:
        """Write-lane body: stage every row's heap/index mutation under
        the write lock, then wait for durability with **no lock held**.
        Concurrent write workers therefore overlap their fsync waits,
        and the commit pipeline's leader folds them into one batch."""
        with _trace.span("serve.write", table=table.name,
                         rows=len(rows)):
            handles = []
            with self._write_lock:
                for row in rows:
                    handles.append(table.insert_pending(row))
            pipeline = table.store.pipeline
            for handle in handles:
                pipeline.wait(handle)
        return len(rows)

    def close(self) -> None:
        """Stop admitting, drain both lanes, and shut them down.  The
        database (and its stores) stay open — closing them is their
        owner's job, typically after this returns."""
        if self._closed:
            return
        self._closed = True
        self.reads.close()
        self.writes.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()
