"""Concurrent serving layer: sessions, cursors, admission control.

``repro.serve`` turns the embedded engine into a multi-client front-end
with the guarantees the paper's serving story needs:

* snapshot-isolated reads — each :class:`~repro.serve.session.Session`
  pins consistent :class:`~repro.storage.store.StoreSnapshot` versions,
  so scans never observe a partially published commit batch;
* acknowledged writes riding the group-commit WAL — many sessions'
  commits share one fsync;
* graceful degradation — a bounded admission queue sheds excess load
  with typed :class:`~repro.errors.Overloaded` errors, and per-query
  deadlines abort cooperatively with
  :class:`~repro.errors.QueryTimeout` / :class:`~repro.errors.Cancelled`.
"""

from repro.serve.admission import AdmissionController
from repro.serve.session import CancelToken, Cursor, Server, Session

__all__ = [
    "AdmissionController",
    "CancelToken",
    "Cursor",
    "Server",
    "Session",
]
