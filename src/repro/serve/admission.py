"""Bounded admission control: a queue with a hard depth limit in front
of a small worker pool.

Every request the serving layer executes — read queries and write
statements alike — passes through an :class:`AdmissionController`.  The
controller's one job is graceful degradation: when the system is
saturated, new work is refused *immediately* with a typed
:class:`~repro.errors.Overloaded` error instead of being queued without
bound (which would turn overload into unbounded latency for every
admitted request and, eventually, memory exhaustion).

Design points:

* **bounded queue** — ``queue_limit`` caps the number of requests
  waiting for a worker; submissions beyond it are shed synchronously in
  the caller's thread, before any execution resource is consumed.
* **typed futures** — :meth:`submit` returns a
  :class:`concurrent.futures.Future`, which is both the thread-blocking
  wait primitive and the asyncio bridge (``asyncio.wrap_future``), so
  one execution path serves synchronous and event-loop callers.
* **observable** — queue wait is a histogram, sheds are a counter, and
  current depth a gauge, all in the unified metrics registry; the
  concurrency benchmark and CI smoke job read them straight out of
  ``snapshot_metrics()``.

Lock order: the controller's condition is a leaf — task callables run
with no controller lock held, so whatever locks they take (the store
lock, the commit pipeline's condition) never nest inside it.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.errors import Overloaded, SessionClosed
from repro.obs import locks as _locks
from repro.obs import metrics as _metrics
from repro.obs.trace import monotonic

__all__ = ["AdmissionController"]

#: queue-depth histogram boundaries (requests waiting at admission time)
_DEPTH_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128)


class AdmissionController:
    """A bounded work queue drained by a fixed pool of daemon workers.

    ``name`` scopes the metrics (``serve.<name>.*``) so the read lane
    and the write lane report separately.
    """

    def __init__(self, name: str, workers: int = 4,
                 queue_limit: int = 64) -> None:
        if workers < 1:
            raise ValueError(
                f"admission controller {name!r} needs at least one worker")
        if queue_limit < 1:
            raise ValueError(
                f"admission controller {name!r} needs a positive queue limit")
        self.name = name
        self.queue_limit = queue_limit
        self._cond = threading.Condition(
            _locks.make_lock(f"serve.admission.{name}"))
        #: queued (task, future, enqueued_at)  # guarded-by: _cond
        self._queue: Deque[Tuple[Callable[[], Any], Future, float]] = deque()
        self._closed = False   # guarded-by: _cond
        self._active = 0       # workers currently running a task  # guarded-by: _cond
        self._wait_ms = _metrics.histogram(f"serve.{name}.queue_wait_ms")
        self._depth = _metrics.histogram(f"serve.{name}.queue_depth",
                                         _DEPTH_BUCKETS)
        self._shed = _metrics.counter(f"serve.{name}.shed")
        self._admitted = _metrics.counter(f"serve.{name}.admitted")
        self._threads: List[threading.Thread] = []
        for index in range(workers):
            thread = threading.Thread(
                target=self._run, name=f"repro-serve-{name}-{index}",
                daemon=True)
            thread.start()
            self._threads.append(thread)

    # -- submission --------------------------------------------------------

    def submit(self, task: Callable[[], Any]) -> "Future[Any]":
        """Admit ``task`` or shed it.

        Returns a future resolving to the task's result (or raising its
        exception).  Raises :class:`~repro.errors.Overloaded`
        synchronously when the queue is at its limit and
        :class:`~repro.errors.SessionClosed` after :meth:`close`.
        """
        future: Future = Future()
        with self._cond:
            if self._closed:
                raise SessionClosed(
                    f"admission controller {self.name!r} is closed")
            depth = len(self._queue)
            if depth >= self.queue_limit:
                self._shed.inc()
                raise Overloaded(
                    f"{self.name} lane saturated, request shed",
                    depth, self.queue_limit)
            self._depth.observe(depth)
            self._queue.append((task, future, monotonic()))
            self._cond.notify()
        self._admitted.inc()
        return future

    @property
    def depth(self) -> int:
        """Current queue depth (racy read; for tests and dashboards)."""
        return len(self._queue)

    # -- worker loop -------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                task, future, enqueued = self._queue.popleft()
                self._active += 1
            self._wait_ms.observe((monotonic() - enqueued) * 1000.0)
            try:
                # a future cancelled while queued never runs
                if future.set_running_or_notify_cancel():
                    try:
                        result = task()
                    except BaseException as error:  # lint: ignore[broad-except] the worker must survive any task failure; the error is delivered to the caller through the future
                        future.set_exception(error)
                    else:
                        future.set_result(result)
            finally:
                with self._cond:
                    self._active -= 1
                    self._cond.notify_all()

    # -- shutdown ----------------------------------------------------------

    def drain(self) -> None:
        """Block until the queue is empty and no task is running."""
        with self._cond:
            while self._queue or self._active:
                self._cond.wait()

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop admitting work, fail everything still queued with
        :class:`~repro.errors.SessionClosed`, and join the workers.
        In-flight tasks finish; queued-but-unstarted ones never run."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            abandoned = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
        for _, future, _ in abandoned:
            if future.set_running_or_notify_cancel():
                future.set_exception(SessionClosed(
                    f"admission controller {self.name!r} closed while "
                    f"the request was queued"))
        for thread in self._threads:
            thread.join(timeout=timeout)
