"""repro.obs — zero-dependency observability: tracing, metrics, profiling.

The paper's claims are *measured* claims — who wins, by what factor,
where the crossover falls — so the engine carries a first-class
observability layer instead of ad-hoc timers:

* :mod:`repro.obs.trace` — a contextvar-based tracer with nestable spans
  (query → operator → OSON navigate / WAL append), wall-time and metric
  deltas per span, ring-buffered in memory and exportable as
  schema-validated JSON.  ``set_tracing_enabled()`` is the kill switch;
  the disabled path is benchmarked under 2% overhead on the Figure 3
  suite (``benchmarks/test_obs_overhead.py``).
* :mod:`repro.obs.metrics` — the unified metrics registry (counters,
  gauges, fixed-bucket histograms).  The cache hit/miss registry of
  :mod:`repro.core.counters` feeds the same export through a provider
  hook, so one snapshot covers every subsystem.
* :mod:`repro.obs.schema` — the published JSON schema for trace and
  metrics exports plus a dependency-free validator.

Layering: this package sits *below* everything else — it imports only
the standard library, so every subsystem (core, storage, engine) can
instrument itself without cycles.  Instrumented modules must not call
``time.*`` directly (lint rule ``direct-time``); they use
:func:`repro.obs.monotonic` so the clock discipline stays in one place.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    counter,
    gauge,
    histogram,
    register_provider,
    snapshot_metrics,
)
from repro.obs.trace import (
    Span,
    current_span,
    export_traces,
    monotonic,
    set_tracing_enabled,
    span,
    take_spans,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "counter",
    "current_span",
    "export_traces",
    "gauge",
    "histogram",
    "monotonic",
    "register_provider",
    "set_tracing_enabled",
    "snapshot_metrics",
    "span",
    "take_spans",
    "tracing_enabled",
]
