"""Published JSON schemas for obs exports, with a zero-dep validator.

The trace and metrics export formats are part of the project's public
surface: CI uploads them as artifacts, EXPERIMENTS.md tells readers how
to line them up with ``BENCH_results.json``, and future sharding/async
PRs report through the same shapes.  The schemas below are ordinary
JSON-Schema documents (draft-07 subset); :func:`validate` implements
exactly the subset the schemas use — ``type``, ``required``,
``properties``, ``additionalProperties``, ``items``, ``enum``,
``minimum`` — so no third-party dependency is needed.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = [
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "validate",
    "validate_metrics_export",
    "validate_trace_export",
]

_SPAN_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["span_id", "name", "elapsed_ms"],
    "properties": {
        "span_id": {"type": "integer", "minimum": 1},
        "name": {"type": "string"},
        "elapsed_ms": {"type": "number", "minimum": 0},
        "attrs": {"type": "object"},
        "counters": {
            "type": "object",
            "additionalProperties": {"type": "number"},
        },
        "children": {"type": "array", "items": {"$ref": "#span"}},
        "dropped_children": {"type": "integer", "minimum": 1},
    },
    "additionalProperties": False,
}

TRACE_SCHEMA: Dict[str, Any] = {
    "$id": "repro.obs.trace/v1",
    "type": "object",
    "required": ["schema", "spans"],
    "properties": {
        "schema": {"enum": ["repro.obs.trace/v1"]},
        "spans": {"type": "array", "items": {"$ref": "#span"}},
    },
    "additionalProperties": False,
    "definitions": {"span": _SPAN_SCHEMA},
}

_INSTRUMENT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["type"],
    "properties": {
        "type": {"enum": ["counter", "gauge", "histogram"]},
        "value": {"type": "number"},
        "boundaries": {"type": "array", "items": {"type": "number"}},
        "counts": {"type": "array", "items": {"type": "integer"}},
        "sum": {"type": "number"},
        "count": {"type": "integer", "minimum": 0},
    },
    "additionalProperties": False,
}

METRICS_SCHEMA: Dict[str, Any] = {
    "$id": "repro.obs.metrics/v1",
    "type": "object",
    "required": ["schema", "metrics"],
    "properties": {
        "schema": {"enum": ["repro.obs.metrics/v1"]},
        "metrics": {
            "type": "object",
            "additionalProperties": {"$ref": "#instrument"},
        },
        "providers": {"type": "object"},
    },
    "additionalProperties": False,
    "definitions": {"instrument": _INSTRUMENT_SCHEMA},
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}

#: internal ``$ref`` targets: "#name" -> schema fragment
_REFS = {
    "#span": _SPAN_SCHEMA,
    "#instrument": _INSTRUMENT_SCHEMA,
}


def validate(value: Any, schema: Dict[str, Any],
             path: str = "$") -> List[str]:
    """Validate ``value`` against the supported JSON-Schema subset.

    Returns a list of human-readable problems (empty = valid); never
    raises on malformed input, mirroring the verifier contract of
    :mod:`repro.analysis`.
    """
    problems: List[str] = []
    ref = schema.get("$ref")
    if ref is not None:
        target = _REFS.get(ref)
        if target is None:
            return [f"{path}: unresolvable $ref {ref!r}"]
        return validate(value, target, path)
    if "enum" in schema:
        if value not in schema["enum"]:
            problems.append(f"{path}: {value!r} not in {schema['enum']}")
        return problems
    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        if not isinstance(value, python_type) or (
                expected in ("integer", "number")
                and isinstance(value, bool)):
            problems.append(
                f"{path}: expected {expected}, got {type(value).__name__}")
            return problems
    minimum = schema.get("minimum")
    if minimum is not None and isinstance(value, (int, float)) \
            and value < minimum:
        problems.append(f"{path}: {value} below minimum {minimum}")
    if isinstance(value, dict):
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties")
        for name in schema.get("required", ()):
            if name not in value:
                problems.append(f"{path}: missing required key {name!r}")
        for key, item in value.items():
            if key in properties:
                problems.extend(validate(item, properties[key],
                                         f"{path}.{key}"))
            elif additional is False:
                problems.append(f"{path}: unexpected key {key!r}")
            elif isinstance(additional, dict):
                problems.extend(validate(item, additional,
                                         f"{path}.{key}"))
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            problems.extend(validate(item, schema["items"],
                                     f"{path}[{index}]"))
    return problems


def validate_trace_export(payload: Any) -> List[str]:
    """Problems in a :func:`repro.obs.trace.export_traces` payload."""
    return validate(payload, TRACE_SCHEMA)


def validate_metrics_export(payload: Any) -> List[str]:
    """Problems in a :func:`repro.obs.metrics.snapshot_metrics` payload."""
    return validate(payload, METRICS_SCHEMA)
