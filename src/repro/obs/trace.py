"""Contextvar-based tracer: nestable spans with a hard kill switch.

A :class:`Span` measures one unit of engine work — a query, one operator
stage, an OSON navigation, a WAL commit.  Spans nest through a
``contextvars.ContextVar``, so worker threads and generators attach
children to the right parent without any explicit plumbing; a span
opened with no live parent becomes a *root* span and lands in the
bounded in-memory ring buffer when it closes.

The tracer is **off by default** (enable with ``REPRO_TRACE=1`` or
:func:`set_tracing_enabled`).  When off, :func:`span` returns a shared
no-op context manager — no allocation, no clock read, no contextvar
write.  ``benchmarks/test_obs_overhead.py`` holds the disabled path
under 2% of the Figure 3 suite's runtime; treat that gate as part of
this module's contract when adding instrumentation points.

Span trees can be large (a traced OLAP query navigates thousands of
documents), so every span caps its recorded children at
:data:`MAX_CHILDREN` and counts the overflow in ``dropped`` instead of
growing without bound.  Exports validate against
:data:`repro.obs.schema.TRACE_SCHEMA`.
"""

from __future__ import annotations

import itertools
import os
import time
from collections import deque
from contextvars import ContextVar
from typing import Any, Dict, List, Optional

from repro.obs import locks as _locks

__all__ = [
    "MAX_CHILDREN",
    "Span",
    "current_span",
    "export_traces",
    "monotonic",
    "set_tracing_enabled",
    "span",
    "take_spans",
    "tracing_enabled",
]

#: the project clock.  Instrumented modules are lint-forbidden from
#: calling ``time.*`` directly (rule ``direct-time``); they import this.
monotonic = time.perf_counter

#: recorded children per span before overflow counting kicks in
MAX_CHILDREN = 256

#: completed root spans retained in memory
RING_SIZE = 256

_enabled = os.environ.get("REPRO_TRACE", "") not in ("", "0", "false")

_CURRENT: ContextVar[Optional["Span"]] = ContextVar("repro_obs_span",
                                                    default=None)

_ids = itertools.count(1)

_RING_LOCK = _locks.make_lock("obs.trace.ring")

#: completed root spans  # guarded-by: _RING_LOCK
_RING: deque = deque(maxlen=RING_SIZE)

#: serializes child attachment on span close.  Worker threads that run
#: under a copied context share one parent Span object, so the
#: child-cap check-then-append (and the ``dropped`` tally) race without
#: it.  Module-level because the parent is reached through a local
#: alias; contention is nil — tracing is off by default and attach is
#: a few list ops.
_ATTACH_LOCK = _locks.make_lock("obs.trace.attach")


def set_tracing_enabled(enabled: bool) -> bool:
    """Flip the tracer kill switch; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def tracing_enabled() -> bool:
    return _enabled


class Span:
    """One timed unit of work.  Use via :func:`span`::

        with span("query", source="po_oson") as s:
            ...
            s.record("rows_out", count)

    ``elapsed_ms`` is valid after the ``with`` block exits.  ``counters``
    holds named numeric deltas attached by instrumentation (cache
    hits/misses around an operator, rows in/out, bytes appended).
    """

    __slots__ = ("span_id", "name", "attrs", "counters", "children",
                 "dropped", "elapsed_ms", "_start", "_token")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None
                 ) -> None:
        self.span_id = next(_ids)
        self.name = name
        self.attrs = attrs or {}
        self.counters: Dict[str, float] = {}
        self.children: List["Span"] = []  # guarded-by: _ATTACH_LOCK
        self.dropped = 0                  # guarded-by: _ATTACH_LOCK
        self.elapsed_ms: Optional[float] = None
        self._start: float = 0.0
        self._token = None

    def record(self, name: str, value: float) -> None:
        """Attach (accumulating) one named counter delta to this span."""
        self.counters[name] = self.counters.get(name, 0) + value

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        self._start = monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed_ms = (monotonic() - self._start) * 1000.0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        token = self._token
        self._token = None
        parent = token.old_value if token is not None else None
        if token is not None:
            _CURRENT.reset(token)
        if isinstance(parent, Span):
            with _ATTACH_LOCK:
                if len(parent.children) < MAX_CHILDREN:
                    parent.children.append(self)
                else:
                    parent.dropped += 1
        else:
            with _RING_LOCK:
                _RING.append(self)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "span_id": self.span_id,
            "name": self.name,
            "elapsed_ms": self.elapsed_ms,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        if self.dropped:
            out["dropped_children"] = self.dropped
        return out

    def __repr__(self) -> str:
        timing = (f"{self.elapsed_ms:.3f}ms" if self.elapsed_ms is not None
                  else "open")
        return f"Span({self.name!r}, {timing}, children={len(self.children)})"


class _NoopSpan:
    """Shared do-nothing span for the disabled path.

    ``__enter__``/``__exit__``/``record`` are all empty-bodied; the whole
    cost of a disabled instrumentation point is one module-attribute
    check plus entering this context manager.
    """

    __slots__ = ()
    elapsed_ms = None
    counters: Dict[str, float] = {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def record(self, name: str, value: float) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        return None


NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs: Any):
    """Open a span (or the shared no-op when tracing is disabled)."""
    if not _enabled:
        return NOOP_SPAN
    return Span(name, attrs or None)


def current_span():
    """The innermost live span (no-op singleton when none / disabled).

    Leaf instrumentation that only wants to bump a counter on whatever
    span is open uses this instead of opening its own span.
    """
    if not _enabled:
        return NOOP_SPAN
    live = _CURRENT.get()
    return live if live is not None else NOOP_SPAN


def take_spans() -> List[Span]:
    """Drain and return the completed root spans (oldest first)."""
    with _RING_LOCK:
        spans = list(_RING)
        _RING.clear()
    return spans


def peek_spans() -> List[Span]:
    """The completed root spans without draining the ring."""
    with _RING_LOCK:
        return list(_RING)


def export_traces(drain: bool = True) -> Dict[str, Any]:
    """JSON-ready export of the ring buffer's completed root spans."""
    spans = take_spans() if drain else peek_spans()
    return {
        "schema": "repro.obs.trace/v1",
        "spans": [s.to_dict() for s in spans],
    }
