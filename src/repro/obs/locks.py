"""Runtime lock sanitizer: an instrumented ``threading.Lock`` factory.

Every lock in the instrumented subsystems (:mod:`repro.core.counters`,
:mod:`repro.obs`, :mod:`repro.storage`) is created through
:func:`make_lock` / :func:`make_rlock` instead of ``threading.Lock()``.
With the sanitizer disabled (the default) the factory returns the plain
``threading`` primitive — zero overhead, byte-for-byte the old
behaviour.  With it enabled (``REPRO_SANITIZE=1`` in the environment,
or :func:`set_sanitizer_enabled` before the lock is created) the
factory returns a :class:`SanitizedLock` that records, per thread:

* the **acquisition stack** — which sanitized locks this thread holds,
  and where each was acquired (``file:line`` of the acquiring frame);
* **cross-thread order edges** — acquiring ``B`` while holding ``A``
  records the edge ``A -> B``; a later acquisition of ``A`` under ``B``
  (by *any* thread, no actual deadlock required) is a **lock-order
  inversion** and produces a report with both witness locations;
* **blocking I/O under a lock** — :func:`note_blocking_io` is called
  from the storage layer's fsync paths; holding any sanitized lock not
  created with ``allow_io=True`` across it is reported (no product
  lock is exempted: since group commit, every store fsync runs on the
  commit pipeline's leader with no lock held);
* **suspiciously long hold times** — a release after more than
  :func:`hold_threshold_ms` milliseconds is reported with the hold
  duration and the acquiring location.

Findings accumulate in an in-process registry exported by
:func:`report` (JSON-ready, ``repro.obs.locksan/v1``) and folded into
the unified metrics export as the ``lock_sanitizer`` provider section
of :func:`repro.obs.metrics.snapshot_metrics`.  The pytest session
hook in ``tests/conftest.py`` writes the report to
``SANITIZER_report.json`` when the env flag is set, which CI uploads
as an artifact.

Layering: this module sits at the very bottom of the stack — it
imports only the standard library, so ``repro.obs.metrics`` and
``repro.obs.trace`` can create their own locks through it without a
cycle (metrics registers the provider section itself, after its import
completes).  The public facade for tooling and tests is
:mod:`repro.analysis.concurrency.sanitizer`, which re-exports this
module's surface.

Enabling the sanitizer only affects locks created *afterwards*: locks
already handed out as plain primitives stay plain.  The env flag is
read at import time, so ``REPRO_SANITIZE=1 pytest`` wraps every lock
in the process.
"""

from __future__ import annotations

import os
import sys
import threading
import time
import traceback
from typing import Any, Dict, List, Tuple

__all__ = [
    "SanitizedLock",
    "guarded_by",
    "hold_threshold_ms",
    "make_lock",
    "make_rlock",
    "note_blocking_io",
    "report",
    "reset",
    "sanitizer_enabled",
    "sanitizer_provider",
    "set_hold_threshold_ms",
    "set_sanitizer_enabled",
]

#: reports retained in memory before overflow counting kicks in
MAX_REPORTS = 200

_enabled = os.environ.get("REPRO_SANITIZE", "") not in ("", "0", "false")

_hold_threshold_ms = float(os.environ.get("REPRO_SANITIZE_HOLD_MS", "50"))

#: per-thread acquisition stack of live (SanitizedLock, t_acquire,
#: "file:line") records — thread-confined, so no locking needed
_TLS = threading.local()

#: guards the shared findings state below.  Deliberately a *raw*
#: threading.Lock: the sanitizer must never instrument itself.
_STATE_LOCK = threading.Lock()

#: sanitized locks ever created, in creation order  # guarded-by: _STATE_LOCK
_LOCKS: List["SanitizedLock"] = []

#: observed acquired-before relation: (first, second) lock names ->
#: "file:line" witness of the second acquisition  # guarded-by: _STATE_LOCK
_EDGES: Dict[Tuple[str, str], str] = {}

#: detailed findings (bounded at MAX_REPORTS)  # guarded-by: _STATE_LOCK
_REPORTS: List[Dict[str, Any]] = []

#: tallies: kind -> count (counts keep growing past the report cap)
#: # guarded-by: _STATE_LOCK
_COUNTS: Dict[str, int] = {}


def set_sanitizer_enabled(enabled: bool) -> bool:
    """Flip the sanitizer switch; returns the previous state.

    Only locks created *after* enabling are sanitized — existing plain
    locks are not retrofitted.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def sanitizer_enabled() -> bool:
    return _enabled


def set_hold_threshold_ms(threshold: float) -> float:
    """Set the long-hold reporting threshold; returns the previous one."""
    global _hold_threshold_ms
    previous = _hold_threshold_ms
    _hold_threshold_ms = float(threshold)
    return previous


def hold_threshold_ms() -> float:
    return _hold_threshold_ms


def make_lock(name: str, allow_io: bool = False):
    """A named mutex: plain ``threading.Lock`` unless sanitizing.

    ``allow_io=True`` documents that this lock intentionally covers
    blocking I/O (fsync) and exempts it from the io-under-lock check.
    """
    if not _enabled:
        return threading.Lock()
    return SanitizedLock(name, threading.Lock(), reentrant=False,
                         allow_io=allow_io)


def make_rlock(name: str, allow_io: bool = False):
    """A named reentrant mutex: plain ``threading.RLock`` unless
    sanitizing."""
    if not _enabled:
        return threading.RLock()
    return SanitizedLock(name, threading.RLock(), reentrant=True,
                         allow_io=allow_io)


def guarded_by(*locknames: str):
    """Declare that the decorated function runs with the named lock(s)
    held by every caller.

    A no-op at runtime; the static concurrency pass
    (:mod:`repro.analysis.concurrency`) treats the locks as held for
    the whole body, and the lock-order graph adds edges from them to
    any lock acquired inside.  Lives here, at the bottom of the stack,
    so product code can annotate internal helpers without importing
    the lint engine.
    """

    def decorate(func):
        func.__guarded_by__ = locknames
        return func

    return decorate


def _held_stack() -> List[List[Any]]:
    stack = getattr(_TLS, "held", None)
    if stack is None:
        stack = []
        _TLS.held = stack
    return stack


def _caller_location(depth: int) -> str:
    """``file:line`` of the frame ``depth`` levels above the caller."""
    try:
        frame = sys._getframe(depth + 1)
    except ValueError:
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


def _record(kind: str, detail: Dict[str, Any]) -> None:
    entry = dict(detail)
    entry["kind"] = kind
    entry["thread"] = threading.current_thread().name
    entry["stack"] = traceback.format_stack(limit=8)[:-2]
    with _STATE_LOCK:
        _COUNTS[kind] = _COUNTS.get(kind, 0) + 1
        if len(_REPORTS) < MAX_REPORTS:
            _REPORTS.append(entry)
        else:
            _COUNTS["dropped-reports"] = _COUNTS.get("dropped-reports", 0) + 1


class SanitizedLock:
    """A ``threading.Lock``/``RLock`` wrapper that feeds the sanitizer.

    Exposes the primitive's surface (``acquire``/``release``/context
    manager/``locked``) so it drops into any ``with self._lock:`` site
    unchanged.  Per-instance tallies (acquisitions, max hold) are
    mutated only while the lock itself is held, so they need no extra
    synchronization; cross-lock state goes through the module registry.
    """

    __slots__ = ("name", "allow_io", "reentrant", "acquisitions",
                 "max_hold_ms", "_inner", "_depth")

    def __init__(self, name: str, inner: Any, reentrant: bool,
                 allow_io: bool) -> None:
        self.name = name
        self.allow_io = allow_io
        self.reentrant = reentrant
        self.acquisitions = 0
        self.max_hold_ms = 0.0
        self._inner = inner
        self._depth = 0  # reentrant depth; only the holder mutates it
        with _STATE_LOCK:
            _LOCKS.append(self)

    # -- the lock surface --------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._on_acquired(_caller_location(1))
        return acquired

    def release(self) -> None:
        self._on_release()
        self._inner.release()

    def __enter__(self) -> "SanitizedLock":
        self._inner.acquire()
        self._on_acquired(_caller_location(1))
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._on_release()
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __repr__(self) -> str:
        return (f"SanitizedLock({self.name!r}, "
                f"acquisitions={self.acquisitions})")

    # -- bookkeeping -------------------------------------------------------

    def _on_acquired(self, location: str) -> None:
        if self.reentrant and self._depth:
            # reentrant re-acquire: already on this thread's stack;
            # recording another frame would fake self-ordering edges
            self._depth += 1
            return
        self._depth += 1
        self.acquisitions += 1
        held = _held_stack()
        for outer_entry in held:
            self._note_edge(outer_entry[0], outer_entry[2], location)
        held.append([self, time.perf_counter(), location])

    def _note_edge(self, outer: "SanitizedLock", outer_location: str,
                   location: str) -> None:
        edge = (outer.name, self.name)
        if edge not in _EDGES:  # lock-free fast path for known edges
            with _STATE_LOCK:
                _EDGES.setdefault(edge, location)
        reverse = _EDGES.get((self.name, outer.name))
        if reverse is not None and outer.name != self.name:
            _record("lock-order-inversion", {
                "first": outer.name,
                "second": self.name,
                "held_at": outer_location,
                "acquired_at": location,
                "reverse_witness": reverse,
            })

    def _on_release(self) -> None:
        if self.reentrant and self._depth > 1:
            self._depth -= 1
            return
        self._depth = 0
        held = _held_stack()
        for index in range(len(held) - 1, -1, -1):
            entry = held[index]
            if entry[0] is self:
                del held[index]
                held_ms = (time.perf_counter() - entry[1]) * 1000.0
                if held_ms > self.max_hold_ms:
                    self.max_hold_ms = held_ms
                if held_ms > _hold_threshold_ms:
                    _record("long-hold", {
                        "lock": self.name,
                        "held_ms": round(held_ms, 3),
                        "acquired_at": entry[2],
                    })
                return
        # release without a matching acquire record: acquire() raced a
        # mid-run enable, or the lock was handed across threads
        _record("unmatched-release", {"lock": self.name})


def note_blocking_io(kind: str) -> None:
    """Hook called from blocking-I/O sites (storage fsync paths).

    Reports every sanitized, non-exempt lock the current thread holds
    across the call.  A no-op when the sanitizer is disabled.
    """
    if not _enabled:
        return
    held = getattr(_TLS, "held", None)
    if not held:
        return
    location = _caller_location(1)
    for entry in held:
        lock = entry[0]
        if not lock.allow_io:
            _record("io-under-lock", {
                "lock": lock.name,
                "io": kind,
                "held_at": entry[2],
                "io_at": location,
            })


def report() -> Dict[str, Any]:
    """JSON-ready sanitizer findings (schema ``repro.obs.locksan/v1``)."""
    with _STATE_LOCK:
        locks = list(_LOCKS)
        edges = dict(_EDGES)
        findings = [dict(entry) for entry in _REPORTS]
        counts = dict(_COUNTS)
    per_lock: Dict[str, Dict[str, Any]] = {}
    for lock in locks:
        stats = per_lock.setdefault(lock.name, {"acquisitions": 0,
                                                "max_hold_ms": 0.0,
                                                "allow_io": lock.allow_io})
        stats["acquisitions"] += lock.acquisitions
        stats["max_hold_ms"] = round(
            max(stats["max_hold_ms"], lock.max_hold_ms), 3)
    return {
        "schema": "repro.obs.locksan/v1",
        "enabled": _enabled,
        "hold_threshold_ms": _hold_threshold_ms,
        "counts": counts,
        "locks": per_lock,
        "order_edges": [{"first": first, "second": second,
                         "witness": witness}
                        for (first, second), witness in sorted(edges.items())],
        "reports": findings,
    }


def sanitizer_provider() -> Dict[str, Any]:
    """The ``lock_sanitizer`` section of the unified metrics export.

    Kept to the summary tallies — the full per-finding detail stays in
    :func:`report` so metrics snapshots remain small.
    """
    if not _enabled:
        return {"enabled": False}
    with _STATE_LOCK:
        counts = dict(_COUNTS)
        tracked = len(_LOCKS)
        edge_count = len(_EDGES)
    return {"enabled": True, "counts": counts, "locks_tracked": tracked,
            "order_edges": edge_count}


def reset() -> None:
    """Drop all findings and per-lock tallies (test isolation hook)."""
    with _STATE_LOCK:
        _EDGES.clear()
        _REPORTS.clear()
        _COUNTS.clear()
        for lock in _LOCKS:
            lock.acquisitions = 0
            lock.max_hold_ms = 0.0
        _LOCKS.clear()
