"""Unified metrics registry: counters, gauges, fixed-bucket histograms.

Every instrumented subsystem registers named instruments here; one
:func:`snapshot_metrics` call produces the complete JSON-ready picture
for ``BENCH_results.json``, the CI artifact, and ``tools/obs``.

Design constraints (they shape the API):

* **thread-safe** — tracing hooks fire from worker threads; registration
  uses a lock around its check-then-insert, increments take a per-
  instrument lock so concurrent updates never lose counts.  Reads of an
  already-registered instrument take the lock-free dict fast path.
* **no wall-clock randomness** — histogram bucket boundaries are fixed
  at registration, so two runs of the same workload land the same
  distribution shape regardless of timer jitter.
* **no dependencies** — importable from the bottom of the stack
  (``repro.core``) without cycles.

The legacy cache registry (:mod:`repro.core.counters`) is unified into
this export through :func:`register_provider`: providers contribute
read-only snapshot sections without migrating their hot-path counters
onto locked instruments.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import locks as _locks

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "counter",
    "gauge",
    "histogram",
    "register_provider",
    "registered_metrics",
    "reset_metrics",
    "snapshot_metrics",
]

#: default histogram boundaries for millisecond durations (upper bounds;
#: a final +inf bucket is implicit).  Fixed here, never derived from
#: observed data — see the module docstring.
DURATION_MS_BUCKETS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0)

#: default boundaries for byte-size distributions
BYTES_BUCKETS: Tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = _locks.make_lock(f"obs.metrics.{name}")
        self._value = 0  # guarded-by: _lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self._value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """A named value that can go up and down (e.g. resident bytes)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = _locks.make_lock(f"obs.metrics.{name}")
        self._value: float = 0  # guarded-by: _lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self._value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self._value})"


class Histogram:
    """A fixed-boundary histogram: counts per bucket plus sum/count.

    ``boundaries`` are inclusive upper bounds in ascending order; one
    extra overflow bucket catches everything above the last boundary.
    Boundaries are fixed at registration so exports are comparable
    across runs.
    """

    __slots__ = ("name", "boundaries", "_lock", "_counts", "_sum", "_count")

    def __init__(self, name: str, boundaries: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name} needs strictly ascending boundaries")
        self.name = name
        self.boundaries = bounds
        self._lock = _locks.make_lock(f"obs.metrics.{name}")
        self._counts = [0] * (len(bounds) + 1)  # guarded-by: _lock
        self._sum = 0.0    # guarded-by: _lock
        self._count = 0    # guarded-by: _lock

    def observe(self, value: float) -> None:
        index = self._bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def _bucket_index(self, value: float) -> int:
        # linear scan: boundary lists are short (<= ~16) and the scan
        # avoids importing bisect machinery on the hot path
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                return i
        return len(self.boundaries)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.boundaries) + 1)
            self._sum = 0.0
            self._count = 0

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total, observed = self._sum, self._count
        return {
            "type": "histogram",
            "boundaries": list(self.boundaries),
            "counts": counts,
            "sum": total,
            "count": observed,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self._count})"


_REGISTRY_LOCK = _locks.make_lock("obs.metrics.registry")

#: registered instruments  # guarded-by: _REGISTRY_LOCK
_INSTRUMENTS: Dict[str, Any] = {}

#: snapshot providers: name -> zero-arg callable returning a JSON-ready
#: dict merged into the export under that section name.  This is how
#: repro.core.counters (cache hit/miss registry) joins the unified
#: export without moving its unlocked hot-path tallies.
# guarded-by: _REGISTRY_LOCK
_PROVIDERS: Dict[str, Callable[[], Dict[str, Any]]] = {}

_KINDS = {"counter": Counter, "gauge": Gauge}


def _get_or_create(name: str, factory: Callable[[], Any],
                   expected: type) -> Any:
    instrument = _INSTRUMENTS.get(name)  # lock-free read fast path
    if instrument is None:
        with _REGISTRY_LOCK:
            instrument = _INSTRUMENTS.get(name)  # re-check under the lock
            if instrument is None:
                instrument = factory()
                _INSTRUMENTS[name] = instrument
    if not isinstance(instrument, expected):
        raise ValueError(
            f"metric {name!r} already registered as "
            f"{type(instrument).__name__}, not {expected.__name__}")
    return instrument


def counter(name: str) -> Counter:
    """The counter registered under ``name`` (created on first use)."""
    return _get_or_create(name, lambda: Counter(name), Counter)


def gauge(name: str) -> Gauge:
    """The gauge registered under ``name`` (created on first use)."""
    return _get_or_create(name, lambda: Gauge(name), Gauge)


def histogram(name: str,
              boundaries: Sequence[float] = DURATION_MS_BUCKETS) -> Histogram:
    """The histogram registered under ``name`` (created on first use).

    ``boundaries`` only applies on first registration; later callers get
    the existing instrument unchanged.
    """
    return _get_or_create(name, lambda: Histogram(name, boundaries),
                          Histogram)


def register_provider(name: str,
                      provider: Callable[[], Dict[str, Any]]) -> None:
    """Attach an external snapshot section to the unified export."""
    with _REGISTRY_LOCK:
        _PROVIDERS[name] = provider


def registered_metrics() -> Iterator[Any]:
    with _REGISTRY_LOCK:
        instruments = list(_INSTRUMENTS.values())
    return iter(instruments)


def snapshot_metrics() -> Dict[str, Any]:
    """One JSON-ready export of every instrument and provider section."""
    with _REGISTRY_LOCK:
        instruments = sorted(_INSTRUMENTS.items())
        providers = list(_PROVIDERS.items())
    out: Dict[str, Any] = {
        "schema": "repro.obs.metrics/v1",
        "metrics": {name: instrument.snapshot()
                    for name, instrument in instruments},
    }
    for name, provider in providers:
        out.setdefault("providers", {})[name] = provider()
    return out


def reset_metrics() -> None:
    """Zero every registered instrument (benchmark harness hook)."""
    for instrument in registered_metrics():
        instrument.reset()


def metric_deltas(before: Dict[str, Any],
                  after: Dict[str, Any]) -> Dict[str, Any]:
    """Per-metric change between two :func:`snapshot_metrics` exports.

    Counters and histograms diff their totals; gauges report the new
    value.  Metrics with no change are omitted, which keeps EXPLAIN
    ANALYZE per-operator annotations readable.
    """
    deltas: Dict[str, Any] = {}
    old = before.get("metrics", {})
    for name, snap in after.get("metrics", {}).items():
        prior = old.get(name)
        if snap["type"] == "counter":
            delta = snap["value"] - (prior or {"value": 0})["value"]
            if delta:
                deltas[name] = delta
        elif snap["type"] == "gauge":
            if prior is None or snap["value"] != prior["value"]:
                deltas[name] = snap["value"]
        else:  # histogram: diff observation count and sum
            prior_count = (prior or {"count": 0})["count"]
            prior_sum = (prior or {"sum": 0.0})["sum"]
            if snap["count"] != prior_count:
                deltas[name] = {"count": snap["count"] - prior_count,
                                "sum": snap["sum"] - prior_sum}
    return deltas


def find_metric(name: str) -> Optional[Any]:
    """The live instrument registered under ``name``, or None."""
    return _INSTRUMENTS.get(name)


def metric_names() -> List[str]:
    with _REGISTRY_LOCK:
        return sorted(_INSTRUMENTS)


# the lock sanitizer's summary joins the unified export; registered
# here (not from repro.obs.locks) so the bottom-of-stack locks module
# keeps its zero-dependency layering
register_provider("lock_sanitizer", _locks.sanitizer_provider)
