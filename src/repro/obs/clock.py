"""The project's sleep discipline: a seeded backoff clock.

Retry paths (scatter workers, the sharded commit path) must never call
``time.sleep`` directly — the ``direct-time`` lint rule enforces it.
Two reasons:

* **Determinism.**  Exponential backoff needs jitter, and jitter from a
  wall-clock or a process-global RNG makes every chaos-sweep failure
  unreproducible.  :class:`BackoffPolicy` derives each delay from
  CRC-32 of ``(seed, key, attempt)`` — the same coordinates the fault
  harness prints — so a failing case replays byte-identically.
* **Observability.**  Sleeping while holding a sanitized lock is a
  bug; routing every product sleep through :func:`sleep` lets the
  runtime lock sanitizer (:func:`repro.obs.locks.note_blocking_io`)
  flag it, and lets tests install a :class:`VirtualClock` so retry
  suites assert *which* delays were requested without actually waiting.

This module may touch :mod:`time` because it lives in ``repro/obs`` —
the one package the clock-discipline lint exempts.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import List

from repro.obs import locks as _locks

__all__ = [
    "BackoffPolicy",
    "SystemClock",
    "VirtualClock",
    "active_clock",
    "fraction",
    "install_clock",
    "now",
    "sleep",
]


class SystemClock:
    """The real thing: ``perf_counter`` time, actual sleeping."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        # a sleep under a sanitized lock is as much a finding as an
        # fsync under one — surface it through the same hook
        _locks.note_blocking_io("sleep")
        time.sleep(seconds)


class VirtualClock:
    """A test clock: sleeping records the request and returns
    immediately, so retry suites assert the exact backoff schedule
    without waiting it out.  ``now()`` stays on the real
    ``perf_counter`` so deadline math against
    :data:`repro.obs.trace.monotonic` keeps one time base."""

    def __init__(self) -> None:
        self.sleeps: List[float] = []

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        _locks.note_blocking_io("sleep")
        self.sleeps.append(seconds)


_ACTIVE = SystemClock()


def active_clock():
    return _ACTIVE


def install_clock(clock) -> object:
    """Swap the process clock (tests); returns the previous one so the
    caller can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = clock
    return previous


def sleep(seconds: float) -> None:
    """The one sanctioned product-code sleep."""
    _ACTIVE.sleep(seconds)


def now() -> float:
    return _ACTIVE.now()


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``delay_ms(key, attempt)`` is a pure function of
    ``(seed, key, attempt)``: the raw delay doubles per attempt (capped
    at ``max_ms``), then shrinks by up to ``jitter`` of itself using a
    CRC-32-derived fraction — decorrelated across keys (shards) so
    retries against different shards do not thunder in phase, yet fully
    reproducible from the seed.
    """

    base_ms: float = 4.0
    multiplier: float = 2.0
    max_ms: float = 100.0
    max_attempts: int = 3
    jitter: float = 0.5
    seed: int = 0

    def delay_ms(self, key: str, attempt: int) -> float:
        raw = min(self.max_ms,
                  self.base_ms * (self.multiplier ** max(0, attempt)))
        if self.jitter <= 0:
            return raw
        digest = zlib.crc32(f"{self.seed}:{key}:{attempt}".encode("utf-8"))
        fraction = (digest % 10_000) / 10_000.0
        return raw * (1.0 - self.jitter * fraction)

    def delays_ms(self, key: str) -> List[float]:
        """The full schedule for one key — what a retry loop that
        exhausts its budget will sleep, in order."""
        return [self.delay_ms(key, attempt)
                for attempt in range(self.max_attempts)]


def fraction(seed: int, key: str, ordinal: int) -> float:
    """A deterministic [0, 1) roll shared by the chaos injector: the
    same coordinates always produce the same decision."""
    digest = zlib.crc32(f"{seed}:{key}:{ordinal}".encode("utf-8"))
    return (digest % 1_000_000) / 1_000_000.0
