"""AST node classes for the SQL/JSON path language.

The grammar we implement is the subset used throughout the paper plus the
standard's filter expressions:

* ``$`` root and ``@`` filter-context item;
* member steps ``.name`` / ``."quoted name"`` / ``.*``;
* array steps ``[n]``, ``[last]``, ``[last-2]``, ``[n to m]``,
  ``[a, b, c to d]``, ``[*]``;
* descendant step ``..name`` (Oracle extension, used by DataGuide tools);
* filters ``?( <expr> )`` with ``&&``, ``||``, ``!``, ``exists()``,
  comparisons and the string predicates ``has substring`` /
  ``starts with``;
* item methods ``.size()``, ``.type()``, ``.count()``, ``.number()``,
  ``.string()``, ``.length()``.

Member-step field names carry a :class:`~repro.core.oson.cache.CompiledFieldName`
so hash ids are computed once at compile time (section 4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.oson.cache import CompiledFieldName

LAX = "lax"
STRICT = "strict"


# ---------------------------------------------------------------- steps


@dataclass(frozen=True)
class MemberStep:
    """``.name`` — navigate to a named child of an object."""

    name: str
    compiled: CompiledFieldName = field(compare=False, hash=False, default=None)

    def __post_init__(self) -> None:
        if self.compiled is None:
            object.__setattr__(self, "compiled", CompiledFieldName(self.name))

    def __str__(self) -> str:
        if self.name.isidentifier():
            return f".{self.name}"
        escaped = self.name.replace("\\", "\\\\").replace('"', '\\"')
        return f'."{escaped}"'


@dataclass(frozen=True)
class WildcardMemberStep:
    """``.*`` — all children of an object."""

    def __str__(self) -> str:
        return ".*"


@dataclass(frozen=True)
class DescendantStep:
    """``..name`` — all descendants with the given field name."""

    name: str
    compiled: CompiledFieldName = field(compare=False, hash=False, default=None)

    def __post_init__(self) -> None:
        if self.compiled is None:
            object.__setattr__(self, "compiled", CompiledFieldName(self.name))

    def __str__(self) -> str:
        return f"..{self.name}"


@dataclass(frozen=True)
class ArrayIndex:
    """One subscript range: ``n``, ``last``, ``last-k`` or ``n to m``.

    ``last_relative`` marks indices counted from the array end: the stored
    value is the subtrahend, i.e. ``last-2`` -> ``ArrayIndex(2, last_relative=True)``.
    """

    start: int
    end: Optional[int] = None          # inclusive, per the SQL standard
    last_relative: bool = False
    end_last_relative: bool = False

    def __str__(self) -> str:
        def fmt(value: int, rel: bool) -> str:
            if not rel:
                return str(value)
            return "last" if value == 0 else f"last-{value}"

        text = fmt(self.start, self.last_relative)
        if self.end is not None:
            text += f" to {fmt(self.end, self.end_last_relative)}"
        return text


@dataclass(frozen=True)
class ArrayStep:
    """``[ ... ]`` — subscripted array access; ``indexes=None`` means ``[*]``."""

    indexes: Optional[tuple[ArrayIndex, ...]] = None  # None => wildcard

    @property
    def is_wildcard(self) -> bool:
        return self.indexes is None

    def __str__(self) -> str:
        if self.is_wildcard:
            return "[*]"
        return "[" + ", ".join(str(i) for i in self.indexes) + "]"


@dataclass(frozen=True)
class FilterStep:
    """``?( expr )`` — keep context items for which the predicate holds."""

    predicate: "BoolExpr"

    def __str__(self) -> str:
        return f"?({self.predicate})"


@dataclass(frozen=True)
class ItemMethodStep:
    """Trailing item method such as ``.size()`` or ``.type()``."""

    method: str

    def __str__(self) -> str:
        return f".{self.method}()"


Step = Union[MemberStep, WildcardMemberStep, DescendantStep, ArrayStep,
             FilterStep, ItemMethodStep]


# ------------------------------------------------------------- predicates


@dataclass(frozen=True)
class Literal:
    """A literal operand inside a filter expression."""

    value: object

    def __str__(self) -> str:
        if self.value is None:
            return "null"
        if self.value is True:
            return "true"
        if self.value is False:
            return "false"
        if isinstance(self.value, str):
            return '"' + self.value.replace("\\", "\\\\").replace('"', '\\"') + '"'
        return str(self.value)


@dataclass(frozen=True)
class RelativePath:
    """``@.a.b[0]`` — a path rooted at the filter's context item."""

    steps: tuple[Step, ...]

    def __str__(self) -> str:
        return "@" + "".join(str(s) for s in self.steps)


Operand = Union[Literal, RelativePath]


@dataclass(frozen=True)
class Comparison:
    """``left op right`` with op in ==, !=, <, <=, >, >=."""

    op: str
    left: Operand
    right: Operand

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class StringPredicate:
    """``@.name has substring "x"`` or ``@.name starts with "x"``."""

    kind: str  # "has_substring" | "starts_with"
    operand: Operand
    needle: str

    def __str__(self) -> str:
        keyword = "has substring" if self.kind == "has_substring" else "starts with"
        return f'{self.operand} {keyword} "{self.needle}"'


@dataclass(frozen=True)
class Exists:
    """``exists(@.a.b)`` — true if the relative path selects anything."""

    path: RelativePath

    def __str__(self) -> str:
        return f"exists({self.path})"


@dataclass(frozen=True)
class And:
    parts: tuple["BoolExpr", ...]

    def __str__(self) -> str:
        return " && ".join(f"({p})" if isinstance(p, Or) else str(p) for p in self.parts)


@dataclass(frozen=True)
class Or:
    parts: tuple["BoolExpr", ...]

    def __str__(self) -> str:
        return " || ".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class Not:
    expr: "BoolExpr"

    def __str__(self) -> str:
        return f"!({self.expr})"


BoolExpr = Union[Comparison, StringPredicate, Exists, And, Or, Not]


# ------------------------------------------------------------------ path


@dataclass(frozen=True)
class JsonPath:
    """A compiled SQL/JSON path expression."""

    steps: tuple[Step, ...]
    mode: str = LAX

    def __str__(self) -> str:
        prefix = "" if self.mode == LAX else "strict "
        return prefix + "$" + "".join(str(s) for s in self.steps)

    @property
    def is_singleton(self) -> bool:
        """True if the path can select at most one item per document in
        strict structural terms: no wildcards, descendants, ranges or
        filters.  Used by AddVC to decide virtual-column eligibility."""
        for step in self.steps:
            if isinstance(step, (WildcardMemberStep, DescendantStep, FilterStep)):
                return False
            if isinstance(step, ArrayStep):
                if step.is_wildcard or len(step.indexes) != 1:
                    return False
                index = step.indexes[0]
                if index.end is not None:
                    return False
        return True
