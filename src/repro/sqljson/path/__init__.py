"""SQL/JSON path language: ``$.purchaseOrder.items[*].price`` and friends."""

from repro.sqljson.path.parser import compile_path, parse_path
from repro.sqljson.path.evaluator import PathEvaluator

__all__ = ["compile_path", "parse_path", "PathEvaluator"]
