"""SQL/JSON path AST -> OSON navigation-program compiler.

:func:`compile_nav` lowers a lax :class:`~repro.sqljson.path.ast.JsonPath`
to the flat opcode form :func:`repro.core.oson.navigate.navigate`
executes straight over the binary image.  Member steps carry their
:class:`~repro.core.oson.cache.CompiledFieldName` (hash precomputed at
parse time), array subscripts are lowered to plain index tuples, and
filter predicates become Python closures over the document's partial-
decode primitives, sharing the comparison kernel of
:mod:`repro.sqljson.path.comparisons` with the DOM evaluator.

Not every path is navigable: strict mode, wildcard member steps (``.*``),
descendant steps (``..name``) and item methods fall back to the DOM
route (``compile_nav`` returns ``None``).  What remains covers the hot
paths of the Figure 3/9 workloads — member chains, subscripts, ``[*]``
un-nesting and comparison/exists filters, including every predicate the
JSON_EXISTS pushdown of section 6.3 renders.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.oson import constants as c
from repro.core.oson.decoder import OsonDocument
from repro.core.oson.navigate import (
    NavProgram,
    OP_FIELD,
    OP_FILTER,
    OP_INDEX,
    OP_WILD,
    navigate,
)
from repro.sqljson.path import ast
from repro.sqljson.path.comparisons import compare

_Pred = Callable[[OsonDocument, int, Any], bool]
_Operand = Callable[[OsonDocument, int, Any], list]


def compile_nav(path: ast.JsonPath) -> Optional[NavProgram]:
    """Compile ``path`` to a navigation program, or ``None`` when the
    path uses a construct the program form does not cover."""
    if path.mode != ast.LAX:
        return None
    ops = _compile_steps(path.steps)
    if ops is None:
        return None
    return NavProgram(ops)


def _compile_steps(steps: tuple) -> Optional[list[tuple]]:
    ops: list[tuple] = []
    for step in steps:
        if isinstance(step, ast.MemberStep):
            ops.append((OP_FIELD, step.compiled))
        elif isinstance(step, ast.ArrayStep):
            if step.is_wildcard:
                ops.append((OP_WILD,))
            else:
                subscripts = tuple(
                    (index.start, index.end,
                     index.last_relative, index.end_last_relative)
                    for index in step.indexes)
                ops.append((OP_INDEX, subscripts))
        elif isinstance(step, ast.FilterStep):
            predicate = _compile_predicate(step.predicate)
            if predicate is None:
                return None
            ops.append((OP_FILTER, predicate))
        else:
            # WildcardMemberStep / DescendantStep / ItemMethodStep:
            # DOM-route only
            return None
    return ops


# ------------------------------------------------------------- predicates


def _compile_predicate(expr: ast.BoolExpr) -> Optional[_Pred]:
    """Compile a filter predicate to ``f(doc, node, resolver) -> bool``,
    mirroring ``evaluator._predicate`` in lax mode exactly."""
    if isinstance(expr, ast.And):
        parts = [_compile_predicate(p) for p in expr.parts]
        if any(p is None for p in parts):
            return None
        return lambda doc, node, resolver: all(
            p(doc, node, resolver) for p in parts)
    if isinstance(expr, ast.Or):
        parts = [_compile_predicate(p) for p in expr.parts]
        if any(p is None for p in parts):
            return None
        return lambda doc, node, resolver: any(
            p(doc, node, resolver) for p in parts)
    if isinstance(expr, ast.Not):
        inner = _compile_predicate(expr.expr)
        if inner is None:
            return None
        return lambda doc, node, resolver: not inner(doc, node, resolver)
    if isinstance(expr, ast.Exists):
        ops = _compile_steps(expr.path.steps)
        if ops is None:
            return None
        program = NavProgram(ops)
        return lambda doc, node, resolver: bool(
            navigate(doc, program, node, resolver))
    if isinstance(expr, ast.Comparison):
        left = _compile_operand(expr.left)
        right = _compile_operand(expr.right)
        if left is None or right is None:
            return None
        op = expr.op

        def comparison(doc: OsonDocument, node: int, resolver: Any) -> bool:
            # existential: true if any (left, right) value pair satisfies
            rights = right(doc, node, resolver)
            if not rights:
                return False
            return any(compare(op, lv, rv)
                       for lv in left(doc, node, resolver)
                       for rv in rights)

        return comparison
    if isinstance(expr, ast.StringPredicate):
        operand = _compile_operand(expr.operand)
        if operand is None:
            return None
        needle = expr.needle
        if expr.kind == "has_substring":
            return lambda doc, node, resolver: any(
                isinstance(v, str) and needle in v
                for v in operand(doc, node, resolver))
        return lambda doc, node, resolver: any(
            isinstance(v, str) and v.startswith(needle)
            for v in operand(doc, node, resolver))
    return None


def _compile_operand(operand: ast.Operand) -> Optional[_Operand]:
    """Compile a comparison operand to ``f(doc, node, resolver) -> values``,
    mirroring ``evaluator._operand_values`` in lax mode: scalars decode,
    arrays unwrap one level of scalar elements, objects contribute
    nothing."""
    if isinstance(operand, ast.Literal):
        values = [operand.value]
        return lambda doc, node, resolver: values
    if not isinstance(operand, ast.RelativePath):
        return None
    ops = _compile_steps(operand.steps)
    if ops is None:
        return None
    program = NavProgram(ops)

    def operand_values(doc: OsonDocument, node: int, resolver: Any) -> list:
        values = []
        for selected in navigate(doc, program, node, resolver):
            node_type = doc.node_type(selected)
            if node_type == c.NODE_SCALAR:
                values.append(doc.scalar_value(selected))
            elif node_type == c.NODE_ARRAY:
                for element in doc.array_elements(selected):
                    if doc.node_type(element) == c.NODE_SCALAR:
                        values.append(doc.scalar_value(element))
        return values

    return operand_values
