"""Recursive-descent parser for the SQL/JSON path language.

``compile_path`` is memoized: inside a query each SQL/JSON operator
compiles its path once and reuses the AST (and the field-name hashes it
carries) across every document — the compile-time optimization of
section 4.2.1.
"""

from __future__ import annotations

from repro.core.counters import BoundedCache
from repro.errors import PathSyntaxError
from repro.sqljson.path import ast
from repro.sqljson.path.lexer import Token, TokenType, tokenize_path


def parse_path(text: str) -> ast.JsonPath:
    """Parse ``text`` into a fresh :class:`~repro.sqljson.path.ast.JsonPath`."""
    return _Parser(tokenize_path(text), text).parse()


#: bounded, instrumented replacement for the old ``lru_cache(4096)``:
#: same capacity, but hit/miss/eviction counters surface through
#: ``repro.core.counters`` alongside every other hot-path cache
_COMPILED = BoundedCache("sqljson.path_parse", maxsize=4096)


def compile_path(text: str) -> ast.JsonPath:
    """Parse with memoization; the cached AST carries precomputed
    field-name hashes, so repeated queries skip both parsing and hashing."""
    path = _COMPILED.get(text)
    if path is None:
        path = parse_path(text)
        _COMPILED.put(text, path)
    return path


class _Parser:
    def __init__(self, tokens: list[Token], source: str) -> None:
        self._tokens = tokens
        self._pos = 0
        self._source = source

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _expect(self, token_type: TokenType) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise PathSyntaxError(
                f"expected {token_type.value!r}, found {token.text or 'end of input'!r}",
                token.position)
        return self._advance()

    def _match_ident(self, word: str) -> bool:
        token = self._peek()
        if token.type is TokenType.IDENT and token.value == word:
            self._advance()
            return True
        return False

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> ast.JsonPath:
        mode = ast.LAX
        if self._match_ident("lax"):
            mode = ast.LAX
        elif self._match_ident("strict"):
            mode = ast.STRICT
        self._expect(TokenType.DOLLAR)
        steps = self._parse_steps()
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise PathSyntaxError(f"unexpected {token.text!r}", token.position)
        return ast.JsonPath(tuple(steps), mode)

    def _parse_steps(self) -> list[ast.Step]:
        steps: list[ast.Step] = []
        while True:
            token = self._peek()
            if token.type is TokenType.DOT:
                self._advance()
                steps.append(self._parse_member())
            elif token.type is TokenType.DOTDOT:
                self._advance()
                name = self._parse_field_name()
                steps.append(ast.DescendantStep(name))
            elif token.type is TokenType.LBRACKET:
                self._advance()
                steps.append(self._parse_subscript())
            elif token.type is TokenType.QUESTION:
                self._advance()
                self._expect(TokenType.LPAREN)
                predicate = self._parse_or()
                self._expect(TokenType.RPAREN)
                steps.append(ast.FilterStep(predicate))
            else:
                return steps

    _ITEM_METHODS = frozenset({"size", "type", "count", "number", "string",
                               "length", "double", "ceiling", "floor", "abs"})

    def _parse_member(self) -> ast.Step:
        token = self._peek()
        if token.type is TokenType.STAR:
            self._advance()
            return ast.WildcardMemberStep()
        name = self._parse_field_name()
        # item method: name followed by ()
        if (name in self._ITEM_METHODS
                and self._peek().type is TokenType.LPAREN):
            self._advance()
            self._expect(TokenType.RPAREN)
            return ast.ItemMethodStep(name)
        return ast.MemberStep(name)

    def _parse_field_name(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENT:
            self._advance()
            return token.value
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        raise PathSyntaxError(
            f"expected field name, found {token.text or 'end of input'!r}",
            token.position)

    def _parse_subscript(self) -> ast.ArrayStep:
        if self._peek().type is TokenType.STAR:
            self._advance()
            self._expect(TokenType.RBRACKET)
            return ast.ArrayStep(None)
        indexes = [self._parse_index_range()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            indexes.append(self._parse_index_range())
        self._expect(TokenType.RBRACKET)
        return ast.ArrayStep(tuple(indexes))

    def _parse_index_range(self) -> ast.ArrayIndex:
        start, start_rel = self._parse_index_value()
        if self._match_ident("to"):
            end, end_rel = self._parse_index_value()
            return ast.ArrayIndex(start, end, start_rel, end_rel)
        return ast.ArrayIndex(start, None, start_rel)

    def _parse_index_value(self) -> tuple[int, bool]:
        token = self._peek()
        if token.type is TokenType.IDENT and token.value == "last":
            self._advance()
            if self._peek().type is TokenType.MINUS:
                self._advance()
                number = self._expect(TokenType.NUMBER)
                if not isinstance(number.value, int):
                    raise PathSyntaxError("array index must be an integer",
                                          number.position)
                return number.value, True
            return 0, True
        if token.type is TokenType.NUMBER:
            self._advance()
            if not isinstance(token.value, int):
                raise PathSyntaxError("array index must be an integer",
                                      token.position)
            return token.value, False
        raise PathSyntaxError(f"expected array index, found {token.text!r}",
                              token.position)

    # -- filter expressions ----------------------------------------------------

    def _parse_or(self) -> ast.BoolExpr:
        parts = [self._parse_and()]
        while self._peek().type is TokenType.OR:
            self._advance()
            parts.append(self._parse_and())
        if len(parts) == 1:
            return parts[0]
        return ast.Or(tuple(parts))

    def _parse_and(self) -> ast.BoolExpr:
        parts = [self._parse_unary()]
        while self._peek().type is TokenType.AND:
            self._advance()
            parts.append(self._parse_unary())
        if len(parts) == 1:
            return parts[0]
        return ast.And(tuple(parts))

    def _parse_unary(self) -> ast.BoolExpr:
        token = self._peek()
        if token.type is TokenType.BANG:
            self._advance()
            self._expect(TokenType.LPAREN)
            inner = self._parse_or()
            self._expect(TokenType.RPAREN)
            return ast.Not(inner)
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self._parse_or()
            self._expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.IDENT and token.value == "exists":
            self._advance()
            self._expect(TokenType.LPAREN)
            path = self._parse_relative_path()
            self._expect(TokenType.RPAREN)
            return ast.Exists(path)
        return self._parse_predicate()

    _CMP_TOKENS = {
        TokenType.EQ: "==",
        TokenType.NE: "!=",
        TokenType.LT: "<",
        TokenType.LE: "<=",
        TokenType.GT: ">",
        TokenType.GE: ">=",
    }

    def _parse_predicate(self) -> ast.BoolExpr:
        left = self._parse_operand()
        token = self._peek()
        if token.type in self._CMP_TOKENS:
            self._advance()
            right = self._parse_operand()
            return ast.Comparison(self._CMP_TOKENS[token.type], left, right)
        if token.type is TokenType.IDENT and token.value == "has":
            self._advance()
            if not self._match_ident("substring"):
                raise PathSyntaxError("expected 'substring' after 'has'",
                                      self._peek().position)
            needle = self._expect(TokenType.STRING)
            return ast.StringPredicate("has_substring", left, needle.value)
        if token.type is TokenType.IDENT and token.value == "starts":
            self._advance()
            if not self._match_ident("with"):
                raise PathSyntaxError("expected 'with' after 'starts'",
                                      self._peek().position)
            needle = self._expect(TokenType.STRING)
            return ast.StringPredicate("starts_with", left, needle.value)
        raise PathSyntaxError(
            f"expected comparison operator, found {token.text or 'end of input'!r}",
            token.position)

    def _parse_operand(self) -> ast.Operand:
        token = self._peek()
        if token.type is TokenType.AT:
            return self._parse_relative_path()
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.MINUS:
            self._advance()
            number = self._expect(TokenType.NUMBER)
            return ast.Literal(-number.value)
        if token.type is TokenType.IDENT:
            if token.value == "true":
                self._advance()
                return ast.Literal(True)
            if token.value == "false":
                self._advance()
                return ast.Literal(False)
            if token.value == "null":
                self._advance()
                return ast.Literal(None)
        raise PathSyntaxError(
            f"expected operand, found {token.text or 'end of input'!r}",
            token.position)

    def _parse_relative_path(self) -> ast.RelativePath:
        self._expect(TokenType.AT)
        steps = self._parse_steps()
        return ast.RelativePath(tuple(steps))
