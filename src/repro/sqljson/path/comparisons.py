"""SQL/JSON filter-comparison semantics, shared by both path engines.

The DOM evaluator (:mod:`repro.sqljson.path.evaluator`) and the compiled
navigation programs (:mod:`repro.sqljson.path.compiler`) must agree
bit-for-bit on filter predicates, so the comparison kernel lives here:
existential comparisons where JSON null only equals null, booleans only
compare with booleans, and any cross-type comparison is simply unknown
(true only under ``!=``), never an error.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Any

from repro.errors import PathEvaluationError

NUMERIC_TYPES = (int, float, Decimal)


def compare(op: str, left: Any, right: Any) -> bool:
    """One SQL/JSON filter comparison between two selected values."""
    if left is None or right is None:
        if op == "==":
            return left is None and right is None
        if op in ("!=", "<>"):
            return (left is None) != (right is None)
        return False
    if isinstance(left, bool) or isinstance(right, bool):
        if not (isinstance(left, bool) and isinstance(right, bool)):
            return op in ("!=", "<>")
        pass  # booleans compare as booleans below
    elif isinstance(left, NUMERIC_TYPES) != isinstance(right, NUMERIC_TYPES):
        return op in ("!=", "<>")
    elif isinstance(left, str) != isinstance(right, str):
        return op in ("!=", "<>")
    try:
        if op == "==":
            return left == right
        if op in ("!=", "<>"):
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise PathEvaluationError(f"unknown comparison operator {op!r}")
