"""Tokenizer for the SQL/JSON path language."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Union

from repro.errors import PathSyntaxError


class TokenType(enum.Enum):
    DOLLAR = "$"
    AT = "@"
    DOT = "."
    DOTDOT = ".."
    STAR = "*"
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    QUESTION = "?"
    BANG = "!"
    AND = "&&"
    OR = "||"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    MINUS = "-"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    EOF = "eof"


#: multi-word keywords recognized by the parser from IDENT tokens
KEYWORDS = frozenset({
    "lax", "strict", "to", "last", "exists", "true", "false", "null",
    "has", "substring", "starts", "with",
})

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


@dataclass(frozen=True, slots=True)
class Token:
    type: TokenType
    text: str
    value: Union[str, int, float, None] = None
    position: int = -1


def tokenize_path(text: str) -> list[Token]:
    """Tokenize a path expression; raises PathSyntaxError on bad input."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    pos = 0
    n = len(text)
    while pos < n:
        ch = text[pos]
        if ch in " \t\n\r":
            pos += 1
            continue
        start = pos
        if ch == "$":
            yield Token(TokenType.DOLLAR, "$", None, start)
            pos += 1
        elif ch == "@":
            yield Token(TokenType.AT, "@", None, start)
            pos += 1
        elif ch == ".":
            if text[pos:pos + 2] == "..":
                yield Token(TokenType.DOTDOT, "..", None, start)
                pos += 2
            else:
                yield Token(TokenType.DOT, ".", None, start)
                pos += 1
        elif ch == "*":
            yield Token(TokenType.STAR, "*", None, start)
            pos += 1
        elif ch == "[":
            yield Token(TokenType.LBRACKET, "[", None, start)
            pos += 1
        elif ch == "]":
            yield Token(TokenType.RBRACKET, "]", None, start)
            pos += 1
        elif ch == "(":
            yield Token(TokenType.LPAREN, "(", None, start)
            pos += 1
        elif ch == ")":
            yield Token(TokenType.RPAREN, ")", None, start)
            pos += 1
        elif ch == ",":
            yield Token(TokenType.COMMA, ",", None, start)
            pos += 1
        elif ch == "?":
            yield Token(TokenType.QUESTION, "?", None, start)
            pos += 1
        elif ch == "&":
            if text[pos:pos + 2] != "&&":
                raise PathSyntaxError("expected '&&'", pos)
            yield Token(TokenType.AND, "&&", None, start)
            pos += 2
        elif ch == "|":
            if text[pos:pos + 2] != "||":
                raise PathSyntaxError("expected '||'", pos)
            yield Token(TokenType.OR, "||", None, start)
            pos += 2
        elif ch == "=":
            if text[pos:pos + 2] != "==":
                raise PathSyntaxError("expected '=='", pos)
            yield Token(TokenType.EQ, "==", None, start)
            pos += 2
        elif ch == "!":
            if text[pos:pos + 2] == "!=":
                yield Token(TokenType.NE, "!=", None, start)
                pos += 2
            else:
                yield Token(TokenType.BANG, "!", None, start)
                pos += 1
        elif ch == "<":
            if text[pos:pos + 2] == "<=":
                yield Token(TokenType.LE, "<=", None, start)
                pos += 2
            elif text[pos:pos + 2] == "<>":
                yield Token(TokenType.NE, "<>", None, start)
                pos += 2
            else:
                yield Token(TokenType.LT, "<", None, start)
                pos += 1
        elif ch == ">":
            if text[pos:pos + 2] == ">=":
                yield Token(TokenType.GE, ">=", None, start)
                pos += 2
            else:
                yield Token(TokenType.GT, ">", None, start)
                pos += 1
        elif ch == "-":
            yield Token(TokenType.MINUS, "-", None, start)
            pos += 1
        elif ch == '"' or ch == "'":
            value, pos = _scan_quoted(text, pos, ch)
            yield Token(TokenType.STRING, text[start:pos], value, start)
        elif ch in _DIGITS:
            value, pos = _scan_number(text, pos)
            yield Token(TokenType.NUMBER, text[start:pos], value, start)
        elif ch in _IDENT_START:
            end = pos + 1
            while end < n and text[end] in _IDENT_CONT:
                end += 1
            word = text[pos:end]
            yield Token(TokenType.IDENT, word, word, start)
            pos = end
        else:
            raise PathSyntaxError(f"unexpected character {ch!r}", pos)
    yield Token(TokenType.EOF, "", None, n)


def _scan_quoted(text: str, pos: int, quote: str) -> tuple[str, int]:
    out: list[str] = []
    i = pos + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == quote:
            return "".join(out), i + 1
        if ch == "\\":
            if i + 1 >= n:
                break
            nxt = text[i + 1]
            mapping = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\",
                       '"': '"', "'": "'", "/": "/"}
            if nxt in mapping:
                out.append(mapping[nxt])
                i += 2
                continue
            if nxt == "u" and i + 6 <= n:
                try:
                    out.append(chr(int(text[i + 2:i + 6], 16)))
                    i += 6
                    continue
                except ValueError:
                    raise PathSyntaxError("invalid \\u escape", i) from None
            raise PathSyntaxError(f"invalid escape \\{nxt}", i)
        out.append(ch)
        i += 1
    raise PathSyntaxError("unterminated string literal", pos)


def _scan_number(text: str, pos: int) -> tuple[Union[int, float], int]:
    n = len(text)
    end = pos
    while end < n and text[end] in _DIGITS:
        end += 1
    is_float = False
    if end < n and text[end] == "." and end + 1 < n and text[end + 1] in _DIGITS:
        is_float = True
        end += 1
        while end < n and text[end] in _DIGITS:
            end += 1
    if end < n and text[end] in "eE":
        probe = end + 1
        if probe < n and text[probe] in "+-":
            probe += 1
        if probe < n and text[probe] in _DIGITS:
            is_float = True
            end = probe
            while end < n and text[end] in _DIGITS:
                end += 1
    literal = text[pos:end]
    return (float(literal) if is_float else int(literal)), end
