"""Streaming path engine over JSON text events (section 5.1).

For SQL/JSON operators evaluated against *textual* JSON, Oracle's engine
consumes parser events and avoids DOM construction when the path is simple
enough.  We reproduce that: :func:`stream_select` evaluates paths composed
of member steps, array index steps and array wildcards directly over the
event stream from :mod:`repro.jsontext.lexer`, materializing only the
matched subtrees.  Paths with filters, descendants or item methods fall
back to a full parse + DOM evaluation — the "memorize events" cost the
paper describes for complex operators.

Either way the full text is tokenized, which is precisely why the TEXT
mode of Figures 3 and 5 loses to OSON.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import PathEvaluationError
from repro.jsontext.lexer import JsonEvent, JsonEventType, tokenize
from repro.jsontext.parser import _build
from repro.sqljson.adapters import DictAdapter
from repro.sqljson.path import ast
from repro.sqljson.path.evaluator import PathEvaluator

_SIMPLE_STEPS = (ast.MemberStep, ast.ArrayStep)


def is_streamable(path: ast.JsonPath) -> bool:
    """True if the path can run directly over the event stream."""
    for step in path.steps:
        if isinstance(step, ast.MemberStep):
            continue
        if isinstance(step, ast.ArrayStep):
            if step.is_wildcard:
                continue
            if (len(step.indexes) == 1 and step.indexes[0].end is None
                    and not step.indexes[0].last_relative):
                continue
            return False
        return False
    return True


def stream_select(text: str, path: ast.JsonPath) -> list[Any]:
    """Evaluate ``path`` over JSON ``text``, returning matched values.

    Streams when possible; otherwise parses to a DOM and delegates to the
    generic evaluator.
    """
    if is_streamable(path):
        return list(_stream_match(tokenize(text), path.steps, 0))
    value = _parse_dom(text)
    return PathEvaluator(path).values(DictAdapter(value))


def stream_exists(text: str, path: ast.JsonPath) -> bool:
    """JSON_EXISTS over text: stops at the first match when streaming."""
    if is_streamable(path):
        for _ in _stream_match(tokenize(text), path.steps, 0):
            return True
        return False
    value = _parse_dom(text)
    return PathEvaluator(path).exists(DictAdapter(value))


def _parse_dom(text: str) -> Any:
    events = tokenize(text)
    first = next(events)
    value, _ = _build(first, events)
    return value


# ----------------------------------------------------------- streaming core


def _stream_match(events: Iterator[JsonEvent], steps: tuple,
                  depth: int) -> Iterator[Any]:
    """Match ``steps`` against the event stream from the next value.

    Unmatched subtrees are *skipped* (consumed without building
    anything), matched leaves are materialized.
    """
    try:
        event = next(events)
    except StopIteration:
        return
    yield from _continue(event, events, steps, depth)


def _match_in_object(events: Iterator[JsonEvent], steps: tuple, depth: int,
                     name: str) -> Iterator[Any]:
    """Scan one object's fields, descending into the one named ``name``."""
    while True:
        probe = next(events)
        if probe.type is JsonEventType.OBJECT_END:
            return
        if probe.type is not JsonEventType.FIELD_NAME:
            raise PathEvaluationError(
                f"malformed event stream: expected field name, got "
                f"{probe.type.name}")
        if probe.value == name:
            value_event = next(events)
            yield from _continue(value_event, events, steps, depth + 1)
        else:
            _skip(next(events), events)


def _continue(event: JsonEvent, events: Iterator[JsonEvent], steps: tuple,
              depth: int) -> Iterator[Any]:
    """Resume matching at ``depth`` with ``event`` already consumed."""
    if depth >= len(steps):
        yield _materialize(event, events)
        return
    step = steps[depth]
    if isinstance(step, ast.MemberStep):
        if event.type is JsonEventType.OBJECT_START:
            yield from _match_in_object(events, steps, depth, step.name)
        elif event.type is JsonEventType.ARRAY_START:
            while True:
                probe = next(events)
                if probe.type is JsonEventType.ARRAY_END:
                    return
                if probe.type is JsonEventType.OBJECT_START:
                    yield from _match_in_object(events, steps, depth, step.name)
                else:
                    _skip(probe, events)
        else:
            _skip(event, events)
    elif isinstance(step, ast.ArrayStep):
        if event.type is JsonEventType.ARRAY_START:
            target = None if step.is_wildcard else step.indexes[0].start
            index = 0
            while True:
                probe = next(events)
                if probe.type is JsonEventType.ARRAY_END:
                    return
                if target is None or index == target:
                    yield from _continue(probe, events, steps, depth + 1)
                else:
                    _skip(probe, events)
                index += 1
        else:
            if step.is_wildcard or step.indexes[0].start == 0:
                yield from _continue(event, events, steps, depth + 1)
            else:
                _skip(event, events)


_OPEN = (JsonEventType.OBJECT_START, JsonEventType.ARRAY_START)
_CLOSE = (JsonEventType.OBJECT_END, JsonEventType.ARRAY_END)


def _skip(event: JsonEvent, events: Iterator[JsonEvent]) -> None:
    """Consume (without building) the value that starts with ``event``."""
    if event.type not in _OPEN:
        return
    depth = 1
    for ev in events:
        if ev.type in _OPEN:
            depth += 1
        elif ev.type in _CLOSE:
            depth -= 1
            if depth == 0:
                return


def _materialize(event: JsonEvent, events: Iterator[JsonEvent]) -> Any:
    value, _ = _build(event, events)
    return value
