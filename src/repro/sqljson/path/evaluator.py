"""DOM-based SQL/JSON path engine (section 5.1).

One evaluator serves every physical encoding through the adapter protocol
of :mod:`repro.sqljson.adapters`: each path step maps a list of context
nodes to a list of result nodes using only the four abstract DOM
operations.  On OSON this walks byte offsets without materializing the
document; on BSON it degrades to sequential scans; on parsed text it
probes Python dicts.

Semantics follow the SQL/JSON standard as the paper uses it:

* **lax** mode (the default) auto-unnests arrays on member steps, treats
  non-arrays as singleton arrays on array steps, and silently drops
  structural mismatches;
* **strict** mode raises :class:`~repro.errors.PathEvaluationError` on any
  structural mismatch;
* filter comparisons are existential: ``@.items.price > 100`` is true if
  any selected value satisfies the comparison, and cross-type comparisons
  are simply false (unknown) rather than errors.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from repro.core.oson.navigate import navigate as _navigate
from repro.core.oson.navigate import navigation_enabled as _navigation_enabled
from repro.errors import PathEvaluationError
from repro.obs import metrics as _metrics
from repro.sqljson.adapters import ARRAY, MISSING, OBJECT, SCALAR, OsonAdapter
from repro.sqljson.path import ast
from repro.sqljson.path.comparisons import NUMERIC_TYPES as _NUMERIC
from repro.sqljson.path.comparisons import compare as _compare
from repro.sqljson.path.compiler import compile_nav

#: the EXPLAIN ANALYZE navigation split: selections served by the
#: partial-decode navigation VM vs. OSON selections that fell back to
#: the DOM adapter route (strict paths, item methods, nav disabled)
_VM_SELECTS = _metrics.counter("sqljson.path.vm_selects")
_DOM_FALLBACKS = _metrics.counter("sqljson.path.dom_fallbacks")


class _Computed:
    """Wrapper distinguishing item-method results from DOM nodes."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


def evaluator_for(path: "ast.JsonPath") -> "PathEvaluator":
    """Memoized evaluator lookup: compiled paths are long-lived (the
    parser caches them), so per-operator-call evaluator construction is
    avoided by caching the evaluator on the AST object itself."""
    cached = getattr(path, "_evaluator", None)
    if cached is None:
        cached = PathEvaluator(path)
        object.__setattr__(path, "_evaluator", cached)
    return cached


class PathEvaluator:
    """A compiled, reusable evaluator for one path expression."""

    __slots__ = ("path", "_strict", "_fast_members", "_fast_wildcard",
                 "_nav_program")

    def __init__(self, path: ast.JsonPath) -> None:
        for i, step in enumerate(path.steps):
            if isinstance(step, ast.ItemMethodStep) and i != len(path.steps) - 1:
                raise PathEvaluationError(
                    f"item method .{step.method}() must be the final path step")
        self.path = path
        self._strict = path.mode == ast.STRICT
        # partial-decode fast path: lax member/array/filter paths compile
        # to a navigation program executed directly over OSON images —
        # no DOM, no per-step adapter dispatch (None when not navigable)
        self._nav_program = compile_nav(path)
        # fast path: lax member-only chains (optionally ending in [*]) are
        # the bulk of JSON_TABLE column paths; they navigate with direct
        # adapter.get_field calls, no per-step list building
        self._fast_members = None
        self._fast_wildcard = False
        if not self._strict:
            steps = path.steps
            if steps and isinstance(steps[-1], ast.ArrayStep) \
                    and steps[-1].is_wildcard:
                candidates, self._fast_wildcard = steps[:-1], True
            else:
                candidates = steps
            if all(isinstance(s, ast.MemberStep) for s in candidates):
                self._fast_members = [s.compiled for s in candidates]

    # -- public API ---------------------------------------------------------

    def select(self, adapter: Any) -> list[Any]:
        """Select the nodes matched by the path in ``adapter``'s document.

        Results are adapter-domain nodes, or :class:`_Computed` wrappers
        when the path ends in an item method.
        """
        return self.select_from(adapter, adapter.root)

    def select_from(self, adapter: Any, context: Any) -> list[Any]:
        """Like :meth:`select` but rooted at an explicit context node —
        used by JSON_TABLE, whose column paths are relative to row nodes."""
        if (self._nav_program is not None
                and type(adapter) is OsonAdapter
                and _navigation_enabled()):
            # partial decode: run the compiled program straight over the
            # binary image; results are the same tree-offset node handles
            # the adapter route produces
            _VM_SELECTS.inc()
            return _navigate(adapter.doc, self._nav_program, context,
                             adapter._resolver)
        if type(adapter) is OsonAdapter:
            _DOM_FALLBACKS.inc()
        if self._fast_members is not None:
            result = self._select_fast(adapter, context)
            if result is not None:
                return result
        nodes: list[Any] = [context]
        for step in self.path.steps:
            nodes = self._apply_step(adapter, nodes, step)
            if not nodes:
                return []
        return nodes

    def _select_fast(self, adapter: Any, context: Any) -> Optional[list[Any]]:
        """Direct navigation for lax member chains; returns None when the
        document's shape needs the general engine (array auto-unnesting)."""
        node = context
        for compiled in self._fast_members:
            child = adapter.get_field(node, compiled)
            if child is MISSING:
                if adapter.kind(node) == ARRAY:
                    return None  # lax unnesting required
                return []
            node = child
        if not self._fast_wildcard:
            return [node]
        if adapter.kind(node) == ARRAY:
            return list(adapter.elements(node))
        return [node]  # lax: non-array behaves as a singleton array

    def values(self, adapter: Any) -> list[Any]:
        """Matched items as Python values (containers materialized)."""
        out = []
        for node in self.select(adapter):
            if isinstance(node, _Computed):
                out.append(node.value)
            elif adapter.kind(node) == SCALAR:
                out.append(adapter.scalar(node))
            else:
                # lint: ignore[dom-materialize] output side: selected containers must decode to be returned
                out.append(adapter.materialize(node))
        return out

    def exists(self, adapter: Any) -> bool:
        """True if the path selects at least one item."""
        return bool(self.select(adapter))

    # -- step application ------------------------------------------------------

    def _apply_step(self, adapter: Any, nodes: list[Any], step: ast.Step) -> list[Any]:
        if isinstance(step, ast.MemberStep):
            return list(self._member(adapter, nodes, step))
        if isinstance(step, ast.WildcardMemberStep):
            return list(self._wildcard_member(adapter, nodes))
        if isinstance(step, ast.DescendantStep):
            return list(self._descendant(adapter, nodes, step))
        if isinstance(step, ast.ArrayStep):
            return list(self._array(adapter, nodes, step))
        if isinstance(step, ast.FilterStep):
            return [n for n in nodes
                    if _predicate(adapter, n, step.predicate, self._strict)]
        if isinstance(step, ast.ItemMethodStep):
            return list(self._item_method(adapter, nodes, step))
        raise PathEvaluationError(f"unknown path step {step!r}")

    def _member(self, adapter: Any, nodes: Iterable[Any],
                step: ast.MemberStep) -> Iterator[Any]:
        for node in nodes:
            kind = adapter.kind(node)
            if kind == OBJECT:
                child = adapter.get_field(node, step.compiled)
                if child is not MISSING:
                    yield child
                elif self._strict:
                    raise PathEvaluationError(
                        f"strict mode: field {step.name!r} is missing")
            elif kind == ARRAY and not self._strict:
                # lax auto-unnesting: apply the member step to each element
                for element in adapter.elements(node):
                    if adapter.kind(element) == OBJECT:
                        child = adapter.get_field(element, step.compiled)
                        if child is not MISSING:
                            yield child
            elif self._strict:
                raise PathEvaluationError(
                    f"strict mode: member step .{step.name} on non-object")

    def _wildcard_member(self, adapter: Any, nodes: Iterable[Any]) -> Iterator[Any]:
        for node in nodes:
            kind = adapter.kind(node)
            if kind == OBJECT:
                for _name, child in adapter.fields(node):
                    yield child
            elif kind == ARRAY and not self._strict:
                for element in adapter.elements(node):
                    if adapter.kind(element) == OBJECT:
                        for _name, child in adapter.fields(element):
                            yield child
            elif self._strict:
                raise PathEvaluationError(
                    "strict mode: wildcard member step on non-object")

    def _descendant(self, adapter: Any, nodes: Iterable[Any],
                    step: ast.DescendantStep) -> Iterator[Any]:
        for node in nodes:
            yield from self._descend(adapter, node, step)

    def _descend(self, adapter: Any, node: Any, step: ast.DescendantStep) -> Iterator[Any]:
        kind = adapter.kind(node)
        if kind == OBJECT:
            child = adapter.get_field(node, step.compiled)
            if child is not MISSING:
                yield child
            for _name, sub in adapter.fields(node):
                yield from self._descend(adapter, sub, step)
        elif kind == ARRAY:
            for element in adapter.elements(node):
                yield from self._descend(adapter, element, step)

    def _array(self, adapter: Any, nodes: Iterable[Any],
               step: ast.ArrayStep) -> Iterator[Any]:
        for node in nodes:
            kind = adapter.kind(node)
            if kind != ARRAY:
                if self._strict:
                    raise PathEvaluationError(
                        "strict mode: array step on non-array")
                # lax: treat the item as a singleton array
                if step.is_wildcard:
                    yield node
                else:
                    for index in self._expand_indexes(step, 1):
                        if index == 0:
                            yield node
                continue
            if step.is_wildcard:
                yield from adapter.elements(node)
                continue
            length = adapter.array_length(node)
            for index in self._expand_indexes(step, length):
                child = adapter.element(node, index)
                if child is not MISSING:
                    yield child
                elif self._strict:
                    raise PathEvaluationError(
                        f"strict mode: array index {index} out of range")

    def _expand_indexes(self, step: ast.ArrayStep, length: int) -> Iterator[int]:
        for index in step.indexes:
            start = (length - 1 - index.start) if index.last_relative else index.start
            if index.end is None:
                if 0 <= start or self._strict:
                    yield start
                continue
            end = (length - 1 - index.end) if index.end_last_relative else index.end
            if end < start:
                if self._strict:
                    raise PathEvaluationError(
                        "strict mode: descending array range")
                continue
            for i in range(start, end + 1):
                yield i

    _TYPE_NAMES = {OBJECT: "object", ARRAY: "array"}

    def _item_method(self, adapter: Any, nodes: Iterable[Any],
                     step: ast.ItemMethodStep) -> Iterator[Any]:
        method = step.method
        for node in nodes:
            kind = adapter.kind(node)
            if method == "size":
                # size() of an array is its length; of anything else, 1
                yield _Computed(adapter.array_length(node) if kind == ARRAY else 1)
            elif method == "count":
                yield _Computed(adapter.array_length(node) if kind == ARRAY else 1)
            elif method == "type":
                if kind in self._TYPE_NAMES:
                    yield _Computed(self._TYPE_NAMES[kind])
                else:
                    yield _Computed(_json_type_name(adapter.scalar(node)))
            elif method in ("number", "double"):
                value = _to_number(adapter, node, kind, self._strict)
                if value is not None:
                    yield _Computed(float(value) if method == "double" else value)
            elif method == "string":
                if kind == SCALAR:
                    yield _Computed(_to_string(adapter.scalar(node)))
                elif self._strict:
                    raise PathEvaluationError("strict mode: .string() on container")
            elif method == "length":
                if kind == SCALAR and isinstance(adapter.scalar(node), str):
                    yield _Computed(len(adapter.scalar(node)))
                elif self._strict:
                    raise PathEvaluationError("strict mode: .length() on non-string")
            elif method in ("ceiling", "floor", "abs"):
                value = _to_number(adapter, node, kind, self._strict)
                if value is not None:
                    yield _Computed(_apply_numeric(method, value))
            else:
                raise PathEvaluationError(f"unknown item method {method!r}")


# -------------------------------------------------------------- predicates


def _predicate(adapter: Any, context: Any, expr: ast.BoolExpr, strict: bool) -> bool:
    if isinstance(expr, ast.And):
        return all(_predicate(adapter, context, p, strict) for p in expr.parts)
    if isinstance(expr, ast.Or):
        return any(_predicate(adapter, context, p, strict) for p in expr.parts)
    if isinstance(expr, ast.Not):
        return not _predicate(adapter, context, expr.expr, strict)
    if isinstance(expr, ast.Exists):
        return bool(_eval_relative(adapter, context, expr.path, strict))
    if isinstance(expr, ast.Comparison):
        lefts = _operand_values(adapter, context, expr.left, strict)
        rights = _operand_values(adapter, context, expr.right, strict)
        return any(_compare(expr.op, lv, rv) for lv in lefts for rv in rights)
    if isinstance(expr, ast.StringPredicate):
        values = _operand_values(adapter, context, expr.operand, strict)
        if expr.kind == "has_substring":
            return any(isinstance(v, str) and expr.needle in v for v in values)
        return any(isinstance(v, str) and v.startswith(expr.needle) for v in values)
    raise PathEvaluationError(f"unknown predicate {expr!r}")


def _eval_relative(adapter: Any, context: Any, path: ast.RelativePath,
                   strict: bool) -> list[Any]:
    # the compiled AST is long-lived (compile_path memoizes), so the
    # sub-evaluator for a filter's relative path is cached on the AST node
    # rather than rebuilt for every context item
    cache = getattr(path, "_evaluators", None)
    if cache is None:
        cache = {}
        object.__setattr__(path, "_evaluators", cache)
    evaluator = cache.get(strict)
    if evaluator is None:
        mode = ast.STRICT if strict else ast.LAX
        evaluator = PathEvaluator(ast.JsonPath(path.steps, mode))
        cache[strict] = evaluator
    try:
        return evaluator.select_from(adapter, context)
    except PathEvaluationError:
        if strict:
            raise
        return []


def _operand_values(adapter: Any, context: Any, operand: ast.Operand,
                    strict: bool) -> list[Any]:
    if isinstance(operand, ast.Literal):
        return [operand.value]
    values = []
    for node in _eval_relative(adapter, context, operand, strict):
        if isinstance(node, _Computed):
            values.append(node.value)
            continue
        kind = adapter.kind(node)
        if kind == SCALAR:
            values.append(adapter.scalar(node))
        elif kind == ARRAY and not strict:
            # lax: unwrap one array level for comparison
            for element in adapter.elements(node):
                if adapter.kind(element) == SCALAR:
                    values.append(adapter.scalar(element))
    return values


# _compare / _NUMERIC live in repro.sqljson.path.comparisons (imported
# above) so the compiled navigation programs share the exact kernel


# ------------------------------------------------------------------ helpers


def _json_type_name(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, _NUMERIC):
        return "number"
    return "string"


def _to_number(adapter: Any, node: Any, kind: str, strict: bool) -> Any:
    if kind != SCALAR:
        if strict:
            raise PathEvaluationError("strict mode: .number() on container")
        return None
    value = adapter.scalar(node)
    if isinstance(value, bool):
        if strict:
            raise PathEvaluationError("strict mode: .number() on boolean")
        return None
    if isinstance(value, _NUMERIC):
        return value
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError:
                if strict:
                    raise PathEvaluationError(
                        f"strict mode: {value!r} is not a number") from None
                return None
    if strict:
        raise PathEvaluationError("strict mode: .number() on null")
    return None


def _to_string(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        return value
    return str(value)


def _apply_numeric(method: str, value: Any) -> Any:
    import math
    if method == "ceiling":
        return math.ceil(value)
    if method == "floor":
        return math.floor(value)
    return abs(value)
