"""Uniform DOM adapters: one path engine over dict, OSON and BSON.

The DOM-based path engine of section 5.1 navigates through four abstract
operations (node type, field lookup, array element, scalar read).  Each
adapter realizes them for one physical encoding:

* :class:`DictAdapter` — materialized Python values (what the JSON text
  parser produces); field lookup is a hash-dict probe.
* :class:`OsonAdapter` — offset-navigated lazy DOM over OSON bytes;
  field lookup is a binary search over the sorted field-id array, with
  the compile-time hash + single-row look-back optimizations applied via
  :class:`~repro.core.oson.cache.FieldIdResolver`.
* :class:`BsonAdapter` — sequential-scan navigation over BSON bytes with
  skip navigation, the access pattern the paper ascribes to BSON.

Node handles are opaque to the evaluator; ``MISSING`` signals an absent
child (distinct from a JSON null).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.bson.decoder import (
    BsonDocument,
    BsonNode,
    KIND_ARRAY,
    KIND_OBJECT,
    KIND_SCALAR,
)
from repro.core.counters import IdentityCache
from repro.core.oson import constants as oson_constants
from repro.core.oson.cache import CompiledFieldName, FieldIdResolver, cached_document
from repro.core.oson.decoder import OsonDocument

#: adapter-level node kinds
OBJECT = "object"
ARRAY = "array"
SCALAR = "scalar"


class _Missing:
    """Sentinel for an absent child; falsy and unique."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "MISSING"

    def __bool__(self) -> bool:
        return False


MISSING = _Missing()


class DictAdapter:
    """Adapter over plain Python values (dict / list / scalars)."""

    __slots__ = ("root",)

    def __init__(self, value: Any) -> None:
        self.root = value

    def kind(self, node: Any) -> str:
        if isinstance(node, dict):
            return OBJECT
        if isinstance(node, (list, tuple)):
            return ARRAY
        return SCALAR

    def get_field(self, node: Any, compiled: CompiledFieldName) -> Any:
        if isinstance(node, dict):
            return node.get(compiled.name, MISSING)
        return MISSING

    def fields(self, node: Any) -> Iterator[tuple[str, Any]]:
        if isinstance(node, dict):
            yield from node.items()

    def array_length(self, node: Any) -> int:
        return len(node) if isinstance(node, (list, tuple)) else 0

    def element(self, node: Any, index: int) -> Any:
        if isinstance(node, (list, tuple)) and -len(node) <= index < len(node):
            return node[index]
        return MISSING

    def elements(self, node: Any) -> Iterator[Any]:
        if isinstance(node, (list, tuple)):
            yield from node

    def scalar(self, node: Any) -> Any:
        return node

    def materialize(self, node: Any) -> Any:
        return node


class OsonAdapter:
    """Adapter over an :class:`OsonDocument`; nodes are tree offsets."""

    __slots__ = ("doc", "root", "_resolver", "scalar", "elements",
                 "materialize")

    def __init__(self, doc: OsonDocument,
                 resolver: Optional[FieldIdResolver] = None) -> None:
        self.doc = doc
        self.root = doc.root
        self._resolver = resolver if resolver is not None else FieldIdResolver()
        # bind the hottest document methods directly (saves one attribute
        # hop per scalar read / array iteration on the query hot path)
        self.scalar = doc.scalar_value
        self.elements = doc.array_elements
        self.materialize = doc.materialize

    _KINDS = {
        oson_constants.NODE_OBJECT: OBJECT,
        oson_constants.NODE_ARRAY: ARRAY,
        oson_constants.NODE_SCALAR: SCALAR,
    }

    def kind(self, node: int) -> str:
        return self._KINDS[self.doc.node_type(node)]

    def get_field(self, node: int, compiled: CompiledFieldName) -> Any:
        # get_field_value itself rejects non-object nodes, so no extra
        # node-type probe is needed here
        doc = self.doc
        field_id = self._resolver.resolve(doc, compiled)
        if field_id is None:
            return MISSING
        child = doc.get_field_value(node, field_id)
        return MISSING if child is None else child

    def fields(self, node: int) -> Iterator[tuple[str, int]]:
        doc = self.doc
        for field_id, child in doc.object_items(node):
            yield doc.field_name(field_id), child

    def array_length(self, node: int) -> int:
        doc = self.doc
        if doc.node_type(node) != oson_constants.NODE_ARRAY:
            return 0
        return doc.child_count(node)

    def element(self, node: int, index: int) -> Any:
        child = self.doc.get_array_element(node, index)
        return MISSING if child is None else child

    # scalar / elements / materialize are bound per instance in __init__
    # (direct references to the OsonDocument methods)


class BsonAdapter:
    """Adapter over BSON bytes; nodes are :class:`BsonDocument` /
    :class:`BsonNode` handles navigated by sequential scan."""

    __slots__ = ("root",)

    def __init__(self, doc: BsonDocument) -> None:
        self.root = doc

    @classmethod
    def from_bytes(cls, data: bytes) -> "BsonAdapter":
        return cls(BsonDocument(data))

    def _as_container(self, node: Any) -> Optional[BsonDocument]:
        if isinstance(node, BsonDocument):
            return node
        if isinstance(node, BsonNode) and node.kind in (KIND_OBJECT, KIND_ARRAY):
            return node.as_document()
        return None

    def kind(self, node: Any) -> str:
        if isinstance(node, BsonDocument):
            return ARRAY if node.is_array else OBJECT
        if isinstance(node, BsonNode):
            if node.kind == KIND_OBJECT:
                return OBJECT
            if node.kind == KIND_ARRAY:
                return ARRAY
        return SCALAR

    def get_field(self, node: Any, compiled: CompiledFieldName) -> Any:
        container = self._as_container(node)
        if container is None or container.is_array:
            return MISSING
        found = container.find_field(compiled.name)  # sequential scan
        return MISSING if found is None else found

    def fields(self, node: Any) -> Iterator[tuple[str, Any]]:
        container = self._as_container(node)
        if container is not None and not container.is_array:
            yield from container.iter_elements()

    def array_length(self, node: Any) -> int:
        container = self._as_container(node)
        if container is None or not container.is_array:
            return 0
        return container.element_count()  # sequential scan

    def element(self, node: Any, index: int) -> Any:
        container = self._as_container(node)
        if container is None or not container.is_array:
            return MISSING
        if index < 0:
            index += container.element_count()
            if index < 0:
                return MISSING
        found = container.element_at(index)
        return MISSING if found is None else found

    def elements(self, node: Any) -> Iterator[Any]:
        container = self._as_container(node)
        if container is not None and container.is_array:
            for _name, child in container.iter_elements():
                yield child

    def scalar(self, node: Any) -> Any:
        if isinstance(node, BsonNode) and node.kind == KIND_SCALAR:
            return node.scalar_value()
        raise TypeError("not a scalar BSON node")

    def materialize(self, node: Any) -> Any:
        if isinstance(node, BsonDocument):
            return node.materialize()
        return node.materialize()


#: OSON adapters cached by buffer identity: an OLAP query touches the
#: same image once per pushdown predicate plus once per JSON_TABLE
#: expansion, and each touch used to re-parse the header+dictionary and
#: rebuild the adapter
_OSON_ADAPTERS = IdentityCache("sqljson.oson_adapter", maxsize=1024)


def adapter_for(value: Any) -> Any:
    """Pick an adapter for a JSON input of any supported physical form:
    OSON bytes, BSON bytes, JSON text, OsonDocument, or Python values."""
    if isinstance(value, OsonDocument):
        return OsonAdapter(value)
    if isinstance(value, BsonDocument):
        return BsonAdapter(value)
    if isinstance(value, (bytes, bytearray)):
        data = bytes(value)
        if data[:4] == oson_constants.MAGIC:
            if data is value:  # immutable input: safe to cache by identity
                adapter = _OSON_ADAPTERS.get(data)
                if adapter is None:
                    adapter = OsonAdapter(cached_document(data))
                    _OSON_ADAPTERS.put(data, adapter)
                return adapter
            return OsonAdapter(OsonDocument(data))
        return BsonAdapter(BsonDocument(data))
    if isinstance(value, str):
        from repro.jsontext import loads
        return DictAdapter(loads(value))
    return DictAdapter(value)
