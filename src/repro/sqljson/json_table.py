"""JSON_TABLE: project relational rows out of JSON documents (section 3.3.2).

A :class:`JsonTable` is built from a row path, scalar :class:`ColumnDef`
entries and :class:`NestedPath` children, mirroring the SQL construct of
the paper's Table 8::

    JsonTable("$", [
        ColumnDef("id", "number", "$.purchaseOrder.id"),
        ColumnDef("podate", "varchar2(16)", "$.purchaseOrder.podate"),
        NestedPath("$.purchaseOrder.items[*]", [
            ColumnDef("name", "varchar2(32)", "$.name"),
            ColumnDef("price", "number", "$.price"),
            NestedPath("$.parts[*]", [
                ColumnDef("partName", "varchar2(32)", "$.partName"),
            ]),
        ]),
    ])

Join semantics follow the paper exactly:

* a NESTED PATH is a **left outer join** to its parent — parents with no
  matching detail rows still emit one row with NULL detail columns;
* **sibling** NESTED PATHs are combined with a **union join** (a full
  outer join under an impossible condition): each sibling's rows appear
  with the other siblings' columns NULLed.

The row source implements the volcano-style iterator API of section 5.1:
``start()`` / ``fetch_next_batch()`` / ``close()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence, Union

from repro.errors import QueryError, ReproError
from repro.sqljson.adapters import SCALAR, adapter_for
from repro.sqljson.operators import make_coercer
from repro.sqljson.path.evaluator import PathEvaluator, _Computed
from repro.sqljson.path.parser import compile_path


@dataclass(frozen=True)
class ColumnDef:
    """One scalar output column: ``name type PATH path``."""

    name: str
    sql_type: str = "varchar2(4000)"
    path: Optional[str] = None  # defaults to '$.<name>'

    def resolved_path(self) -> str:
        return self.path if self.path is not None else f"$.{self.name}"


@dataclass(frozen=True)
class NestedPath:
    """A NESTED PATH clause: un-nests an array into child rows."""

    path: str
    columns: Sequence[Union["ColumnDef", "NestedPath"]] = field(default_factory=tuple)


def _join_paths(prefix: str, relative: str) -> str:
    """Join an absolute context path with a '$'-rooted relative path."""
    suffix = relative[1:] if relative.startswith("$") else relative
    return prefix + suffix


class _CompiledNode:
    """A row-generation node: its path evaluator, scalar columns and
    compiled nested children."""

    __slots__ = ("evaluator", "columns", "children", "absolute_paths")

    def __init__(self, row_path: str,
                 columns: Sequence[Union[ColumnDef, NestedPath]],
                 absolute_prefix: Optional[str] = None) -> None:
        self.evaluator = PathEvaluator(compile_path(row_path))
        if absolute_prefix is None:
            absolute_prefix = row_path
        #: column name -> absolute document path (for predicate pushdown)
        self.absolute_paths: dict[str, str] = {}
        # (column name, path evaluator, compiled type coercer) triples —
        # both the path and the RETURNING type compile once per view
        self.columns: list[tuple[str, PathEvaluator, Any]] = []
        self.children: list[_CompiledNode] = []
        for item in columns:
            if isinstance(item, ColumnDef):
                relative = item.resolved_path()
                self.columns.append((
                    item.name,
                    PathEvaluator(compile_path(relative)),
                    make_coercer(item.sql_type),
                ))
                self.absolute_paths[item.name] = _join_paths(
                    absolute_prefix, relative)
            elif isinstance(item, NestedPath):
                child = _CompiledNode(
                    item.path, item.columns,
                    _join_paths(absolute_prefix, item.path))
                self.children.append(child)
                self.absolute_paths.update(child.absolute_paths)
            else:
                raise QueryError(f"bad JSON_TABLE column spec: {item!r}")

    def column_names(self) -> list[str]:
        names = [name for name, _evaluator, _coercer in self.columns]
        for child in self.children:
            names.extend(child.column_names())
        return names


class JsonTable:
    """The JSON_TABLE virtual table over one JSON column."""

    def __init__(self, row_path: str,
                 columns: Sequence[Union[ColumnDef, NestedPath]]) -> None:
        self._root = _CompiledNode(row_path, columns)
        names = self._root.column_names()
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise QueryError(f"duplicate JSON_TABLE column names: {sorted(duplicates)}")
        self.column_names: tuple[str, ...] = tuple(names)
        #: column name -> absolute document path, used by the engine to
        #: push WHERE predicates down as JSON_EXISTS path filters
        self.absolute_paths: dict[str, str] = dict(self._root.absolute_paths)

    # -- bulk API ------------------------------------------------------------

    def rows(self, data: Any) -> list[dict[str, Any]]:
        """All output rows for one document, as name -> value dicts."""
        adapter = adapter_for(data)
        out: list[dict[str, Any]] = []
        for context in self._root.evaluator.select(adapter):
            if isinstance(context, _Computed):
                continue
            for partial in self._expand(adapter, context, self._root):
                row = dict.fromkeys(self.column_names)
                row.update(partial)
                out.append(row)
        return out

    def iter_rows(self, documents: Any) -> Iterator[dict[str, Any]]:
        """Rows across an iterable of documents."""
        for data in documents:
            yield from self.rows(data)

    def open(self, documents: Any) -> "JsonTableRowSource":
        """Open a volcano-style row source over an iterable of documents."""
        return JsonTableRowSource(self, documents)

    # -- row expansion -----------------------------------------------------------

    def _expand(self, adapter: Any, context: Any,
                node: _CompiledNode) -> list[dict[str, Any]]:
        base: dict[str, Any] = {}
        for name, evaluator, coercer in node.columns:
            base[name] = _column_value(adapter, context, evaluator, coercer)
        if not node.children:
            return [base]
        rows: list[dict[str, Any]] = []
        for child in node.children:
            # left outer join of this child's rows against the parent
            child_rows: list[dict[str, Any]] = []
            for child_context in child.evaluator.select_from(adapter, context):
                if isinstance(child_context, _Computed):
                    continue
                child_rows.extend(self._expand(adapter, child_context, child))
            for child_row in child_rows:
                merged = dict(base)
                merged.update(child_row)
                rows.append(merged)
            # union join between siblings: rows of one sibling carry NULLs
            # for the others' columns, which dict.fromkeys handles in rows()
        if not rows:
            # outer-join semantics: keep the parent even with no details
            return [base]
        return rows


def _column_value(adapter: Any, context: Any, evaluator: PathEvaluator,
                  coercer: Any) -> Any:
    nodes = evaluator.select_from(adapter, context)
    if len(nodes) != 1:
        return None
    node = nodes[0]
    if isinstance(node, _Computed):
        value = node.value
    elif adapter.kind(node) == SCALAR:
        value = adapter.scalar(node)
    else:
        return None
    try:
        return coercer(value)
    except (ReproError, ValueError, TypeError):
        # SQL NULL-on-error semantics: a RETURNING coercion failure
        # yields NULL for the column, not a failed row
        return None


class JsonTableRowSource:
    """start() / fetch_next_batch() / close() iterator (section 5.1)."""

    def __init__(self, table: JsonTable, documents: Any) -> None:
        self._table = table
        self._documents = documents
        self._iterator: Optional[Iterator[dict[str, Any]]] = None
        self._closed = False

    def start(self) -> None:
        if self._closed:
            raise QueryError("row source already closed")
        self._iterator = self._table.iter_rows(iter(self._documents))

    def fetch_next_batch(self, batch_size: int = 64) -> list[dict[str, Any]]:
        """Fetch up to ``batch_size`` rows; an empty list signals end."""
        if self._iterator is None:
            raise QueryError("row source not started")
        batch: list[dict[str, Any]] = []
        for row in self._iterator:
            batch.append(row)
            if len(batch) >= batch_size:
                break
        return batch

    def close(self) -> None:
        self._iterator = None
        self._closed = True
