"""JSON_TABLE: project relational rows out of JSON documents (section 3.3.2).

A :class:`JsonTable` is built from a row path, scalar :class:`ColumnDef`
entries and :class:`NestedPath` children, mirroring the SQL construct of
the paper's Table 8::

    JsonTable("$", [
        ColumnDef("id", "number", "$.purchaseOrder.id"),
        ColumnDef("podate", "varchar2(16)", "$.purchaseOrder.podate"),
        NestedPath("$.purchaseOrder.items[*]", [
            ColumnDef("name", "varchar2(32)", "$.name"),
            ColumnDef("price", "number", "$.price"),
            NestedPath("$.parts[*]", [
                ColumnDef("partName", "varchar2(32)", "$.partName"),
            ]),
        ]),
    ])

Join semantics follow the paper exactly:

* a NESTED PATH is a **left outer join** to its parent — parents with no
  matching detail rows still emit one row with NULL detail columns;
* **sibling** NESTED PATHs are combined with a **union join** (a full
  outer join under an impossible condition): each sibling's rows appear
  with the other siblings' columns NULLed.

The row source implements the volcano-style iterator API of section 5.1:
``start()`` / ``fetch_next_batch()`` / ``close()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence, Union

from repro.core.counters import BoundedCache
from repro.errors import QueryError, ReproError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sqljson.adapters import SCALAR, OsonAdapter, adapter_for
from repro.sqljson.operators import make_coercer
from repro.sqljson.path import ast as path_ast
from repro.sqljson.path.evaluator import PathEvaluator, _Computed
from repro.sqljson.path.parser import compile_path


@dataclass(frozen=True)
class ColumnDef:
    """One scalar output column: ``name type PATH path``."""

    name: str
    sql_type: str = "varchar2(4000)"
    path: Optional[str] = None  # defaults to '$.<name>'

    def resolved_path(self) -> str:
        return self.path if self.path is not None else f"$.{self.name}"


@dataclass(frozen=True)
class NestedPath:
    """A NESTED PATH clause: un-nests an array into child rows."""

    path: str
    columns: Sequence[Union["ColumnDef", "NestedPath"]] = field(default_factory=tuple)


def _join_paths(prefix: str, relative: str) -> str:
    """Join an absolute context path with a '$'-rooted relative path."""
    suffix = relative[1:] if relative.startswith("$") else relative
    return prefix + suffix


def _common_member_prefix(paths: Sequence[path_ast.JsonPath]) -> int:
    """Length of the longest run of identical leading member steps shared
    by every path (0 unless at least two lax paths share one)."""
    if len(paths) < 2:
        return 0
    if any(p.mode != path_ast.LAX for p in paths):
        return 0  # strict evaluation order is observable through errors
    limit = min(len(p.steps) for p in paths)
    depth = 0
    while depth < limit:
        lead = paths[0].steps[depth]
        if not isinstance(lead, path_ast.MemberStep):
            break
        if any(not isinstance(p.steps[depth], path_ast.MemberStep)
               or p.steps[depth].name != lead.name for p in paths[1:]):
            break
        depth += 1
    return depth


class _CompiledNode:
    """A row-generation node: its path evaluator, scalar columns and
    compiled nested children.

    Scalar column paths that share a leading member chain (e.g. the five
    ``$.purchaseOrder.*`` master columns of the PO views) are factored:
    the shared prefix navigates **once per row** into ``prefix_evaluator``
    and each column keeps only its suffix — previously every column
    re-walked the common prefix from the row context.
    """

    __slots__ = ("evaluator", "columns", "children", "absolute_paths",
                 "prefix_evaluator")

    def __init__(self, row_path: str,
                 columns: Sequence[Union[ColumnDef, NestedPath]],
                 absolute_prefix: Optional[str] = None) -> None:
        self.evaluator = PathEvaluator(compile_path(row_path))
        if absolute_prefix is None:
            absolute_prefix = row_path
        #: column name -> absolute document path (for predicate pushdown)
        self.absolute_paths: dict[str, str] = {}
        # (column name, path evaluator, compiled type coercer) triples —
        # both the path and the RETURNING type compile once per view
        self.columns: list[tuple[str, PathEvaluator, Any]] = []
        self.children: list[_CompiledNode] = []
        scalar_defs: list[ColumnDef] = []
        for item in columns:
            if isinstance(item, ColumnDef):
                scalar_defs.append(item)
                self.absolute_paths[item.name] = _join_paths(
                    absolute_prefix, item.resolved_path())
            elif isinstance(item, NestedPath):
                child = _CompiledNode(
                    item.path, item.columns,
                    _join_paths(absolute_prefix, item.path))
                self.children.append(child)
                self.absolute_paths.update(child.absolute_paths)
            else:
                raise QueryError(f"bad JSON_TABLE column spec: {item!r}")
        compiled_paths = [compile_path(d.resolved_path()) for d in scalar_defs]
        shared = _common_member_prefix(compiled_paths)
        self.prefix_evaluator: Optional[PathEvaluator] = None
        if shared:
            lead = compiled_paths[0]
            self.prefix_evaluator = PathEvaluator(
                path_ast.JsonPath(lead.steps[:shared], lead.mode))
        for definition, compiled in zip(scalar_defs, compiled_paths):
            if shared:
                compiled = path_ast.JsonPath(compiled.steps[shared:],
                                             compiled.mode)
            self.columns.append((
                definition.name,
                PathEvaluator(compiled),
                make_coercer(definition.sql_type),
            ))

    def column_names(self) -> list[str]:
        names = [name for name, _evaluator, _coercer in self.columns]
        for child in self.children:
            names.extend(child.column_names())
        return names


#: in-memory DMDV materialization (sections 3.3.2 / 6.2): the JSON_TABLE
#: expansion of an immutable OSON image is a pure function of
#: (table definition, image), so expansions are memoized per
#: (JsonTable, adapter) identity.  Both objects are pinned inside the
#: entry, which keeps the ids stable for the entry's lifetime; a new
#: image (document update) is a new bytes object and therefore a new
#: adapter, so staleness is impossible.  TEXT documents are deliberately
#: excluded: the paper's TEXT cost model re-parses per operator.
_ROW_CACHE = BoundedCache("sqljson.jsontable_rows", maxsize=4096)

#: documents actually expanded (cache misses) and rows they produced;
#: together with the ``sqljson.jsontable_rows`` cache counters these
#: give EXPLAIN ANALYZE the DMDV effectiveness picture per operator
_DOCS_EXPANDED = _metrics.counter("sqljson.jsontable.docs_expanded")
_ROWS_PRODUCED = _metrics.counter("sqljson.jsontable.rows_produced")


class JsonTable:
    """The JSON_TABLE virtual table over one JSON column."""

    def __init__(self, row_path: str,
                 columns: Sequence[Union[ColumnDef, NestedPath]]) -> None:
        self._root = _CompiledNode(row_path, columns)
        names = self._root.column_names()
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise QueryError(f"duplicate JSON_TABLE column names: {sorted(duplicates)}")
        self.column_names: tuple[str, ...] = tuple(names)
        #: column name -> absolute document path, used by the engine to
        #: push WHERE predicates down as JSON_EXISTS path filters
        self.absolute_paths: dict[str, str] = dict(self._root.absolute_paths)

    # -- bulk API ------------------------------------------------------------

    def rows(self, data: Any) -> list[dict[str, Any]]:
        """All output rows for one document, as name -> value dicts."""
        return self.rows_with_adapter(adapter_for(data))

    def rows_with_adapter(self, adapter: Any) -> list[dict[str, Any]]:
        """Like :meth:`rows` for a pre-built adapter — scans that apply
        several operators per document (JSON_EXISTS pushdown followed by
        expansion) build the adapter once and reuse it here."""
        cached = self.cached_rows(adapter)
        if cached is not None:
            return cached
        out: list[dict[str, Any]] = []
        for context in self._root.evaluator.select(adapter):
            if isinstance(context, _Computed):
                continue
            for partial in self._expand(adapter, context, self._root):
                row = dict.fromkeys(self.column_names)
                row.update(partial)
                out.append(row)
        _DOCS_EXPANDED.inc()
        _ROWS_PRODUCED.inc(len(out))
        _trace.current_span().record("jsontable_rows", len(out))
        if type(adapter) is OsonAdapter:
            # store a private copy: callers may mutate the rows they get
            _ROW_CACHE.put((id(self), id(adapter)),
                           (adapter, [dict(row) for row in out], self))
        return out

    def cached_rows(self, adapter: Any) -> Optional[list[dict[str, Any]]]:
        """The memoized expansion for an immutable binary adapter, or
        None.  Scans use this to skip even the JSON_EXISTS pushdown probe
        (the engine's residual WHERE keeps results exact)."""
        if type(adapter) is not OsonAdapter:
            return None
        cached = _ROW_CACHE.get((id(self), id(adapter)))
        if cached is not None and cached[0] is adapter:
            return [dict(row) for row in cached[1]]
        return None

    def iter_rows(self, documents: Any) -> Iterator[dict[str, Any]]:
        """Rows across an iterable of documents."""
        for data in documents:
            yield from self.rows(data)

    def open(self, documents: Any) -> "JsonTableRowSource":
        """Open a volcano-style row source over an iterable of documents."""
        return JsonTableRowSource(self, documents)

    # -- row expansion -----------------------------------------------------------

    def _expand(self, adapter: Any, context: Any,
                node: _CompiledNode) -> list[dict[str, Any]]:
        base: dict[str, Any] = {}
        if node.prefix_evaluator is not None:
            # shared-prefix factoring: navigate the common member chain
            # once, then each column only walks its suffix.  Sequential
            # step application distributes over the node list, so the
            # concatenation of per-prefix-node suffix results is exactly
            # the full path's result.
            contexts = node.prefix_evaluator.select_from(adapter, context)
            for name, evaluator, coercer in node.columns:
                if len(contexts) == 1:
                    base[name] = _column_value(
                        adapter, contexts[0], evaluator, coercer)
                else:
                    base[name] = _column_value_multi(
                        adapter, contexts, evaluator, coercer)
            if not node.children:
                return [base]
            return self._expand_children(adapter, context, node, base)
        for name, evaluator, coercer in node.columns:
            base[name] = _column_value(adapter, context, evaluator, coercer)
        if not node.children:
            return [base]
        return self._expand_children(adapter, context, node, base)

    def _expand_children(self, adapter: Any, context: Any,
                         node: _CompiledNode,
                         base: dict[str, Any]) -> list[dict[str, Any]]:
        rows: list[dict[str, Any]] = []
        for child in node.children:
            # left outer join of this child's rows against the parent
            child_rows: list[dict[str, Any]] = []
            for child_context in child.evaluator.select_from(adapter, context):
                if isinstance(child_context, _Computed):
                    continue
                child_rows.extend(self._expand(adapter, child_context, child))
            for child_row in child_rows:
                merged = dict(base)
                merged.update(child_row)
                rows.append(merged)
            # union join between siblings: rows of one sibling carry NULLs
            # for the others' columns, which dict.fromkeys handles in rows()
        if not rows:
            # outer-join semantics: keep the parent even with no details
            return [base]
        return rows


def _column_value(adapter: Any, context: Any, evaluator: PathEvaluator,
                  coercer: Any) -> Any:
    nodes = evaluator.select_from(adapter, context)
    if len(nodes) != 1:
        return None
    return _node_value(adapter, nodes[0], coercer)


def _column_value_multi(adapter: Any, contexts: Sequence[Any],
                        evaluator: PathEvaluator, coercer: Any) -> Any:
    """Column value over factored prefix nodes: the suffix path runs from
    each prefix node and the results concatenate (order preserved), which
    is exactly what the unfactored full path would have selected."""
    selected: Optional[Any] = None
    count = 0
    for context in contexts:
        nodes = evaluator.select_from(adapter, context)
        count += len(nodes)
        if count > 1:
            return None
        if nodes:
            selected = nodes[0]
    if count != 1:
        return None
    return _node_value(adapter, selected, coercer)


def _node_value(adapter: Any, node: Any, coercer: Any) -> Any:
    if isinstance(node, _Computed):
        value = node.value
    elif adapter.kind(node) == SCALAR:
        value = adapter.scalar(node)
    else:
        return None
    try:
        return coercer(value)
    except (ReproError, ValueError, TypeError):
        # SQL NULL-on-error semantics: a RETURNING coercion failure
        # yields NULL for the column, not a failed row
        return None


class JsonTableRowSource:
    """start() / fetch_next_batch() / close() iterator (section 5.1)."""

    def __init__(self, table: JsonTable, documents: Any) -> None:
        self._table = table
        self._documents = documents
        self._iterator: Optional[Iterator[dict[str, Any]]] = None
        self._closed = False

    def start(self) -> None:
        if self._closed:
            raise QueryError("row source already closed")
        self._iterator = self._table.iter_rows(iter(self._documents))

    def fetch_next_batch(self, batch_size: int = 64) -> list[dict[str, Any]]:
        """Fetch up to ``batch_size`` rows; an empty list signals end."""
        if self._iterator is None:
            raise QueryError("row source not started")
        batch: list[dict[str, Any]] = []
        for row in self._iterator:
            batch.append(row)
            if len(batch) >= batch_size:
                break
        return batch

    def close(self) -> None:
        self._iterator = None
        self._closed = True
