"""SQL/JSON language layer (paper sections 3-5).

* :mod:`repro.sqljson.path` — the SQL/JSON path language: lexer, parser,
  DOM evaluator, and a streaming evaluator over JSON text events.
* :mod:`repro.sqljson.adapters` — a uniform DOM interface over dict
  values, OSON documents and BSON documents, so one path engine serves
  all three encodings.
* :mod:`repro.sqljson.operators` — JSON_VALUE, JSON_QUERY, JSON_EXISTS
  and JSON_TEXTCONTAINS.
* :mod:`repro.sqljson.json_table` — the JSON_TABLE row source with
  NESTED PATH un-nesting (left-outer-join children, union-join siblings).
"""

from repro.sqljson.operators import (
    json_exists,
    json_query,
    json_textcontains,
    json_value,
)
from repro.sqljson.json_table import ColumnDef, JsonTable, NestedPath
from repro.sqljson.path.parser import compile_path

__all__ = [
    "json_value",
    "json_query",
    "json_exists",
    "json_textcontains",
    "compile_path",
    "JsonTable",
    "ColumnDef",
    "NestedPath",
]
