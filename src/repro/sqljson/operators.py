"""SQL/JSON operators: JSON_VALUE, JSON_QUERY, JSON_EXISTS, JSON_TEXTCONTAINS.

Each operator accepts the JSON input in any physical form — JSON text
(``str``), OSON or BSON bytes, an :class:`~repro.core.oson.OsonDocument`,
or already-parsed Python values — and dispatches to the matching adapter.
For textual input the operators route through the streaming engine of
:mod:`repro.sqljson.path.streaming`, so the text-parse cost the paper's
TEXT mode pays is charged here too.

``returning`` on JSON_VALUE accepts a SQL type spec (``"number"``,
``"varchar2(30)"``, ``"boolean"``) and coerces the selected scalar, as the
virtual-column definitions of section 3.3.1 do.
"""

from __future__ import annotations

import re
from decimal import Decimal, InvalidOperation
from typing import Any, Optional

from repro.errors import PathEvaluationError
from repro.jsontext import dumps
from repro.obs import metrics as _metrics
from repro.sqljson.adapters import SCALAR, adapter_for
from repro.sqljson.path.evaluator import _Computed, evaluator_for
from repro.sqljson.path.parser import compile_path
from repro.sqljson.path.streaming import stream_exists, stream_select

#: ``on_error`` behaviours
NULL_ON_ERROR = "null"
ERROR_ON_ERROR = "error"

#: per-operator invocation counts for the unified metrics export
_JSON_VALUE_CALLS = _metrics.counter("sqljson.operators.json_value")
_JSON_QUERY_CALLS = _metrics.counter("sqljson.operators.json_query")
_JSON_EXISTS_CALLS = _metrics.counter("sqljson.operators.json_exists")
_TEXTCONTAINS_CALLS = _metrics.counter("sqljson.operators.json_textcontains")

_RETURNING_RE = re.compile(r"^\s*(\w+)\s*(?:\(\s*(\d+)\s*\))?\s*$", re.IGNORECASE)


def json_value(data: Any, path: str, returning: Optional[str] = None,
               on_error: str = NULL_ON_ERROR) -> Any:
    """Extract one scalar value (section 3.3.1's virtual-column operator).

    Returns ``None`` when the path selects nothing, selects a non-scalar,
    or selects more than one item — unless ``on_error="error"``, in which
    case those conditions raise :class:`~repro.errors.PathEvaluationError`.
    """
    _JSON_VALUE_CALLS.inc()
    compiled = compile_path(path)
    try:
        if isinstance(data, str):
            values = stream_select(data, compiled)
            scalars = [v for v in values
                       if not isinstance(v, (dict, list, tuple))]
            if len(values) != 1 or len(scalars) != 1:
                return _singleton_error(values, on_error)
            return _coerce_return(scalars[0], returning)
        adapter = adapter_for(data)
        nodes = evaluator_for(compiled).select(adapter)
        if len(nodes) != 1:
            return _singleton_error(nodes, on_error)
        node = nodes[0]
        if isinstance(node, _Computed):
            return _coerce_return(node.value, returning)
        if adapter.kind(node) != SCALAR:
            return _singleton_error(nodes, on_error)
        return _coerce_return(adapter.scalar(node), returning)
    except PathEvaluationError:
        if on_error == ERROR_ON_ERROR:
            raise
        return None


def _singleton_error(items: list, on_error: str) -> None:
    if on_error == ERROR_ON_ERROR:
        if not items:
            raise PathEvaluationError("JSON_VALUE: path selected no item")
        if len(items) > 1:
            raise PathEvaluationError("JSON_VALUE: path selected multiple items")
        raise PathEvaluationError("JSON_VALUE: path selected a non-scalar")
    return None


def json_query(data: Any, path: str, wrapper: bool = False,
               as_text: bool = False, on_error: str = NULL_ON_ERROR) -> Any:
    """Extract a JSON fragment (object/array/scalar sequence).

    With ``wrapper=True`` multiple matches are wrapped in an array; with
    ``wrapper=False`` exactly one match must be a container.  ``as_text``
    serializes the result back to compact JSON text.
    """
    _JSON_QUERY_CALLS.inc()
    compiled = compile_path(path)
    try:
        if isinstance(data, str):
            values = stream_select(data, compiled)
        else:
            adapter = adapter_for(data)
            values = evaluator_for(compiled).values(adapter)
        if wrapper:
            result = values
        else:
            if len(values) != 1:
                if on_error == ERROR_ON_ERROR:
                    raise PathEvaluationError(
                        "JSON_QUERY: path did not select exactly one item")
                return None
            result = values[0]
            if not isinstance(result, (dict, list, tuple)):
                if on_error == ERROR_ON_ERROR:
                    raise PathEvaluationError(
                        "JSON_QUERY without wrapper selected a scalar")
                return None
        return dumps(result) if as_text else result
    except PathEvaluationError:
        if on_error == ERROR_ON_ERROR:
            raise
        return None


def json_exists(data: Any, path: str) -> bool:
    """True if the path selects at least one item in the document."""
    _JSON_EXISTS_CALLS.inc()
    compiled = compile_path(path)
    try:
        if isinstance(data, str):
            return stream_exists(data, compiled)
        return evaluator_for(compiled).exists(adapter_for(data))
    except PathEvaluationError:
        return False


_TOKEN_RE = re.compile(r"[A-Za-z0-9_]+")


def json_textcontains(data: Any, path: str, keywords: str) -> bool:
    """Full-text style containment: true if every keyword appears among
    the tokens of the string values selected by ``path``.

    Strings are tokenized into lower-cased word tokens, the same
    tokenization the JSON search index applies (section 3.2.1).
    """
    _TEXTCONTAINS_CALLS.inc()
    compiled = compile_path(path)
    wanted = {t.lower() for t in _TOKEN_RE.findall(keywords)}
    if not wanted:
        return False
    try:
        if isinstance(data, str):
            values = stream_select(data, compiled)
        else:
            values = evaluator_for(compiled).values(adapter_for(data))
    except PathEvaluationError:
        return False
    tokens: set[str] = set()
    stack = list(values)
    while stack:
        value = stack.pop()
        if isinstance(value, str):
            tokens.update(t.lower() for t in _TOKEN_RE.findall(value))
        elif isinstance(value, dict):
            stack.extend(value.values())
        elif isinstance(value, (list, tuple)):
            stack.extend(value)
    return wanted <= tokens


# ------------------------------------------------------------ returning


def make_coercer(returning: Optional[str]):
    """Compile a RETURNING type spec into a reusable coercion callable.

    JSON_TABLE parses each column's type once at view-compile time and
    applies the compiled coercer per row — the spec-parsing regex must not
    run on the per-row hot path.
    """
    if returning is None:
        return lambda value: value
    match = _RETURNING_RE.match(returning)
    if not match:
        raise PathEvaluationError(f"bad RETURNING type {returning!r}")
    type_name = match.group(1).lower()
    size = int(match.group(2)) if match.group(2) else None
    if type_name == "number":
        def coerce_number(value: Any) -> Any:
            if value is None or isinstance(value, (int, float, Decimal)) \
                    and not isinstance(value, bool):
                return value
            return _coerce_return(value, "number")
        return coerce_number
    if type_name in ("varchar2", "varchar", "string", "clob"):
        def coerce_text(value: Any) -> Any:
            if value is None:
                return None
            text = value if isinstance(value, str) else _scalar_to_text(value)
            if size is not None and len(text) > size:
                return text[:size]
            return text
        return coerce_text
    if type_name == "boolean":
        return lambda value: _coerce_return(value, "boolean")
    raise PathEvaluationError(f"unsupported RETURNING type {returning!r}")


def _coerce_return(value: Any, returning: Optional[str]) -> Any:
    """Coerce a selected scalar to the requested SQL type."""
    if returning is None or value is None:
        return value
    match = _RETURNING_RE.match(returning)
    if not match:
        raise PathEvaluationError(f"bad RETURNING type {returning!r}")
    type_name = match.group(1).lower()
    size = int(match.group(2)) if match.group(2) else None
    if type_name == "number":
        if isinstance(value, bool):
            return 1 if value else 0
        if isinstance(value, (int, float, Decimal)):
            return value
        try:
            text = str(value).strip()
            return int(text) if re.fullmatch(r"-?\d+", text) else float(text)
        except (ValueError, InvalidOperation):
            raise PathEvaluationError(
                f"cannot convert {value!r} to NUMBER") from None
    if type_name in ("varchar2", "varchar", "string", "clob"):
        text = value if isinstance(value, str) else _scalar_to_text(value)
        if size is not None and len(text) > size:
            return text[:size]
        return text
    if type_name == "boolean":
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            lowered = value.lower()
            if lowered == "true":
                return True
            if lowered == "false":
                return False
        raise PathEvaluationError(f"cannot convert {value!r} to BOOLEAN")
    raise PathEvaluationError(f"unsupported RETURNING type {returning!r}")


def _scalar_to_text(value: Any) -> str:
    if value is True:
        return "true"
    if value is False:
        return "false"
    return str(value)
