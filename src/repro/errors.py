"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch one base class.  Sub-hierarchies mirror the major subsystems:
JSON text parsing, binary formats (BSON/OSON), the SQL/JSON path language,
the relational engine, and the DataGuide facility.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class JsonSerializeError(ReproError):
    """A Python value cannot be represented as JSON text.

    Raised by :func:`repro.jsontext.dumps` for non-finite floats
    (NaN/Infinity have no JSON literal), non-string object keys, and
    unsupported Python types.  ``json_type`` names the offending Python
    type when the problem is a type rather than a value.
    """

    def __init__(self, message: str, json_type: "str | None" = None) -> None:
        self._raw_message = message
        if json_type is not None:
            message = f"{message} (python type {json_type})"
        super().__init__(message)
        self.json_type = json_type

    def __reduce__(self):
        # keep json_type across pickling and avoid doubling the
        # "(python type T)" suffix — same contract as JsonParseError
        return (type(self), (self._raw_message, self.json_type))


class JsonParseError(ReproError):
    """Malformed JSON text.

    Carries the byte/character position at which parsing failed so error
    messages can point at the offending input.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        self._raw_message = message
        if position >= 0:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position

    def __reduce__(self):
        # default pickling would re-run __init__ with the already
        # position-decorated message (duplicating the suffix) and drop
        # ``position``; rebuild from the raw constructor arguments
        return (type(self), (self._raw_message, self.position))


class BinaryFormatError(ReproError):
    """Malformed or unsupported binary JSON bytes (BSON or OSON).

    Carries the absolute byte ``offset`` at which the structural problem
    was detected (``-1`` when no single offset applies) so decoder and
    verifier failures can point at the offending bytes.
    """

    def __init__(self, message: str, offset: int = -1) -> None:
        self._raw_message = message
        if offset >= 0:
            message = f"{message} (at byte {offset})"
        super().__init__(message)
        self.offset = offset

    def __reduce__(self):
        # see JsonParseError.__reduce__: keep offset across pickling and
        # avoid doubling the "(at byte N)" suffix; type(self) preserves
        # the subclass (BsonError / OsonError / OsonUpdateError)
        return (type(self), (self._raw_message, self.offset))


class BsonError(BinaryFormatError):
    """Malformed or unsupported BSON bytes."""


class OsonError(BinaryFormatError):
    """Malformed or unsupported OSON bytes."""


class OsonUpdateError(OsonError):
    """A partial OSON update could not be applied in place."""


class PathSyntaxError(ReproError):
    """Syntactically invalid SQL/JSON path expression."""

    def __init__(self, message: str, position: int = -1) -> None:
        self._raw_message = message
        if position >= 0:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position

    def __reduce__(self):
        return (type(self), (self._raw_message, self.position))


class PathEvaluationError(ReproError):
    """A SQL/JSON path expression failed during evaluation."""


class EngineError(ReproError):
    """Base class for relational-engine errors."""


class CatalogError(EngineError):
    """Unknown or duplicate table/view/index/column name."""


class ConstraintViolation(EngineError):
    """A row violated a table constraint (e.g. IS JSON)."""


class TypeCoercionError(EngineError):
    """A value could not be coerced to the declared SQL type."""


class QueryError(EngineError):
    """Semantically invalid query (bad column reference, bad aggregate use...)."""


class DataGuideError(ReproError):
    """DataGuide computation or view/virtual-column generation failed."""


class StorageError(ReproError):
    """Durable collection store misuse or unrecoverable storage state.

    Raised for *usage* errors (unknown document id, operating on a
    closed store, a directory that is not a store).  Recovery itself
    never raises on corrupt data — corruption surfaces as structured
    diagnostics and quarantined records on the
    :class:`~repro.storage.recovery.RecoveryReport` instead.
    """


class TransientFault(StorageError):
    """A transient runtime storage fault: an intermittent IO error, a
    chaos-injected failure, or a shard inside an unavailability window.

    Unlike :class:`~repro.storage.faults.SimulatedCrash` (which models
    power loss and derives ``BaseException`` so nothing can swallow
    it), a transient fault is *meant* to be handled: the retry
    machinery in the scatter executor and the sharded commit path
    treats it — together with real ``OSError`` — as retryable.
    ``fault_point`` names the injection site, ``shard_index`` the shard
    it hit (``-1`` when not shard-scoped).
    """

    def __init__(self, message: str, fault_point: "str | None" = None,
                 shard_index: int = -1) -> None:
        self._raw_message = message
        if fault_point is not None:
            message = f"{message} (at {fault_point})"
        super().__init__(message)
        self.fault_point = fault_point
        self.shard_index = shard_index

    def __reduce__(self):
        # see JsonParseError.__reduce__: rebuild from raw constructor
        # arguments so the "(at point)" suffix is not doubled
        return (type(self), (self._raw_message, self.fault_point,
                             self.shard_index))


#: what the retry machinery treats as retryable: injected transient
#: faults and real OS-level IO errors.  Semantic errors (QueryError,
#: arithmetic...) are deliberately absent — retrying those can only
#: hide bugs, so they propagate unchanged.
RETRYABLE_FAULTS = (TransientFault, OSError)


class ShardUnavailable(StorageError):
    """A shard the operation needs is failed (or failed mid-retry): the
    health state machine refused the call fail-fast, or bounded retries
    against the shard were exhausted.  ``shard_index`` is the shard,
    ``state`` its health state at refusal (``failed``, ``suspect``...).

    Whether this aborts the whole query is the caller's policy: with
    ``on_shard_failure="fail"`` it propagates; with ``"partial"`` the
    scatter gather skips the shard and marks the result degraded.
    """

    def __init__(self, message: str, shard_index: int = -1,
                 state: str = "") -> None:
        self._raw_message = message
        if shard_index >= 0:
            detail = f"shard {shard_index}"
            if state:
                detail = f"{detail} {state}"
            message = f"{message} ({detail})"
        super().__init__(message)
        self.shard_index = shard_index
        self.state = state

    def __reduce__(self):
        return (type(self), (self._raw_message, self.shard_index,
                             self.state))


class IndexError_(ReproError):
    """JSON search index maintenance failure (named with a trailing underscore
    to avoid shadowing the builtin :class:`IndexError`)."""


class ServeError(ReproError):
    """Base class for serving-layer (session/cursor front-end) errors."""


class Overloaded(ServeError):
    """The admission queue is full: the request was shed *before*
    consuming any execution resources (graceful degradation — one typed
    refusal instead of slowing every admitted query down).

    ``queue_depth`` is the depth observed at refusal; ``limit`` the
    configured bound.  Retrying after backoff is the expected response.
    """

    def __init__(self, message: str, queue_depth: int = -1,
                 limit: int = -1) -> None:
        self._raw_message = message
        if queue_depth >= 0 and limit >= 0:
            message = f"{message} (queue {queue_depth}/{limit})"
        super().__init__(message)
        self.queue_depth = queue_depth
        self.limit = limit

    def __reduce__(self):
        # see JsonParseError.__reduce__: rebuild from raw constructor
        # arguments so the suffix is not doubled across pickling
        return (type(self), (self._raw_message, self.queue_depth,
                             self.limit))


class QueryTimeout(ServeError):
    """The per-query deadline elapsed.  ``elapsed_ms`` is how long the
    query ran (queue wait included) before the timeout fired."""

    def __init__(self, message: str, elapsed_ms: float = -1.0) -> None:
        self._raw_message = message
        if elapsed_ms >= 0:
            message = f"{message} (after {elapsed_ms:.1f}ms)"
        super().__init__(message)
        self.elapsed_ms = elapsed_ms

    def __reduce__(self):
        return (type(self), (self._raw_message, self.elapsed_ms))


class Cancelled(ServeError):
    """The query was cancelled by its caller (``Cursor.cancel`` or the
    session closing underneath it)."""


class DegradedResult(ServeError):
    """The typed marker riding an explicitly-degraded partial result.

    Under ``on_shard_failure="partial"`` a scatter query whose shards
    partially fail still returns rows — but never silently: this
    marker travels with the result (``rows.degraded`` /
    ``Cursor.degraded``) naming exactly which shards are missing and
    how many retries were burned.  It is an exception type so callers
    that refuse degraded data can simply ``raise rows.degraded``, and
    so it inherits the serving layer's pickling contract.
    """

    def __init__(self, message: str,
                 shards_failed: "tuple | list" = (),
                 retries: int = 0) -> None:
        self._raw_message = message
        shards_failed = tuple(shards_failed)
        if shards_failed:
            rendered = ",".join(str(i) for i in shards_failed)
            message = f"{message} (shards {rendered} missing)"
        super().__init__(message)
        self.shards_failed = shards_failed
        self.retries = retries

    def __reduce__(self):
        return (type(self), (self._raw_message, self.shards_failed,
                             self.retries))


class SessionClosed(ServeError):
    """Operation on a closed session, cursor, or server."""
