"""Pluggable AST lint engine.

A :class:`LintRule` inspects one parsed module through a
:class:`ModuleContext` and yields
:class:`~repro.analysis.diagnostics.Diagnostic` records.  The
:class:`LintEngine` parses files once, fans each module out to every
rule whose path scope matches, and filters findings through inline
suppression pragmas::

    except Exception:  # lint: ignore[broad-except] top-level CLI guard

The pragma must name the rule id and should carry a justification after
the bracket; a pragma with no justification text is itself reported
(``lint.pragma``) so the allowlist stays auditable.  Rules are plain
objects — registering a new project invariant is writing one class with
a ``check`` method and adding it to
:data:`repro.analysis.lint.rules.ALL_RULES`.
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence, Set,
                    Tuple, Type)

from repro.analysis.diagnostics import Diagnostic, Severity

_PRAGMA_RE = re.compile(r"#\s*lint:\s*ignore\[([^\]]+)\](.*)")

#: shared-state annotation scanned alongside pragmas; the concurrency
#: rules (repro.analysis.concurrency) consume it through
#: ``ModuleContext.guard_comments``
_GUARD_RE = re.compile(r"#\s*guarded-by:\s*(?:self\.)?([A-Za-z_]\w*)")


class ModuleContext:
    """One parsed source module handed to each rule.

    The module is tokenized once (pragma and ``guarded-by`` comments)
    and its AST walked once; rules read the shared per-node-type index
    through :meth:`nodes` instead of re-walking the tree, which is what
    keeps a full-rule-set lint pass a single traversal per file.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        # line number -> set of suppressed rule ids on that line
        self.suppressions: Dict[int, Set[str]] = {}
        # line number -> lock name from a "# guarded-by: <lock>" comment
        self.guard_comments: Dict[int, str] = {}
        self.pragma_diagnostics: List[Diagnostic] = []
        self._scan_pragmas()
        self._by_type: Dict[type, List[ast.AST]] = {}
        for node in ast.walk(tree):
            self._by_type.setdefault(type(node), []).append(node)

    def nodes(self, *types: Type[ast.AST]) -> List[ast.AST]:
        """Every node of the given AST types, from the shared one-pass
        index (same breadth-first order ``ast.walk`` would yield)."""
        if len(types) == 1:
            return self._by_type.get(types[0], [])
        out: List[ast.AST] = []
        for node_type in types:
            out.extend(self._by_type.get(node_type, []))
        return out

    def _scan_pragmas(self) -> None:
        for lineno, comment in self._iter_comments():
            guard = _GUARD_RE.search(comment)
            if guard:
                self.guard_comments[lineno] = guard.group(1)
            match = _PRAGMA_RE.search(comment)
            if not match:
                continue
            rules = {part.strip() for part in match.group(1).split(",")
                     if part.strip()}
            self.suppressions[lineno] = rules
            if not match.group(2).strip():
                self.pragma_diagnostics.append(Diagnostic(
                    "lint.pragma",
                    "suppression pragma carries no justification comment",
                    Severity.ERROR, path=self.path, line=lineno))

    def _iter_comments(self) -> Iterator[tuple]:
        """Yield (lineno, text) for real comment tokens only — pragma
        syntax quoted inside strings or docstrings is not a pragma."""
        reader = io.StringIO(self.source).readline
        try:
            for token in tokenize.generate_tokens(reader):
                if token.type == tokenize.COMMENT:
                    yield token.start[0], token.string
        except (tokenize.TokenizeError, IndentationError, SyntaxError):
            return  # the ast parse already reported what matters

    def suppression_line(self, rule_id: str,
                         line: Optional[int]) -> Optional[int]:
        """The pragma line suppressing ``rule_id`` at ``line``, if any.

        A pragma suppresses findings on its own line and, when it stands
        on a line of its own, on the line below (the
        ``disable-next-line`` convention).
        """
        if line is None:
            return None
        for candidate in (line, line - 1):
            rules = self.suppressions.get(candidate)
            if rules and (rule_id in rules or "*" in rules):
                return candidate
        return None

    def is_suppressed(self, rule_id: str, line: Optional[int]) -> bool:
        return self.suppression_line(rule_id, line) is not None

    def diagnostic(self, rule_id: str, message: str, node: ast.AST,
                   severity: Severity = Severity.ERROR) -> Diagnostic:
        """Build a Diagnostic anchored at an AST node."""
        return Diagnostic(rule_id, message, severity, path=self.path,
                          line=getattr(node, "lineno", None),
                          column=getattr(node, "col_offset", None))


class LintRule:
    """Base class for lint rules.

    ``rule_id`` is the stable identifier used in reports and pragmas
    (without the ``lint.`` prefix pragmas may omit).  ``scopes`` limits
    the rule to paths containing any of the given POSIX fragments;
    ``None`` applies everywhere.
    """

    rule_id: str = ""
    description: str = ""
    scopes: Optional[Sequence[str]] = None

    def applies_to(self, path: str) -> bool:
        if not self.scopes:
            return True
        posix = path.replace("\\", "/")
        return any(scope in posix for scope in self.scopes)

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        raise NotImplementedError


class LintEngine:
    """Runs a rule set over source files and aggregates diagnostics.

    Each file is parsed and indexed once; every applicable rule then
    runs over the shared :class:`ModuleContext`.  The engine keeps
    per-rule wall-time totals in ``rule_timings_ms`` and suppression
    tallies in ``stats`` — both are reset by :meth:`lint_paths` and
    surfaced through ``python -m repro.analysis lint --json``.
    """

    def __init__(self, rules: Optional[Sequence[LintRule]] = None) -> None:
        if rules is None:
            from repro.analysis.lint.rules import ALL_RULES
            rules = ALL_RULES
        self.rules = list(rules)
        self.rule_timings_ms: Dict[str, float] = {}
        self.stats: Dict[str, object] = {
            "files": 0, "suppressed": 0, "suppressed_rules": {}}

    # -- entry points ------------------------------------------------------

    def lint_paths(self, paths: Iterable[str]) -> List[Diagnostic]:
        """Lint files and directory trees; directories are walked for
        ``*.py`` files (hidden directories skipped)."""
        self.rule_timings_ms = {}
        self.stats = {"files": 0, "suppressed": 0, "suppressed_rules": {}}
        diagnostics: List[Diagnostic] = []
        for path in self._iter_files(paths):
            diagnostics.extend(self.lint_file(path))
        diagnostics.sort(key=lambda d: (d.path or "", d.line or 0,
                                        d.column or 0, d.rule))
        return diagnostics

    def lint_file(self, path: str) -> List[Diagnostic]:
        try:
            source = Path(path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [Diagnostic("lint.io", f"cannot read source: {exc}",
                               Severity.ERROR, path=str(path))]
        return self.lint_source(source, str(path))

    def lint_source(self, source: str, path: str = "<string>"
                    ) -> List[Diagnostic]:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [Diagnostic("lint.syntax", f"syntax error: {exc.msg}",
                               Severity.ERROR, path=path, line=exc.lineno,
                               column=exc.offset)]
        ctx = ModuleContext(path, source, tree)
        self.stats["files"] = int(self.stats.get("files", 0)) + 1
        found, used_pragma_lines = self.apply_rules(ctx, self.rules)
        found = list(ctx.pragma_diagnostics) + found
        for lineno in ctx.suppressions:
            if lineno not in used_pragma_lines:
                found.append(Diagnostic(
                    "lint.pragma",
                    "suppression pragma matches no finding (stale?)",
                    Severity.WARNING, path=path, line=lineno))
        return found

    def apply_rules(self, ctx: ModuleContext, rules: Sequence[LintRule]
                    ) -> Tuple[List[Diagnostic], Set[int]]:
        """Run ``rules`` over one module context, filtering suppressed
        findings; returns (diagnostics, pragma lines that fired).

        This is the shared core between :meth:`lint_source` (which
        additionally reports unjustified and stale pragmas) and the
        concurrency checker, which runs a rule subset and must not call
        pragmas for *other* rules stale.
        """
        found: List[Diagnostic] = []
        used_pragma_lines: Set[int] = set()
        suppressed_rules = self.stats.setdefault("suppressed_rules", {})
        for rule in rules:
            if not rule.applies_to(ctx.path):
                continue
            start = time.perf_counter()
            for diag in rule.check(ctx):
                pragma_line = ctx.suppression_line(diag.rule, diag.line)
                if pragma_line is not None:
                    used_pragma_lines.add(pragma_line)
                    self.stats["suppressed"] = \
                        int(self.stats.get("suppressed", 0)) + 1
                    suppressed_rules[diag.rule] = \
                        suppressed_rules.get(diag.rule, 0) + 1
                    continue
                found.append(diag)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            self.rule_timings_ms[rule.rule_id] = \
                self.rule_timings_ms.get(rule.rule_id, 0.0) + elapsed_ms
        return found, used_pragma_lines

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _iter_files(paths: Iterable[str]) -> Iterator[str]:
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                for child in sorted(path.rglob("*.py")):
                    if any(part.startswith(".") for part in child.parts):
                        continue
                    yield str(child)
            else:
                yield str(path)
