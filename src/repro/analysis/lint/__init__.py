"""From-scratch pluggable AST lint framework for the repro codebase."""

from __future__ import annotations

from repro.analysis.lint.engine import LintEngine, LintRule, ModuleContext

__all__ = ["LintEngine", "LintRule", "ModuleContext"]
