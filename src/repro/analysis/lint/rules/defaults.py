"""Mutable-default-argument rule."""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintRule, ModuleContext

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)


def _is_mutable(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS)


class MutableDefaultRule(LintRule):
    """Default argument values are evaluated once at def time; a mutable
    default is shared across every call."""

    rule_id = "mutable-default"
    description = "no mutable default argument values"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
            defaults = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults
                            if d is not None)
            for default in defaults:
                if _is_mutable(default):
                    yield ctx.diagnostic(
                        self.rule_id,
                        f"function {node.name!r} has a mutable default "
                        "argument (shared across calls)", default)
