"""Unused-import rule (pyflakes-class)."""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintRule, ModuleContext


def _collect_bindings(tree: ast.Module) -> Dict[str, Tuple[ast.AST, str]]:
    """Map bound name -> (import node, dotted source) for every import."""
    bindings: Dict[str, Tuple[ast.AST, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                bindings[bound] = (node, alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                bindings[bound] = (node, alias.name)
    return bindings


def _collect_uses(tree: ast.Module) -> Set[str]:
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # "a.b.c" used as a bare attribute chain rooted at a Name is
            # already covered by the root's Name node
            continue
        elif (isinstance(node, ast.Assign)
              and any(isinstance(t, ast.Name) and t.id == "__all__"
                      for t in node.targets)):
            for element in ast.walk(node.value):
                if (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    used.add(element.value)
    return used


class UnusedImportRule(LintRule):
    """Imported names must be used (or re-exported via ``__all__``).

    ``__init__.py`` files are skipped entirely — re-exporting is their
    purpose and the convention predates ``__all__`` in parts of the
    tree.
    """

    rule_id = "unused-import"
    description = "no unused imports"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        if ctx.path.replace("\\", "/").endswith("__init__.py"):
            return
        used = _collect_uses(ctx.tree)
        for bound, (node, source) in _collect_bindings(ctx.tree).items():
            if bound not in used:
                yield ctx.diagnostic(
                    self.rule_id,
                    f"import {source!r} (bound as {bound!r}) is never used",
                    node)
