"""Unused-import rule (pyflakes-class).

Beyond plain name references, three re-export/typing idioms count as
uses so they no longer need pragmas:

* names listed in ``__all__`` — whether assigned (``__all__ = [...]``),
  extended (``__all__ += [...]``) or grown in place
  (``__all__.extend([...])`` / ``.append(...)``);
* imports inside an ``if TYPE_CHECKING:`` block whose names appear in
  *string* annotations (``def f(x: "Table") -> "Guide"``) — with
  ``from __future__ import annotations`` the unquoted form is already a
  plain ``Name`` node, but quoted forward references only exist inside
  string constants, so annotation strings are parsed and their names
  collected;
* a TYPE_CHECKING import that is referenced nowhere at all is still
  flagged — the exemption is for the annotation-only usage pattern,
  not for the block.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintRule, ModuleContext


def _collect_bindings(ctx: ModuleContext) -> Dict[str, Tuple[ast.AST, str]]:
    """Map bound name -> (import node, dotted source) for every import."""
    bindings: Dict[str, Tuple[ast.AST, str]] = {}
    for node in ctx.nodes(ast.Import):
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            bindings[bound] = (node, alias.name)
    for node in ctx.nodes(ast.ImportFrom):
        if node.module == "__future__":
            continue
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            bindings[bound] = (node, alias.name)
    return bindings


def _string_elements(node: ast.AST) -> Iterable[str]:
    """String constants anywhere under ``node`` (list/tuple elements)."""
    for element in ast.walk(node):
        if (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            yield element.value


def _is_all_target(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "__all__"


def _collect_uses(ctx: ModuleContext) -> Set[str]:
    used: Set[str] = set()
    for node in ctx.nodes(ast.Name):
        used.add(node.id)
    # __all__ re-exports: plain assignment, augmented assignment, and
    # in-place growth via extend/append
    for node in ctx.nodes(ast.Assign):
        if any(_is_all_target(t) for t in node.targets):
            used.update(_string_elements(node.value))
    for node in ctx.nodes(ast.AugAssign):
        if _is_all_target(node.target):
            used.update(_string_elements(node.value))
    for node in ctx.nodes(ast.Call):
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in ("extend", "append")
                and _is_all_target(func.value)):
            for arg in node.args:
                used.update(_string_elements(arg))
    # quoted forward references: parse string annotations and count
    # every dotted-name root they mention
    for text in _annotation_strings(ctx):
        try:
            parsed = ast.parse(text, mode="eval")
        except SyntaxError:
            continue
        for name in ast.walk(parsed):
            if isinstance(name, ast.Name):
                used.add(name.id)
    return used


def _annotation_strings(ctx: ModuleContext) -> Iterable[str]:
    for node in ctx.nodes(ast.AnnAssign):
        yield from _constant_strings(node.annotation)
    for node in ctx.nodes(ast.arg):
        if node.annotation is not None:
            yield from _constant_strings(node.annotation)
    for node in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
        if node.returns is not None:
            yield from _constant_strings(node.returns)


def _constant_strings(annotation: ast.AST) -> Iterable[str]:
    """String constants inside one annotation expression — the whole
    annotation when quoted, or quoted arguments of e.g. Optional[...]"""
    for element in ast.walk(annotation):
        if (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            yield element.value


class UnusedImportRule(LintRule):
    """Imported names must be used, re-exported via ``__all__``, or
    referenced from (possibly quoted) type annotations.

    ``__init__.py`` files are skipped entirely — re-exporting is their
    purpose and the convention predates ``__all__`` in parts of the
    tree.
    """

    rule_id = "unused-import"
    description = "no unused imports"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        if ctx.path.replace("\\", "/").endswith("__init__.py"):
            return
        used = _collect_uses(ctx)
        for bound, (node, source) in _collect_bindings(ctx).items():
            if bound not in used:
                yield ctx.diagnostic(
                    self.rule_id,
                    f"import {source!r} (bound as {bound!r}) is never used",
                    node)
