"""No-assert rule for library code.

``assert`` statements vanish under ``python -O``, so an invariant
guarded by one silently stops being checked in optimized runs.  Library
code must raise a repro error instead; tests (which pytest rewrites and
never runs under ``-O``) are out of scope via the engine's path
arguments.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintRule, ModuleContext


class AssertRule(LintRule):
    """Library invariants must survive ``python -O``."""

    rule_id = "no-assert"
    description = "no assert statements in library code"
    scopes = ("src/repro",)

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ctx.nodes(ast.Assert):
            yield ctx.diagnostic(
                    self.rule_id,
                    "assert is stripped under 'python -O' — raise a repro "
                    "error instead", node)
