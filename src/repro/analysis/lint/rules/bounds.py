"""Bounds-guarded byte-read rule for the binary-format subsystems.

Raw byte reads — ``struct`` unpacks, ``int.from_bytes``, subscripting a
buffer — crash with ``IndexError`` / ``struct.error`` on truncated
input, or worse, silently return wrong data (an out-of-range slice is
empty and ``int.from_bytes(b"") == 0``).  Every function in
``core/oson/``, ``bson/`` and ``jsontext/`` that performs such a read
must therefore show evidence of guarding: an explicit length
comparison, a raise of a repro error, a ``try`` block, or delegation to
a checking helper.  Functions that take pre-validated offsets can
declare it with ``# lint: ignore[unguarded-read] <why>``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintRule, ModuleContext

#: names that identify a raw byte buffer being subscripted
_BUFFER_NAME_RE = re.compile(r"(?:^|_)(?:buffer|buf|data|payload|blob)$")
#: callables that perform a raw read (covers struct ``unpack`` /
#: ``unpack_from`` methods and ``_unpack_u16``-style module aliases)
_READ_CALL_RE = re.compile(r"unpack")
#: helper names that count as delegated guarding
_GUARD_CALL_RE = re.compile(r"check|require|valid|bound", re.IGNORECASE)


def _buffer_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class UnguardedReadRule(LintRule):
    """Byte reads in binary-format code must be bounds-guarded or
    wrapped in the repro error hierarchy."""

    rule_id = "unguarded-read"
    description = "raw byte reads must be bounds-guarded"
    scopes = ("repro/core/oson", "repro/bson", "repro/jsontext")

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
            diag = self._check_function(ctx, node)
            if diag is not None:
                yield diag

    def _check_function(self, ctx: ModuleContext,
                        func: ast.AST) -> Optional[Diagnostic]:
        reads: List[ast.AST] = []
        guarded = False
        for node in ast.walk(func):
            if isinstance(node, (ast.Raise, ast.Try)):
                guarded = True
            elif isinstance(node, ast.Call):
                name = _buffer_name(node.func)
                if name == "len" or (name is not None
                                     and _GUARD_CALL_RE.search(name)):
                    guarded = True
                elif name is not None and (_READ_CALL_RE.search(name)
                                           or name == "from_bytes"):
                    reads.append(node)
            elif isinstance(node, ast.Subscript):
                name = _buffer_name(node.value)
                if name is not None and _BUFFER_NAME_RE.search(name):
                    reads.append(node)
        if reads and not guarded:
            return ctx.diagnostic(
                self.rule_id,
                f"function {func.name!r} reads raw bytes with no bounds "
                "guard, repro-error raise, or checking helper",
                reads[0])
        return None
