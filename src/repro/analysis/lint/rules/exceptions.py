"""Exception-hygiene rules.

The repro error hierarchy (:mod:`repro.errors`) is the library's
contract with callers: malformed input surfaces as a ``ReproError``
subtype, never as a raw builtin leaking an implementation detail, and
handlers name what they actually expect instead of swallowing the world.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintRule, ModuleContext

_BROAD_NAMES = {"Exception", "BaseException"}

#: builtins that must not be raised from binary-format code paths —
#: decode failures there have to surface as the repro hierarchy
_BUILTIN_RAISES = {
    "ArithmeticError", "AttributeError", "BaseException", "Exception",
    "IndexError", "KeyError", "LookupError", "OverflowError",
    "RuntimeError", "StopIteration", "TypeError", "UnicodeDecodeError",
    "UnicodeError", "ValueError",
}


def _names_in_handler_type(node: ast.expr) -> Iterator[str]:
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Tuple):
        for element in node.elts:
            yield from _names_in_handler_type(element)


class BroadExceptRule(LintRule):
    """``except Exception`` / bare ``except`` hides real failures.

    Handlers must name the exception classes they expect; a genuinely
    intended catch-all (e.g. a CLI top-level guard) needs a
    ``# lint: ignore[broad-except] <why>`` pragma.
    """

    rule_id = "broad-except"
    description = "no broad or bare exception handlers"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ctx.nodes(ast.ExceptHandler):
            if node.type is None:
                yield ctx.diagnostic(
                    self.rule_id, "bare 'except:' catches everything "
                    "including KeyboardInterrupt", node)
                continue
            for name in _names_in_handler_type(node.type):
                if name in _BROAD_NAMES:
                    yield ctx.diagnostic(
                        self.rule_id,
                        f"'except {name}' is too broad — name the "
                        "expected error classes", node)
                    break


class SilentExceptRule(LintRule):
    """An except handler whose whole body is ``pass`` swallows errors."""

    rule_id = "silent-except"
    description = "no handlers that silently discard the exception"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ctx.nodes(ast.ExceptHandler):
            if len(node.body) == 1 and isinstance(node.body[0], ast.Pass):
                yield ctx.diagnostic(
                    self.rule_id,
                    "handler silently discards the exception — handle it "
                    "or narrow the except", node)


class RaiseBuiltinRule(LintRule):
    """Binary-format code must raise the repro error hierarchy.

    ``raise ValueError(...)`` from a decoder leaks implementation
    details and breaks the documented contract that malformed bytes
    surface as ``OsonError`` / ``BsonError`` / ``JsonParseError``.
    """

    rule_id = "raise-builtin"
    description = "binary-format code raises repro errors, not builtins"
    scopes = ("repro/core/oson", "repro/bson", "repro/jsontext")

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ctx.nodes(ast.Raise):
            if node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id in _BUILTIN_RAISES:
                yield ctx.diagnostic(
                    self.rule_id,
                    f"raises builtin {exc.id} — use the repro error "
                    "hierarchy (repro.errors)", node)
