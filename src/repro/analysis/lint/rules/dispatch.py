"""Exhaustive opcode-dispatch rule.

The binary formats dispatch over small closed opcode tables — OSON node
types and scalar types (:mod:`repro.core.oson.constants`) and BSON
element type tags (:mod:`repro.bson.constants`).  A dispatch chain that
neither covers the whole table nor ends in a catch-all (an ``else``
branch, or fallback code after the chain such as a ``raise``) silently
falls through to ``return None`` when a new opcode is added — exactly
the class of bug that turns format evolution into wrong query results.

The rule reconstructs ``if``/``elif`` chains that compare one subject
against table constants (``x == c.SCALAR_INT``, ``x in
c.INLINE_SCALARS``) and flags a chain that ends a function body with an
empty final ``else`` while covering only part of its table.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintRule, ModuleContext

#: constant-name suffixes that are bit-layout helpers, not opcodes
_NON_OPCODE_SUFFIXES = ("_SHIFT", "_MASK", "_BIT", "_BIAS", "_MIN", "_MAX")

_PREFIXES = ("SCALAR_", "NODE_", "TYPE_")


def _build_tables() -> Tuple[Dict[str, FrozenSet[str]],
                             Dict[str, FrozenSet[str]]]:
    """Derive the opcode tables and named-subset expansions from the
    live constants modules, so the rule never drifts from the format."""
    from repro.bson import constants as bson_c
    from repro.core.oson import constants as oson_c

    tables: Dict[str, Set[str]] = {prefix: set() for prefix in _PREFIXES}
    by_value: Dict[str, Dict[int, str]] = {p: {} for p in _PREFIXES}
    for module in (oson_c, bson_c):
        for name, value in vars(module).items():
            if not isinstance(value, int) or isinstance(value, bool):
                continue
            if name.endswith(_NON_OPCODE_SUFFIXES):
                continue
            for prefix in _PREFIXES:
                if name.startswith(prefix):
                    tables[prefix].add(name)
                    by_value[prefix][value] = name
    subsets: Dict[str, FrozenSet[str]] = {}
    for name, value in vars(oson_c).items():
        if isinstance(value, frozenset):
            subsets[name] = frozenset(by_value["SCALAR_"][v] for v in value
                                      if v in by_value["SCALAR_"])
    return ({p: frozenset(t) for p, t in tables.items()}, subsets)


class ExhaustiveDispatchRule(LintRule):
    """Opcode dispatch must cover its table or end in a catch-all."""

    rule_id = "dispatch"
    description = "opcode dispatch exhaustive against the constants tables"

    def __init__(self) -> None:
        self.tables, self.subsets = _build_tables()

    # -- constant extraction ----------------------------------------------

    def _constant_names(self, node: ast.expr) -> Set[str]:
        """Opcode constant names referenced by one comparison operand."""
        name: Optional[str] = None
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        if name is None:
            return set()
        if name in self.subsets:
            return set(self.subsets[name])
        for prefix in _PREFIXES:
            if name.startswith(prefix) and name in self.tables[prefix]:
                return {name}
        return set()

    def _test_constants(self, test: ast.expr) -> Set[str]:
        """Constants covered by an ``if`` test (handles ==, in, or)."""
        covered: Set[str] = set()
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
            for value in test.values:
                covered |= self._test_constants(value)
            return covered
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            if isinstance(test.ops[0], (ast.Eq, ast.In)):
                covered |= self._constant_names(test.comparators[0])
        return covered

    # -- chain analysis ----------------------------------------------------

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
            yield from self._check_body(ctx, node.name, node.body)

    def _check_body(self, ctx: ModuleContext, func_name: str,
                    body: List[ast.stmt]) -> Iterable[Diagnostic]:
        """Flag a dispatch run that ends ``body`` without a catch-all."""
        index = len(body) - 1
        if index < 0 or not isinstance(body[index], ast.If):
            return
        # walk back over the run of If statements closing the body
        while index > 0 and isinstance(body[index - 1], ast.If):
            index -= 1
        covered: Set[str] = set()
        for statement in body[index:]:
            chain: Optional[ast.stmt] = statement
            while isinstance(chain, ast.If):
                covered |= self._test_constants(chain.test)
                if not chain.orelse:
                    chain = None
                elif len(chain.orelse) == 1:
                    chain = chain.orelse[0]  # elif or sole else-statement
                else:
                    chain = chain.orelse[-1]
            if chain is not None:
                return  # ends in a non-If catch-all (raise/return/...)
        if len(covered) < 2:
            return  # not an opcode dispatch
        for prefix in _PREFIXES:
            table = self.tables[prefix]
            used = covered & table
            if len(used) >= 2 and used != table:
                missing = sorted(table - used)
                yield ctx.diagnostic(
                    self.rule_id,
                    f"function {func_name!r} dispatches over {prefix}* "
                    f"opcodes without a catch-all and misses "
                    f"{', '.join(missing)}", body[-1])
