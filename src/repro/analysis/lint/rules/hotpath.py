"""DOM-materialization rule for the SQL/JSON operator hot paths.

The whole point of the partial-decode navigation VM (DESIGN.md,
"execution model") is that evaluating ``$.a.b[2].c`` over an OSON image
never builds a Python DOM.  A stray ``materialize(...)`` / ``decode``
call inside the operator pipeline silently reintroduces the full decode
the paper's section 5.1 engine avoids — correctness tests keep passing
while the OSON-vs-TEXT performance shape collapses.  Any such call in
the operator, evaluator or JSON_TABLE modules must therefore carry a
justification pragma::

    out.append(adapter.materialize(node))  # lint: ignore[dom-materialize] output values must decode

Output-side materialization (returning a selected subtree to the user)
is legitimate; per-document materialization *before* navigation is the
bug this rule exists to catch.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintRule, ModuleContext

#: callables that expand a binary image into a Python DOM
_MATERIALIZERS = frozenset({"materialize", "decode"})


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class DomMaterializeRule(LintRule):
    """DOM materialization in operator hot paths needs a justification."""

    rule_id = "dom-materialize"
    description = ("operator hot paths must navigate, not materialize; "
                   "justified exceptions carry a pragma")
    scopes = ("repro/sqljson/operators", "repro/sqljson/path/evaluator",
              "repro/sqljson/json_table", "repro/engine/view")

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ctx.nodes(ast.Call):
            name = _call_name(node)
            if name in _MATERIALIZERS:
                yield ctx.diagnostic(
                    self.rule_id,
                    f"hot-path call to {name}() builds a DOM; navigate "
                    "the image instead, or justify with "
                    "# lint: ignore[dom-materialize] <why>",
                    node)


class DirectTimeRule(LintRule):
    """Product code must take time from the project clock, not ``time``.

    Two tiers.  Modules wired into :mod:`repro.obs` report wall time
    through span records, and EXPLAIN ANALYZE diffs those records — a
    direct ``time.perf_counter()`` (or any other ``time.*`` call) in one
    of these instrumented modules produces measurements the trace export
    cannot see and silently diverges from the project clock
    (:data:`repro.obs.trace.monotonic`), so the *strict* scopes ban
    :mod:`time` entirely.

    Everywhere else under ``repro/``, a *sleep-only* ban applies: a bare
    ``time.sleep`` in a retry/backoff path bypasses the seeded backoff
    clock (:func:`repro.obs.clock.sleep` /
    :class:`repro.obs.clock.BackoffPolicy`), so chaos runs lose their
    determinism, the lock sanitizer misses the blocking-IO note, and
    ``VirtualClock`` tests silently take real wall time.  Reading the
    clock (``time.perf_counter``) stays legal there.  Only ``repro/obs``
    itself — the clock's home — may touch ``time.sleep``.
    """

    rule_id = "direct-time"
    description = ("instrumented modules must use repro.obs.trace."
                   "monotonic, never time.* directly; all product code "
                   "must sleep via repro.obs.clock, never time.sleep")
    #: applies everywhere; strictness is decided per-path in check()
    scopes = None
    #: full time.* ban — modules measured by EXPLAIN ANALYZE
    STRICT_SCOPES = ("repro/engine/executor", "repro/engine/query",
                     "repro/sqljson/json_table", "repro/sqljson/operators",
                     "repro/core/oson/navigate", "repro/core/oson/cache",
                     "repro/storage/log", "repro/storage/recovery",
                     "repro/imc/store")
    #: the project clock's own home; the one sanctioned time.sleep
    EXEMPT_SCOPES = ("repro/obs",)

    def _tier(self, path: str) -> Optional[str]:
        posix = path.replace("\\", "/")
        if any(scope in posix for scope in self.EXEMPT_SCOPES):
            return None
        if any(scope in posix for scope in self.STRICT_SCOPES):
            return "strict"
        if "repro/" in posix:
            return "sleep"
        return None

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        tier = self._tier(ctx.path)
        if tier == "strict":
            for node in ctx.nodes(ast.Attribute):
                if (isinstance(node.value, ast.Name)
                        and node.value.id == "time"):
                    yield ctx.diagnostic(
                        self.rule_id,
                        f"direct time.{node.attr} in an instrumented "
                        "module; use repro.obs.trace.monotonic (or a "
                        "span) so the measurement lands in the trace "
                        "export",
                        node)
            for node in ctx.nodes(ast.Import, ast.ImportFrom):
                names = [a.name for a in node.names]
                module = getattr(node, "module", None)
                if "time" in names or module == "time":
                    yield ctx.diagnostic(
                        self.rule_id,
                        "instrumented modules must not import time; "
                        "repro.obs.trace.monotonic is the project clock",
                        node)
        elif tier == "sleep":
            for node in ctx.nodes(ast.Attribute):
                if (node.attr == "sleep"
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "time"):
                    yield ctx.diagnostic(
                        self.rule_id,
                        "bare time.sleep in product code; retry/backoff "
                        "paths must sleep through repro.obs.clock.sleep "
                        "so waits are seeded, virtualizable and visible "
                        "to the lock sanitizer",
                        node)
            for node in ctx.nodes(ast.ImportFrom):
                if (getattr(node, "module", None) == "time"
                        and any(a.name == "sleep" for a in node.names)):
                    yield ctx.diagnostic(
                        self.rule_id,
                        "importing sleep from time bypasses the seeded "
                        "backoff clock; use repro.obs.clock.sleep",
                        node)
