"""DOM-materialization rule for the SQL/JSON operator hot paths.

The whole point of the partial-decode navigation VM (DESIGN.md,
"execution model") is that evaluating ``$.a.b[2].c`` over an OSON image
never builds a Python DOM.  A stray ``materialize(...)`` / ``decode``
call inside the operator pipeline silently reintroduces the full decode
the paper's section 5.1 engine avoids — correctness tests keep passing
while the OSON-vs-TEXT performance shape collapses.  Any such call in
the operator, evaluator or JSON_TABLE modules must therefore carry a
justification pragma::

    out.append(adapter.materialize(node))  # lint: ignore[dom-materialize] output values must decode

Output-side materialization (returning a selected subtree to the user)
is legitimate; per-document materialization *before* navigation is the
bug this rule exists to catch.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintRule, ModuleContext

#: callables that expand a binary image into a Python DOM
_MATERIALIZERS = frozenset({"materialize", "decode"})


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class DomMaterializeRule(LintRule):
    """DOM materialization in operator hot paths needs a justification."""

    rule_id = "dom-materialize"
    description = ("operator hot paths must navigate, not materialize; "
                   "justified exceptions carry a pragma")
    scopes = ("repro/sqljson/operators", "repro/sqljson/path/evaluator",
              "repro/sqljson/json_table", "repro/engine/view")

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ctx.nodes(ast.Call):
            name = _call_name(node)
            if name in _MATERIALIZERS:
                yield ctx.diagnostic(
                    self.rule_id,
                    f"hot-path call to {name}() builds a DOM; navigate "
                    "the image instead, or justify with "
                    "# lint: ignore[dom-materialize] <why>",
                    node)


class DirectTimeRule(LintRule):
    """Instrumented modules must take timestamps through the tracer.

    Every module wired into :mod:`repro.obs` reports wall time through
    span records, and EXPLAIN ANALYZE diffs those records — a direct
    ``time.perf_counter()`` (or any other ``time.*`` call) in one of
    these modules produces measurements the trace export cannot see and
    silently diverges from the project clock
    (:data:`repro.obs.trace.monotonic`).  Sleeping in a hot path is
    worse still.  Only ``repro/obs`` itself may touch :mod:`time`.
    """

    rule_id = "direct-time"
    description = ("instrumented modules must use repro.obs.trace."
                   "monotonic, never time.* directly")
    scopes = ("repro/engine/executor", "repro/engine/query",
              "repro/sqljson/json_table", "repro/sqljson/operators",
              "repro/core/oson/navigate", "repro/core/oson/cache",
              "repro/storage/log", "repro/storage/recovery",
              "repro/imc/store")

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ctx.nodes(ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "time":
                yield ctx.diagnostic(
                    self.rule_id,
                    f"direct time.{node.attr} in an instrumented module; "
                    "use repro.obs.trace.monotonic (or a span) so the "
                    "measurement lands in the trace export",
                    node)
        for node in ctx.nodes(ast.Import, ast.ImportFrom):
            names = [a.name for a in node.names]
            module = getattr(node, "module", None)
            if "time" in names or module == "time":
                yield ctx.diagnostic(
                    self.rule_id,
                    "instrumented modules must not import time; "
                    "repro.obs.trace.monotonic is the project clock",
                    node)
