"""Lint rule catalog.

Each rule enforces one project invariant; DESIGN.md documents the
catalog.  Add new rules by appending an instance to :data:`ALL_RULES`.
"""

from __future__ import annotations

from repro.analysis.lint.rules.asserts import AssertRule
from repro.analysis.lint.rules.bounds import UnguardedReadRule
from repro.analysis.lint.rules.defaults import MutableDefaultRule
from repro.analysis.lint.rules.dispatch import ExhaustiveDispatchRule
from repro.analysis.lint.rules.exceptions import (
    BroadExceptRule,
    RaiseBuiltinRule,
    SilentExceptRule,
)
from repro.analysis.lint.rules.hotpath import DirectTimeRule, DomMaterializeRule
from repro.analysis.lint.rules.imports import UnusedImportRule
from repro.analysis.concurrency.guards import GuardedMutationRule

ALL_RULES = [
    BroadExceptRule(),
    SilentExceptRule(),
    RaiseBuiltinRule(),
    MutableDefaultRule(),
    UnguardedReadRule(),
    ExhaustiveDispatchRule(),
    UnusedImportRule(),
    AssertRule(),
    DomMaterializeRule(),
    DirectTimeRule(),
    GuardedMutationRule(),
]

__all__ = [
    "ALL_RULES",
    "AssertRule",
    "BroadExceptRule",
    "DirectTimeRule",
    "DomMaterializeRule",
    "ExhaustiveDispatchRule",
    "GuardedMutationRule",
    "MutableDefaultRule",
    "RaiseBuiltinRule",
    "SilentExceptRule",
    "UnguardedReadRule",
    "UnusedImportRule",
]
