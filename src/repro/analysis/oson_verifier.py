"""Static OSON image verifier.

Checks a byte image against the structural invariants of the OSON layout
(:mod:`repro.core.oson.constants`, realizing the paper's Figure 2 /
section 4.2 properties) **without running the decoder**:

* header: magic, version, zeroed reserved bytes, ordered in-range segment
  offsets (``oson.header.*``);
* dictionary: entries and name blob inside the segment and exactly
  filling it, names valid UTF-8, entries sorted by ``(hash, name)`` with
  stored hashes matching the hash function (``oson.dict.*``);
* tree: every node reachable from the root lies inside the tree segment,
  node types are valid, reserved header bits are zero, object field ids
  are in dictionary range and strictly ascending (the binary-search
  precondition), and every child delta resolves *strictly before* its
  parent — which proves the topology is acyclic (``oson.tree.*``,
  ``oson.node.*``);
* scalars: value offsets and LEB128-prefixed payload extents inside the
  value segment, UTF-8 validity of strings, canonical two's-complement
  integers, well-formed packed-decimal BCD, parseable NUMSTR text
  (``oson.scalar.*``, ``oson.value.leb``);
* coverage: tree or value bytes referenced by no reachable node are
  reported as WARNING slack, never silently ignored.

The verifier emits :class:`~repro.analysis.diagnostics.Diagnostic`
records and never raises on malformed input; an image is *accepted* when
no ERROR-severity diagnostic is produced.  Acceptance is deliberately
stricter than decodability: the differential tests assert that every
accepted image decodes, not the converse.
"""

from __future__ import annotations

import struct
from decimal import Decimal, InvalidOperation
from typing import List, Optional

from repro.analysis.diagnostics import Diagnostic, Severity, has_errors
from repro.core.oson import constants as c
from repro.core.oson.hashing import field_name_hash

_unpack_u16 = struct.Struct("<H").unpack_from
_unpack_u32 = struct.Struct("<I").unpack_from

#: encoder emits at most 9 two's-complement bytes (71-bit integers)
_MAX_INT_PAYLOAD = 9


def verify_oson(data: bytes) -> List[Diagnostic]:
    """Statically verify an OSON byte image; returns all findings."""
    return _OsonVerifier(data).run()


class _OsonVerifier:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.diagnostics: List[Diagnostic] = []
        self.tree_start = 0
        self.value_start = 0
        self.root = 0
        self.field_count = 0

    # -- reporting ---------------------------------------------------------

    def error(self, rule: str, message: str, offset: int) -> None:
        self.diagnostics.append(Diagnostic(rule, message, Severity.ERROR,
                                           offset=offset))

    def warn(self, rule: str, message: str, offset: int,
             context: Optional[dict] = None) -> None:
        self.diagnostics.append(Diagnostic(rule, message, Severity.WARNING,
                                           offset=offset,
                                           context=context or {}))

    # -- driver ------------------------------------------------------------

    def run(self) -> List[Diagnostic]:
        if not self.check_header():
            return self.diagnostics
        dict_ok = self.check_dictionary()
        self.check_tree(dict_ok)
        return self.diagnostics

    # -- header ------------------------------------------------------------

    def check_header(self) -> bool:
        data = self.data
        if len(data) < c.HEADER_SIZE:
            self.error("oson.header.truncated",
                       f"image is {len(data)} bytes, header needs "
                       f"{c.HEADER_SIZE}", 0)
            return False
        if data[:4] != c.MAGIC:
            self.error("oson.header.magic",
                       f"bad magic {data[:4]!r}, expected {c.MAGIC!r}", 0)
            return False
        if data[4] != c.VERSION:
            self.error("oson.header.version",
                       f"unsupported version {data[4]}", 4)
            return False
        if data[5:8] != b"\x00\x00\x00":
            self.error("oson.header.reserved",
                       "reserved header bytes are not zero", 5)
        self.tree_start = _unpack_u32(data, 8)[0]
        self.value_start = _unpack_u32(data, 12)[0]
        self.root = _unpack_u32(data, 16)[0]
        if not (c.HEADER_SIZE <= self.tree_start <= self.value_start
                <= len(data)):
            self.error("oson.header.segments",
                       f"segment offsets out of order: header={c.HEADER_SIZE}"
                       f" tree={self.tree_start} values={self.value_start}"
                       f" end={len(data)}", 8)
            return False
        if self.tree_start == self.value_start:
            self.error("oson.header.segments",
                       "tree segment is empty (no root node)", 8)
            return False
        return True

    # -- dictionary --------------------------------------------------------

    def check_dictionary(self) -> bool:
        """Validate the field-name dictionary; returns True when the
        field-id table is usable for tree checks."""
        data = self.data
        start = c.HEADER_SIZE
        if start + 2 > self.tree_start:
            self.error("oson.dict.extent",
                       "dictionary segment too small for its count word",
                       start)
            return False
        (count,) = _unpack_u16(data, start)
        self.field_count = count
        pos = start + 2
        entries_end = pos + count * 5
        if entries_end > self.tree_start:
            self.error("oson.dict.extent",
                       f"{count} dictionary entries overrun the segment",
                       pos)
            return False
        entries = []  # (hash, name_len, entry offset)
        for i in range(count):
            (name_hash,) = _unpack_u32(data, pos)
            entries.append((name_hash, data[pos + 4], pos))
            pos += 5
        blob_end = entries_end + sum(length for _h, length, _o in entries)
        if blob_end > self.tree_start:
            self.error("oson.dict.extent",
                       "dictionary name blob overruns the segment",
                       entries_end)
            return False
        if blob_end != self.tree_start:
            self.error("oson.dict.extent",
                       f"{self.tree_start - blob_end} slack bytes between "
                       "dictionary and tree segment", blob_end)
        cursor = entries_end
        previous: Optional[tuple] = None
        for name_hash, name_len, entry_off in entries:
            raw = data[cursor:cursor + name_len]
            try:
                name = raw.decode("utf-8")
            except UnicodeDecodeError:
                self.error("oson.dict.utf8",
                           f"field name at entry {entry_off} is not valid "
                           "UTF-8", cursor)
                cursor += name_len
                previous = None
                continue
            if field_name_hash(name) != name_hash:
                self.error("oson.dict.hash",
                           f"stored hash {name_hash:#010x} does not match "
                           f"hash of field name {name!r}", entry_off)
            if previous is not None and previous >= (name_hash, name):
                self.error("oson.dict.order",
                           "dictionary entries are not sorted by "
                           "(hash, name)", entry_off)
            previous = (name_hash, name)
            cursor += name_len
        return True

    # -- tree + scalars ----------------------------------------------------

    def check_tree(self, check_field_ids: bool) -> None:
        data = self.data
        tree_len = self.value_start - self.tree_start
        value_len = len(data) - self.value_start
        if self.root >= tree_len:
            self.error("oson.root.range",
                       f"root offset {self.root} outside the "
                       f"{tree_len}-byte tree segment", 16)
            return
        tree_mask = bytearray(tree_len)
        value_mask = bytearray(value_len)
        visited = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            extent = self.check_node(node, tree_len, value_len,
                                     tree_mask, value_mask,
                                     check_field_ids, stack)
            if extent:
                lo, hi = extent
                for i in range(lo, hi):
                    tree_mask[i] = 1
        # Slack is a *diagnostic*, never an error: in-place partial
        # updates legitimately strand bytes (a grown scalar is rewritten
        # at the buffer end and its old slot goes dead), so partially-
        # updated images must stay accepted.  Report it whenever the walk
        # completed — only prior ERRORs make the coverage masks
        # unreliable (the walk bails out of damaged subtrees, leaving
        # reachable bytes unmarked); earlier WARNINGs must not suppress
        # the report.
        if not has_errors(self.diagnostics):
            slack = tree_mask.count(0)
            if slack:
                self.warn("oson.tree.slack",
                          f"{slack} tree bytes not referenced by any node "
                          "reachable from the root", self.tree_start,
                          context={"wasted_bytes": slack})
            vslack = value_mask.count(0)
            if vslack:
                self.warn("oson.value.slack",
                          f"{vslack} value bytes not referenced by any "
                          "scalar", self.value_start,
                          context={"wasted_bytes": vslack})

    def check_node(self, node, tree_len, value_len, tree_mask, value_mask,
                   check_field_ids, stack):
        """Validate one tree node; pushes children, returns its extent."""
        data = self.data
        base = self.tree_start + node
        header = data[base]
        node_type = header & c.NODE_TYPE_MASK
        if node_type == 0:
            self.error("oson.node.type",
                       f"invalid node type 0 at node {node}", base)
            return None
        if node_type == c.NODE_SCALAR:
            return self.check_scalar(node, header, tree_len, value_len,
                                     value_mask)
        # container: object or array
        if header & ~(c.NODE_TYPE_MASK
                      | (c.CONTAINER_WIDTH_MASK << c.CONTAINER_WIDTH_SHIFT)):
            self.error("oson.node.reserved",
                       f"container node {node} has nonzero reserved header "
                       "bits", base)
            return None
        if node + 3 > tree_len:
            self.error("oson.tree.bounds",
                       f"node {node} header overruns the tree segment", base)
            return None
        count = _unpack_u16(data, base + 1)[0]
        width = ((header >> c.CONTAINER_WIDTH_SHIFT)
                 & c.CONTAINER_WIDTH_MASK) + 1
        ids_size = count * 2 if node_type == c.NODE_OBJECT else 0
        extent_end = node + 3 + ids_size + count * width
        if extent_end > tree_len:
            self.error("oson.tree.bounds",
                       f"node {node} ({count} children) overruns the tree "
                       "segment", base)
            return None
        if node_type == c.NODE_OBJECT:
            previous_id = -1
            for i in range(count):
                (field_id,) = _unpack_u16(data, base + 3 + i * 2)
                if check_field_ids and field_id >= self.field_count:
                    self.error("oson.tree.fieldid",
                               f"node {node} child {i}: field id {field_id} "
                               f"outside dictionary of {self.field_count}",
                               base + 3 + i * 2)
                if field_id <= previous_id:
                    self.error("oson.tree.fieldid-order",
                               f"node {node}: field ids not strictly "
                               "ascending (binary-search precondition)",
                               base + 3 + i * 2)
                previous_id = field_id
        deltas_start = base + 3 + ids_size
        for i in range(count):
            pos = deltas_start + i * width
            delta = int.from_bytes(data[pos:pos + width], "little")
            child = node - delta
            if delta == 0 or child < 0:
                self.error("oson.tree.topology",
                           f"node {node} child {i} delta {delta} does not "
                           "resolve strictly before the parent", pos)
                continue
            stack.append(child)
        return node, extent_end

    def check_scalar(self, node, header, tree_len, value_len, value_mask):
        data = self.data
        base = self.tree_start + node
        scalar_type = (header >> c.SCALAR_TYPE_SHIFT) & c.SCALAR_TYPE_MASK
        width_bits = (header >> c.SCALAR_WIDTH_SHIFT) & c.SCALAR_WIDTH_MASK
        if header & 0x80:
            self.error("oson.node.reserved",
                       f"scalar node {node} has nonzero reserved header bit",
                       base)
            return None
        if scalar_type in c.INLINE_SCALARS:
            if width_bits:
                self.error("oson.node.reserved",
                           f"inline scalar node {node} carries width bits",
                           base)
                return None
            return node, node + 1
        width = width_bits + 1
        if node + 1 + width > tree_len:
            self.error("oson.tree.bounds",
                       f"scalar node {node} offset bytes overrun the tree "
                       "segment", base)
            return None
        rel = int.from_bytes(data[base + 1:base + 1 + width], "little")
        if rel >= value_len:
            self.error("oson.scalar.extent",
                       f"scalar node {node} value offset {rel} outside "
                       f"the {value_len}-byte value segment", base + 1)
            return None
        value_off = self.value_start + rel
        if scalar_type == c.SCALAR_FLOAT:
            end = rel + 8
            if end > value_len:
                self.error("oson.scalar.extent",
                           f"float payload at value offset {rel} overruns "
                           "the value segment", value_off)
                return None
            self.mark_value(value_mask, rel, end)
            return node, node + 1 + width
        length, payload_rel = self.read_leb128(rel, value_len)
        if length is None:
            return None
        payload_end = payload_rel + length
        if payload_end > value_len:
            self.error("oson.scalar.extent",
                       f"{length}-byte payload at value offset {payload_rel} "
                       "overruns the value segment",
                       self.value_start + payload_rel)
            return None
        payload = data[self.value_start + payload_rel:
                       self.value_start + payload_end]
        self.check_payload(scalar_type, payload,
                           self.value_start + payload_rel)
        self.mark_value(value_mask, rel, payload_end)
        return node, node + 1 + width

    def check_payload(self, scalar_type, payload, offset) -> None:
        if scalar_type == c.SCALAR_STRING:
            try:
                payload.decode("utf-8")
            except UnicodeDecodeError:
                self.error("oson.scalar.utf8",
                           "string payload is not valid UTF-8", offset)
        elif scalar_type == c.SCALAR_INT:
            if not 1 <= len(payload) <= _MAX_INT_PAYLOAD:
                self.error("oson.scalar.int",
                           f"integer payload of {len(payload)} bytes "
                           f"(expected 1..{_MAX_INT_PAYLOAD})", offset)
            elif len(payload) > 1:
                value = int.from_bytes(payload, "little", signed=True)
                minimal = max(1, (value.bit_length() + 8) // 8)
                if len(payload) != minimal:
                    self.error("oson.scalar.int",
                               "integer payload is not canonical minimal "
                               "two's complement", offset)
        elif scalar_type == c.SCALAR_NUMBER:
            self.check_packed_decimal(payload, offset)
        elif scalar_type == c.SCALAR_NUMSTR:
            try:
                text = payload.decode("ascii")
                Decimal(text)
            except (UnicodeDecodeError, InvalidOperation, ArithmeticError):
                self.error("oson.scalar.numstr",
                           "NUMSTR payload is not ASCII decimal text", offset)
        # inline and float scalars never reach here: they carry no
        # length-prefixed payload
        return None

    def check_packed_decimal(self, payload, offset) -> None:
        if not payload:
            self.error("oson.scalar.number", "empty packed decimal", offset)
            return
        digits = payload[1:]
        for i, byte in enumerate(digits):
            high, low = byte >> 4, byte & 0x0F
            last = i == len(digits) - 1
            if high > 9 or (low > 9 and not (low == 0x0F and last)):
                self.error("oson.scalar.number",
                           f"invalid BCD nibble in packed decimal byte {i}",
                           offset + 1 + i)
                return

    # -- low-level helpers -------------------------------------------------

    def read_leb128(self, rel, value_len):
        """Bounded LEB128 read at value-relative ``rel``; reports and
        returns (None, None) on truncation or overlong encodings."""
        data = self.data
        result = 0
        shift = 0
        pos = rel
        while True:
            if pos >= value_len:
                self.error("oson.value.leb",
                           f"LEB128 length at value offset {rel} is "
                           "truncated", self.value_start + rel)
                return None, None
            byte = data[self.value_start + pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result, pos
            shift += 7
            if shift > 63:
                self.error("oson.value.leb",
                           f"LEB128 length at value offset {rel} exceeds "
                           "64 bits", self.value_start + rel)
                return None, None

    def mark_value(self, value_mask, lo, hi) -> None:
        for i in range(lo, min(hi, len(value_mask))):
            value_mask[i] = 1
