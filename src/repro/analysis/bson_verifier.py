"""Static BSON image verifier (JSON-reachable subset of bsonspec.org).

Walks the element list of a document purely structurally — the decoder
is never invoked — checking:

* the document length word is in ``[5, remaining bytes]`` and the byte it
  points past ends the document with a trailing NUL (``bson.length``,
  ``bson.trailer``);
* element type tags are in the supported set (``bson.type``);
* field names are NUL-terminated inside the document and valid UTF-8
  (``bson.name``); array documents use the canonical ``"0", "1", ...``
  index keys (``bson.array.keys``);
* each element's value extent — fixed-width scalars, length-prefixed
  strings, nested container length words — stays inside its enclosing
  document (``bson.bounds``), string payloads carry their terminating
  NUL and decode as UTF-8 (``bson.string``), booleans are strictly
  ``0``/``1`` (``bson.boolean``);
* nested documents and arrays are verified recursively and must exactly
  fill their claimed extent; the element list must end exactly at the
  trailing NUL (``bson.trailer``);
* for a top-level image, the document must span the entire buffer —
  trailing slack bytes are an ERROR because the format is
  self-delimiting (``bson.slack``).

Emits :class:`~repro.analysis.diagnostics.Diagnostic` records, never
raises.  An image is accepted when no ERROR diagnostic is produced.
"""

from __future__ import annotations

import struct
from typing import List

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.bson import constants as c

_unpack_i32 = struct.Struct("<i").unpack_from

_SCALAR_TAGS = {c.TYPE_DOUBLE, c.TYPE_STRING, c.TYPE_BOOLEAN, c.TYPE_NULL,
                c.TYPE_INT32, c.TYPE_INT64}
_CONTAINER_TAGS = {c.TYPE_DOCUMENT, c.TYPE_ARRAY}
_KNOWN_TAGS = _SCALAR_TAGS | _CONTAINER_TAGS

#: recursion guard: deeper nesting than this is reported, not followed
_MAX_DEPTH = 200


def verify_bson(data: bytes) -> List[Diagnostic]:
    """Statically verify a BSON byte image; returns all findings."""
    verifier = _BsonVerifier(data)
    end = verifier.check_document(0, len(data), is_array=False, depth=0)
    if end is not None and end != len(data):
        verifier.error("bson.slack",
                       f"{len(data) - end} trailing bytes after the "
                       "top-level document", end)
    return verifier.diagnostics


class _BsonVerifier:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.diagnostics: List[Diagnostic] = []

    def error(self, rule: str, message: str, offset: int) -> None:
        self.diagnostics.append(Diagnostic(rule, message, Severity.ERROR,
                                           offset=offset))

    # -- documents ---------------------------------------------------------

    def check_document(self, start: int, limit: int, is_array: bool,
                       depth: int):
        """Verify one document in ``[start, limit)``; returns its end
        offset, or None when the frame itself is broken."""
        data = self.data
        if depth > _MAX_DEPTH:
            self.error("bson.depth",
                       f"nesting deeper than {_MAX_DEPTH} levels", start)
            return None
        if limit - start < 5:
            self.error("bson.length",
                       f"{limit - start} bytes left, document needs at "
                       "least 5", start)
            return None
        (total,) = _unpack_i32(data, start)
        if total < 5 or start + total > limit:
            self.error("bson.length",
                       f"document length word {total} outside the "
                       f"{limit - start} available bytes", start)
            return None
        end = start + total
        if data[end - 1] != 0:
            self.error("bson.trailer",
                       "document does not end with a NUL terminator",
                       end - 1)
            return None
        self.check_elements(start + 4, end - 1, is_array, depth)
        return end

    def check_elements(self, pos: int, list_end: int, is_array: bool,
                       depth: int) -> None:
        data = self.data
        index = 0
        while pos < list_end:
            tag = data[pos]
            if tag not in _KNOWN_TAGS:
                self.error("bson.type",
                           f"unsupported element type 0x{tag:02x}", pos)
                return
            name_start = pos + 1
            nul = data.find(b"\x00", name_start, list_end)
            if nul < 0:
                self.error("bson.name",
                           "field name is not NUL-terminated inside the "
                           "document", name_start)
                return
            raw_name = data[name_start:nul]
            name = None
            try:
                name = raw_name.decode("utf-8")
            except UnicodeDecodeError:
                self.error("bson.name",
                           "field name is not valid UTF-8", name_start)
            if is_array and name is not None and name != str(index):
                self.error("bson.array.keys",
                           f"array element {index} keyed {name!r} instead "
                           f"of {str(index)!r}", name_start)
            value_pos = nul + 1
            next_pos = self.check_value(tag, value_pos, list_end, depth)
            if next_pos is None:
                return
            pos = next_pos
            index += 1
        if pos != list_end:
            self.error("bson.trailer",
                       "element list does not end exactly at the document "
                       "terminator", pos)

    # -- values ------------------------------------------------------------

    def check_value(self, tag: int, pos: int, limit: int, depth: int):
        """Verify one element value; returns the offset just past it."""
        data = self.data
        if tag == c.TYPE_NULL:
            return pos
        if tag == c.TYPE_BOOLEAN:
            if pos + 1 > limit:
                self.error("bson.bounds", "boolean value overruns the "
                           "document", pos)
                return None
            if data[pos] not in (0, 1):
                self.error("bson.boolean",
                           f"boolean byte is 0x{data[pos]:02x}, must be "
                           "0x00 or 0x01", pos)
            return pos + 1
        if tag == c.TYPE_INT32:
            return self.fixed(pos, 4, limit, "int32")
        if tag in (c.TYPE_INT64, c.TYPE_DOUBLE):
            return self.fixed(pos, 8, limit,
                              "int64" if tag == c.TYPE_INT64 else "double")
        if tag == c.TYPE_STRING:
            if pos + 4 > limit:
                self.error("bson.bounds",
                           "string length word overruns the document", pos)
                return None
            (length,) = _unpack_i32(data, pos)
            if length < 1 or pos + 4 + length > limit:
                self.error("bson.string",
                           f"string length {length} outside the document",
                           pos)
                return None
            payload_end = pos + 4 + length - 1
            if data[payload_end] != 0:
                self.error("bson.string",
                           "string payload is missing its NUL terminator",
                           payload_end)
                return None
            try:
                data[pos + 4:payload_end].decode("utf-8")
            except UnicodeDecodeError:
                self.error("bson.string",
                           "string payload is not valid UTF-8", pos + 4)
            return pos + 4 + length
        # nested document or array
        return self.check_document(pos, limit, tag == c.TYPE_ARRAY,
                                   depth + 1)

    def fixed(self, pos: int, size: int, limit: int, what: str):
        if pos + size > limit:
            self.error("bson.bounds",
                       f"{what} value overruns the document", pos)
            return None
        return pos + size
